#!/usr/bin/env python
"""Dead-link lint for the repo's markdown tree.

Walks the documentation set (README.md, docs/, EXPERIMENTS.md, ROADMAP.md,
benchmarks/README.md, ...) and verifies that every **intra-repo** markdown
link resolves:

* relative file links (``[x](docs/kernels.md)``, ``[y](../README.md)``)
  must point at an existing file or directory;
* fragment links into a markdown file (``docs/kernels.md#adding-a-backend``)
  must match a heading anchor in the target, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to hyphens);
* bare fragments (``#verifying``) must match a heading in the same file.

External links (http/https/mailto) are deliberately left alone — this lint
must stay hermetic so CI never fails on someone else's outage.  Run from
anywhere inside the repo:

    python tools/check_links.py

Exit status is the number of broken links (0 = clean), and each violation
prints as ``file:line: message`` so editors can jump to it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documentation files and directories (relative to the repo root) to lint.
#: Generated/source trees are excluded on purpose: the lint guards the
#: human-facing docs surface, not every stray markdown in the checkout.
DOC_SET = [
    "README.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs",
    "benchmarks/README.md",
]

#: ``[text](target)`` — skipping images is fine, broken image links fail
#: the same way as file links so keep them in.
LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, drop punctuation,
    spaces/dashes collapse to single hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())  # unwrap code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    text = text.replace(" ", "-")
    return text


def markdown_anchors(path: Path) -> set:
    """All heading anchors a markdown file exposes (with GitHub's -1, -2
    suffixes for duplicate headings)."""
    anchors: set = set()
    counts: dict = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def _display(path: Path) -> str:
    """Repo-relative path when possible (clickable in CI logs), else absolute."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def iter_doc_files() -> list:
    files = []
    for rel in DOC_SET:
        path = REPO_ROOT / rel
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for every markdown link, skipping
    fenced code blocks and inline code spans."""
    in_fence = False
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = re.sub(r"`[^`]*`", "", line)
        for match in LINK_RE.finditer(stripped):
            yield line_number, match.group(1)


def check_file(path: Path, anchor_cache: dict) -> list:
    problems = []
    for line_number, target in iter_links(path):
        if target.startswith(EXTERNAL_SCHEMES):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(
                    f"{_display(path)}:{line_number}: "
                    f"broken link '{target}' (no such file)"
                )
                continue
        else:
            resolved = path
        if fragment:
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                continue  # fragments into non-markdown are out of scope
            if resolved not in anchor_cache:
                anchor_cache[resolved] = markdown_anchors(resolved)
            if fragment.lower() not in anchor_cache[resolved]:
                problems.append(
                    f"{_display(path)}:{line_number}: "
                    f"broken anchor '{target}' (no heading "
                    f"'#{fragment}' in {_display(resolved)})"
                )
    return problems


def main() -> int:
    anchor_cache: dict = {}
    problems = []
    files = iter_doc_files()
    for path in files:
        problems.extend(check_file(path, anchor_cache))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown files: {len(problems)} broken links")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
