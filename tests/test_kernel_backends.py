"""Kernel-backend selection, graceful degradation, and bit-identity.

Three layers of coverage for the optional compiled (Numba) SAD backend:

* resolution — ``resolve_kernel_backend`` validates names and degrades
  ``numba`` to ``numpy`` when the ``[accel]`` extra is absent;
* graceful degradation — a subprocess with the ``numba`` import blocked
  still runs a ``kernel_backend="numba"`` pipeline, on numpy, bit-identically;
* equivalence — a hypothesis property drive of the full pruned/histogram ES
  pipeline comparing the numba code paths against the numpy backend and the
  scalar oracle.  When Numba is not installed the backend is *forced* active
  so the ``kernels_numba`` loops execute as plain Python — slow, but the
  same code the compiler compiles, so the logic is verified everywhere and
  the CI ``kernels-accel`` job re-runs it compiled.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.motion import kernels_numba
from repro.motion.block_matching import (
    BlockMatcher,
    BlockMatchingConfig,
    SearchPolicy,
    SearchStrategy,
)
from repro.motion.kernels import (
    KERNEL_BACKENDS,
    SadKernel,
    numba_available,
    resolve_kernel_backend,
)
from repro.motion.reference import scalar_estimate

_SRC = str(Path(__file__).resolve().parents[1] / "src")


class TestBackendResolution:
    def test_known_backends(self):
        assert KERNEL_BACKENDS == ("numpy", "numba")
        assert resolve_kernel_backend("numpy") == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="kernel backend"):
            resolve_kernel_backend("cython")
        with pytest.raises(ValueError, match="kernel backend"):
            BlockMatchingConfig(kernel_backend="cython")

    def test_numba_resolution_matches_availability(self):
        expected = "numba" if numba_available() else "numpy"
        assert resolve_kernel_backend("numba") == expected

    def test_float_frames_always_ride_numpy(self, monkeypatch):
        """Fractional floats stay on the numpy gather path even when the
        compiled backend is available: a compiled sequential float sum would
        round differently than the oracle's pairwise reduction."""
        monkeypatch.setattr(kernels_numba, "NUMBA_AVAILABLE", True)
        rng = np.random.default_rng(0)
        frame = rng.uniform(0, 255, (16, 16))
        kernel = SadKernel(frame, frame, 8, 2, backend="numba")
        assert not kernel.exact_integer
        assert kernel.requested_backend == "numba"
        assert kernel.active_backend == "numpy"

    def test_integer_frames_activate_forced_backend(self, monkeypatch):
        monkeypatch.setattr(kernels_numba, "NUMBA_AVAILABLE", True)
        frame = np.zeros((16, 16), dtype=np.uint8)
        kernel = SadKernel(frame, frame, 8, 2, backend="numba")
        assert kernel.active_backend == "numba"
        assert kernel.supports_fused


class TestGracefulDegradation:
    """kernel_backend="numba" without Numba must run, on numpy, identically."""

    def test_blocked_numba_import_degrades_to_numpy(self):
        script = textwrap.dedent(
            """
            import sys
            # Block the numba import before repro is loaded: `None` in
            # sys.modules makes `import numba` raise ImportError, which is
            # exactly what an environment without the [accel] extra does.
            sys.modules["numba"] = None

            import numpy as np
            from repro.motion import kernels_numba
            from repro.motion.block_matching import (
                BlockMatcher,
                BlockMatchingConfig,
                SearchPolicy,
                SearchStrategy,
            )
            from repro.motion.kernels import numba_available, resolve_kernel_backend

            assert not kernels_numba.NUMBA_AVAILABLE
            assert not numba_available()
            assert resolve_kernel_backend("numba") == "numpy"

            rng = np.random.default_rng(0)
            current = rng.integers(0, 256, (32, 40)).astype(np.uint8)
            previous = rng.integers(0, 256, (32, 40)).astype(np.uint8)

            fields = {}
            for backend in ("numba", "numpy"):
                matcher = BlockMatcher(
                    BlockMatchingConfig(
                        block_size=8,
                        search_range=3,
                        strategy=SearchStrategy.EXHAUSTIVE,
                        search_policy=SearchPolicy.PRUNED,
                        kernel_backend=backend,
                    )
                )
                fields[backend] = matcher.estimate(current, previous)
                assert matcher.last_kernel_backend == "numpy", backend

            assert np.array_equal(fields["numba"].vectors, fields["numpy"].vectors)
            assert np.array_equal(fields["numba"].sad, fields["numpy"].sad)
            print("DEGRADE-OK")
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "DEGRADE-OK" in result.stdout


@pytest.fixture
def active_numba(monkeypatch):
    """Make the numba backend active even when Numba is not installed.

    ``kernels_numba``'s loops are plain Python functions when uncompiled, so
    forcing availability runs the exact code the JIT would compile — the
    logic under test is identical, only the speed differs.
    """
    monkeypatch.setattr(kernels_numba, "NUMBA_AVAILABLE", True)


def _estimate(current, previous, policy, backend, block_size, search_range):
    matcher = BlockMatcher(
        BlockMatchingConfig(
            block_size=block_size,
            search_range=search_range,
            strategy=SearchStrategy.EXHAUSTIVE,
            search_policy=policy,
            kernel_backend=backend,
        )
    )
    return matcher, matcher.estimate(current, previous)


class TestBackendEquivalence:
    """The numba code paths must be bit-identical to numpy and the oracle."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        block_size=st.sampled_from([4, 8]),
        search_range=st.sampled_from([0, 1, 2]),
        height=st.integers(8, 24),
        width=st.integers(8, 24),
    )
    def test_integer_frames_all_policies(
        self, seed, block_size, search_range, height, width
    ):
        # An inline monkeypatch context (not the fixture): hypothesis
        # forbids function-scoped fixtures inside @given.
        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(kernels_numba, "NUMBA_AVAILABLE", True)
            rng = np.random.default_rng(seed)
            current = rng.integers(0, 256, (height, width)).astype(np.uint8)
            previous = rng.integers(0, 256, (height, width)).astype(np.uint8)
            oracle = scalar_estimate(
                current,
                previous,
                block_size=block_size,
                search_range=search_range,
                three_step=False,
            )
            for policy in SearchPolicy:
                matcher, field = _estimate(
                    current, previous, policy, "numba", block_size, search_range
                )
                assert matcher.last_kernel_backend == "numba"
                assert np.array_equal(field.vectors, oracle.vectors), policy
                assert np.array_equal(field.sad, oracle.sad), policy
                _numpy_matcher, numpy_field = _estimate(
                    current, previous, policy, "numpy", block_size, search_range
                )
                assert np.array_equal(field.vectors, numpy_field.vectors), policy
                assert np.array_equal(field.sad, numpy_field.sad), policy

    def test_fixed_point_frames(self, active_numba):
        """Q8.4 lattice floats descale identically through the fused driver."""
        rng = np.random.default_rng(11)
        current = np.round(rng.uniform(0, 255, (24, 32)) * 16) / 16
        previous = np.round(rng.uniform(0, 255, (24, 32)) * 16) / 16
        oracle = scalar_estimate(
            current, previous, block_size=8, search_range=2, three_step=False
        )
        for policy in SearchPolicy:
            matcher, field = _estimate(current, previous, policy, "numba", 8, 2)
            assert matcher.last_kernel_backend == "numba"
            assert matcher.last_kernel_scale == 16
            assert np.array_equal(field.vectors, oracle.vectors), policy
            assert np.array_equal(field.sad, oracle.sad), policy

    def test_three_step_search(self, active_numba):
        """TSS rides the compiled per-block primitive; same field as numpy."""
        rng = np.random.default_rng(12)
        current = rng.integers(0, 256, (48, 48)).astype(np.uint8)
        previous = rng.integers(0, 256, (48, 48)).astype(np.uint8)
        oracle = scalar_estimate(
            current, previous, block_size=16, search_range=7, three_step=True
        )
        matcher = BlockMatcher(
            BlockMatchingConfig(
                block_size=16,
                search_range=7,
                strategy=SearchStrategy.THREE_STEP,
                kernel_backend="numba",
            )
        )
        field = matcher.estimate(current, previous)
        assert matcher.last_kernel_backend == "numba"
        assert np.array_equal(field.vectors, oracle.vectors)
        assert np.array_equal(field.sad, oracle.sad)

    def test_flat_frame_early_exit_accounting(self, active_numba):
        """The fused driver's work accounting matches the numpy driver's."""
        flat = np.full((32, 32), 200, dtype=np.uint8)
        for policy in (SearchPolicy.SPIRAL, SearchPolicy.PRUNED, SearchPolicy.HISTOGRAM):
            matcher, field = _estimate(flat, flat, policy, "numba", 8, 3)
            assert field.max_magnitude() == 0.0
            stats = matcher.last_search_stats
            num_offsets = (2 * 3 + 1) ** 2
            assert stats.candidates_evaluated == stats.candidates_total // num_offsets
            assert stats.offsets_skipped == num_offsets - 1
