"""Shared fixtures for the test suite.

Heavy objects (datasets, generated sequences) are session-scoped so the suite
stays fast; tests that need to mutate them must copy first.
"""

from __future__ import annotations

import pytest

from repro.core.geometry import BoundingBox, MotionVector
from repro.motion.motion_field import MacroblockGrid, MotionField
from repro.video.attributes import VisualAttribute
from repro.video.datasets import (
    build_detection_dataset,
    build_otb_like_dataset,
    build_tracking_dataset,
)
from repro.video.synthetic import SequenceConfig, SequenceGenerator


@pytest.fixture(scope="session")
def small_sequence():
    """A short single-object sequence used by many unit tests."""
    config = SequenceConfig(name="unit_seq", num_frames=24, num_objects=1, seed=11)
    return SequenceGenerator(config).generate()


@pytest.fixture(scope="session")
def fast_motion_sequence():
    """A sequence whose object moves faster than the search window."""
    config = SequenceConfig(
        name="fast_seq",
        num_frames=24,
        num_objects=1,
        seed=12,
        attributes=frozenset({VisualAttribute.FAST_MOTION, VisualAttribute.MOTION_BLUR}),
    )
    return SequenceGenerator(config).generate()


@pytest.fixture(scope="session")
def multi_object_sequence():
    """A multi-object sequence used by detection tests."""
    config = SequenceConfig(
        name="multi_seq",
        num_frames=20,
        num_objects=4,
        frame_width=256,
        frame_height=144,
        seed=13,
    )
    return SequenceGenerator(config).generate()


@pytest.fixture(scope="session")
def tiny_tracking_dataset():
    """A 4-sequence tracking dataset for integration tests."""
    return build_otb_like_dataset(num_sequences=4, frames_per_sequence=30, seed=200)


@pytest.fixture(scope="session")
def tiny_combined_tracking_dataset():
    """A small OTB-like + VOT-like combined dataset."""
    return build_tracking_dataset(
        otb_sequences=3, vot_sequences=2, frames_per_sequence=24, seed=300
    )


@pytest.fixture(scope="session")
def tiny_detection_dataset():
    """A 2-sequence multi-object detection dataset."""
    return build_detection_dataset(num_sequences=2, frames_per_sequence=20, seed=400)


@pytest.fixture
def simple_grid():
    """A 64x48 frame tiled with 16-pixel macroblocks (4x3 grid)."""
    return MacroblockGrid(frame_width=64, frame_height=48, block_size=16)


@pytest.fixture
def uniform_motion_field(simple_grid):
    """A motion field where everything moves by (+2, +1) with perfect SAD."""
    return MotionField.uniform(simple_grid, MotionVector(2.0, 1.0), sad_value=0.0)


@pytest.fixture
def sample_box():
    """A convenient mid-frame box."""
    return BoundingBox(10.0, 8.0, 24.0, 16.0)
