"""Tests for block-matching motion estimation (ES and TSS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion.block_matching import (
    BlockMatcher,
    BlockMatchingConfig,
    SearchStrategy,
    exhaustive_search_ops_per_macroblock,
    three_step_search_ops_per_macroblock,
)


def _textured_frame(rng: np.random.Generator, height: int = 64, width: int = 96) -> np.ndarray:
    """A smooth but textured frame block matching can lock on to."""
    coarse = rng.uniform(0, 255, (height // 8, width // 8))
    return np.kron(coarse, np.ones((8, 8)))


def _shift(frame: np.ndarray, dx: int, dy: int) -> np.ndarray:
    """Shift a frame by (dx, dy) with edge replication."""
    shifted = np.roll(np.roll(frame, dy, axis=0), dx, axis=1)
    return shifted


class TestConfig:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BlockMatchingConfig(block_size=0)
        with pytest.raises(ValueError):
            BlockMatchingConfig(search_range=-1)

    def test_zero_search_range_is_valid(self):
        """d = 0 is the degenerate zero-motion case, not an error."""
        config = BlockMatchingConfig(search_range=0)
        assert config.ops_per_macroblock > 0
        rng = np.random.default_rng(21)
        frame = rng.integers(0, 256, (32, 32)).astype(np.uint8)
        field = BlockMatcher(config).estimate(frame, frame)
        assert field.max_magnitude() == 0.0

    def test_es_ops_formula(self):
        # L^2 * (2d+1)^2 from Sec. 2.3.
        assert exhaustive_search_ops_per_macroblock(16, 7) == 256 * 225

    def test_tss_ops_formula(self):
        # L^2 * (1 + 8 log2(d+1)) -> for d=7: 256 * 25.
        assert three_step_search_ops_per_macroblock(16, 7) == 256 * 25

    def test_tss_is_cheaper_than_es(self):
        config_es = BlockMatchingConfig(strategy=SearchStrategy.EXHAUSTIVE)
        config_tss = BlockMatchingConfig(strategy=SearchStrategy.THREE_STEP)
        assert config_tss.ops_per_macroblock < config_es.ops_per_macroblock
        # The paper quotes an ~8/9 reduction at d = 7.
        ratio = config_tss.ops_per_macroblock / config_es.ops_per_macroblock
        assert ratio == pytest.approx(1.0 / 9.0, rel=0.05)

    def test_ops_per_frame_scales_with_blocks(self):
        config = BlockMatchingConfig()
        assert config.ops_per_frame(64, 48) == 12 * config.ops_per_macroblock


class TestMotionRecovery:
    @pytest.mark.parametrize("strategy", [SearchStrategy.EXHAUSTIVE, SearchStrategy.THREE_STEP])
    @pytest.mark.parametrize("shift", [(0, 0), (3, 2), (-4, 1), (5, -5)])
    def test_recovers_global_translation(self, strategy, shift):
        rng = np.random.default_rng(7)
        previous = _textured_frame(rng)
        dx, dy = shift
        current = _shift(previous, dx, dy)
        matcher = BlockMatcher(BlockMatchingConfig(block_size=16, search_range=7, strategy=strategy))
        field = matcher.estimate(current, previous)
        # Interior blocks (away from the wrap-around edges) must recover the shift.
        interior = field.vectors[1:-1, 1:-1]
        assert np.median(interior[..., 0]) == pytest.approx(dx, abs=1.0)
        assert np.median(interior[..., 1]) == pytest.approx(dy, abs=1.0)

    def test_static_scene_reports_zero_motion(self):
        rng = np.random.default_rng(8)
        frame = _textured_frame(rng)
        matcher = BlockMatcher(BlockMatchingConfig())
        field = matcher.estimate(frame, frame)
        assert field.max_magnitude() == 0.0
        assert np.all(field.sad == 0.0)

    def test_flat_frames_prefer_zero_motion(self):
        flat = np.full((48, 64), 128.0)
        matcher = BlockMatcher(BlockMatchingConfig(strategy=SearchStrategy.EXHAUSTIVE))
        field = matcher.estimate(flat, flat)
        assert field.max_magnitude() == 0.0

    def test_motion_beyond_search_range_is_not_recovered(self):
        rng = np.random.default_rng(9)
        previous = _textured_frame(rng)
        current = _shift(previous, 12, 0)  # beyond d = 7
        matcher = BlockMatcher(BlockMatchingConfig(search_range=7))
        field = matcher.estimate(current, previous)
        assert abs(field.mean_motion().u) <= 7.0


def _bump_canvas(height: int, width: int, seed: int, bumps: int = 40) -> np.ndarray:
    """Smooth, self-dissimilar uint8 content block matching can lock on to."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    img = np.zeros((height, width))
    for _ in range(bumps):
        cy, cx = rng.uniform(0, height), rng.uniform(0, width)
        sigma = rng.uniform(10, 25)
        img += rng.uniform(50, 255) * np.exp(
            -(((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma * sigma))
        )
    img = (img - img.min()) / (img.max() - img.min()) * 255
    return np.rint(img).astype(np.uint8)


class TestExactShiftRecovery:
    """Known-shift frames where the searches must be *exactly* right.

    The frames are crops of one larger canvas (no wrap-around), so every
    interior macroblock has a perfect (SAD = 0) match at the true
    displacement.  ES must find it for any in-range shift; TSS, being a
    greedy logarithmic descent, is guaranteed exact when the displacement
    lies on its first-step lattice (the SAD = 0 match is evaluated directly
    and strict improvement can never leave it).
    """

    HEIGHT, WIDTH, MARGIN = 96, 128, 16

    def _frame_pair(self, dx: int, dy: int):
        m = self.MARGIN
        canvas = _bump_canvas(self.HEIGHT + 2 * m, self.WIDTH + 2 * m, seed=5)
        previous = canvas[m : m + self.HEIGHT, m : m + self.WIDTH]
        # current[y, x] = previous[y - dy, x - dx]: forward motion (dx, dy).
        current = canvas[m - dy : m - dy + self.HEIGHT, m - dx : m - dx + self.WIDTH]
        return current, previous

    def _assert_exact(self, strategy, dx: int, dy: int):
        current, previous = self._frame_pair(dx, dy)
        matcher = BlockMatcher(
            BlockMatchingConfig(block_size=16, search_range=7, strategy=strategy)
        )
        field = matcher.estimate(current, previous)
        interior = field.vectors[1:-1, 1:-1]
        assert np.all(interior[..., 0] == dx), f"u != {dx} for {strategy}"
        assert np.all(interior[..., 1] == dy), f"v != {dy} for {strategy}"
        assert np.all(field.sad[1:-1, 1:-1] == 0.0)

    @pytest.mark.parametrize("shift", [(0, 0), (3, 2), (-5, 1), (7, -7), (2, -3), (-6, -4)])
    def test_es_recovers_any_in_range_shift_exactly(self, shift):
        self._assert_exact(SearchStrategy.EXHAUSTIVE, *shift)

    @pytest.mark.parametrize(
        "shift", [(0, 0), (4, 0), (0, -4), (-4, 0), (4, 4), (-4, -4), (-4, 4), (4, -4)]
    )
    def test_tss_recovers_step_lattice_shifts_exactly(self, shift):
        self._assert_exact(SearchStrategy.THREE_STEP, *shift)
        # ES must agree on these shifts too.
        self._assert_exact(SearchStrategy.EXHAUSTIVE, *shift)


class TestEstimateInterface:
    def test_shape_mismatch_rejected(self):
        matcher = BlockMatcher()
        with pytest.raises(ValueError):
            matcher.estimate(np.zeros((32, 32)), np.zeros((32, 48)))

    def test_non_2d_rejected(self):
        matcher = BlockMatcher()
        with pytest.raises(ValueError):
            matcher.estimate(np.zeros((32, 32, 3)), np.zeros((32, 32, 3)))

    def test_non_multiple_frame_size_is_padded(self):
        rng = np.random.default_rng(10)
        frame = rng.uniform(0, 255, (50, 70))
        matcher = BlockMatcher(BlockMatchingConfig(block_size=16))
        field = matcher.estimate(frame, frame)
        assert field.grid.rows == 4
        assert field.grid.cols == 5

    def test_operation_count_tracked(self):
        rng = np.random.default_rng(11)
        frame = _textured_frame(rng)
        config = BlockMatchingConfig(strategy=SearchStrategy.THREE_STEP)
        matcher = BlockMatcher(config)
        matcher.estimate(frame, frame)
        expected = (64 // 16) * (96 // 16) * config.ops_per_macroblock
        assert matcher.last_operation_count == expected

    def test_sad_values_are_non_negative(self):
        rng = np.random.default_rng(12)
        a = rng.uniform(0, 255, (48, 64))
        b = rng.uniform(0, 255, (48, 64))
        matcher = BlockMatcher()
        field = matcher.estimate(a, b)
        assert np.all(field.sad >= 0)

    def test_vectors_stay_within_search_window(self):
        rng = np.random.default_rng(13)
        a = rng.uniform(0, 255, (48, 64))
        b = rng.uniform(0, 255, (48, 64))
        for strategy in SearchStrategy:
            matcher = BlockMatcher(BlockMatchingConfig(search_range=5, strategy=strategy))
            field = matcher.estimate(a, b)
            assert np.all(np.abs(field.vectors) <= 5.0)


class TestESvsTSS:
    def test_tss_sad_never_better_than_es(self):
        """ES is optimal within the window; TSS can only match or do worse."""
        rng = np.random.default_rng(14)
        previous = _textured_frame(rng)
        current = _shift(previous, 2, 3) + rng.normal(0, 2.0, previous.shape)
        es = BlockMatcher(BlockMatchingConfig(strategy=SearchStrategy.EXHAUSTIVE))
        tss = BlockMatcher(BlockMatchingConfig(strategy=SearchStrategy.THREE_STEP))
        es_field = es.estimate(current, previous)
        tss_field = tss.estimate(current, previous)
        assert es_field.sad.sum() <= tss_field.sad.sum() + 1e-6

    def test_es_and_tss_agree_on_clean_translation(self):
        rng = np.random.default_rng(15)
        previous = _textured_frame(rng)
        current = _shift(previous, 4, 1)
        es = BlockMatcher(BlockMatchingConfig(strategy=SearchStrategy.EXHAUSTIVE))
        tss = BlockMatcher(BlockMatchingConfig(strategy=SearchStrategy.THREE_STEP))
        es_field = es.estimate(current, previous)
        tss_field = tss.estimate(current, previous)
        interior_es = es_field.vectors[1:-1, 1:-1]
        interior_tss = tss_field.vectors[1:-1, 1:-1]
        agreement = np.mean(np.all(interior_es == interior_tss, axis=-1))
        assert agreement > 0.8
