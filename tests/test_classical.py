"""Tests for the classical pixel-domain baselines (NCC tracker, frame-diff)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import BoundingBox
from repro.nn.classical import (
    FrameDifferenceConfig,
    FrameDifferenceDetector,
    NCCTemplateTracker,
    NCCTrackerConfig,
    _normalised_cross_correlation,
)


def _scene_with_square(x: int, y: int, size: int = 20, frame=(80, 120)) -> np.ndarray:
    rng = np.random.default_rng(42)
    background = rng.uniform(40, 60, frame)
    patch = rng.uniform(150, 220, (size, size))
    frame_img = background.copy()
    frame_img[y : y + size, x : x + size] = patch
    return frame_img


class TestNCC:
    def test_correlation_of_identical_patches_is_one(self):
        rng = np.random.default_rng(0)
        patch = rng.uniform(0, 255, (16, 16))
        assert _normalised_cross_correlation(patch, patch) == pytest.approx(1.0)

    def test_correlation_of_inverted_patch_is_negative(self):
        rng = np.random.default_rng(1)
        patch = rng.uniform(0, 255, (16, 16))
        assert _normalised_cross_correlation(patch, 255.0 - patch) < 0.0

    def test_flat_patch_returns_zero(self):
        flat = np.full((8, 8), 10.0)
        assert _normalised_cross_correlation(flat, flat) == 0.0


class TestNCCTemplateTracker:
    def test_requires_initialization(self):
        tracker = NCCTemplateTracker()
        with pytest.raises(RuntimeError):
            tracker.track(np.zeros((50, 50)))

    def test_tracks_translating_square(self):
        tracker = NCCTemplateTracker(NCCTrackerConfig(search_radius=8))
        first = _scene_with_square(30, 20)
        box = BoundingBox(30, 20, 20, 20)
        tracker.initialize(first, box)
        assert tracker.is_initialized
        ious = []
        for step in range(1, 6):
            frame = _scene_with_square(30 + 3 * step, 20 + 2 * step)
            result = tracker.track(frame)
            truth = BoundingBox(30 + 3 * step, 20 + 2 * step, 20, 20)
            ious.append(result.box.iou(truth))
        assert np.mean(ious) > 0.6

    def test_static_target_stays_put(self):
        tracker = NCCTemplateTracker()
        frame = _scene_with_square(40, 30)
        box = BoundingBox(40, 30, 20, 20)
        tracker.initialize(frame, box)
        result = tracker.track(frame)
        assert result.box.iou(box) > 0.9

    def test_result_stays_inside_frame(self):
        tracker = NCCTemplateTracker(NCCTrackerConfig(search_radius=10))
        frame = _scene_with_square(95, 55, size=20)
        box = BoundingBox(95, 55, 20, 20)
        tracker.initialize(frame, box)
        result = tracker.track(_scene_with_square(99, 59, size=20))
        assert result.box.right <= 120 + 1e-6
        assert result.box.bottom <= 80 + 1e-6


class TestFrameDifferenceDetector:
    def test_first_frame_yields_nothing(self):
        detector = FrameDifferenceDetector()
        assert detector.detect(_scene_with_square(10, 10)) == []

    def test_detects_moving_square(self):
        detector = FrameDifferenceDetector(FrameDifferenceConfig(min_area=20))
        detector.detect(_scene_with_square(20, 20))
        detections = detector.detect(_scene_with_square(32, 24))
        assert detections
        truth = BoundingBox(20, 20, 32, 24)  # union of the two positions roughly
        best = max(detections, key=lambda d: d.box.iou(truth))
        assert best.box.iou(truth) > 0.2

    def test_static_scene_produces_no_detections(self):
        detector = FrameDifferenceDetector()
        frame = _scene_with_square(20, 20)
        detector.detect(frame)
        assert detector.detect(frame.copy()) == []

    def test_min_area_filters_small_blobs(self):
        permissive = FrameDifferenceDetector(FrameDifferenceConfig(min_area=1))
        strict = FrameDifferenceDetector(FrameDifferenceConfig(min_area=100000))
        first = _scene_with_square(20, 20)
        second = _scene_with_square(26, 22)
        permissive.detect(first)
        strict.detect(first)
        assert len(permissive.detect(second)) >= len(strict.detect(second))

    def test_reset_forgets_reference(self):
        detector = FrameDifferenceDetector()
        detector.detect(_scene_with_square(20, 20))
        detector.reset()
        assert detector.detect(_scene_with_square(40, 30)) == []
