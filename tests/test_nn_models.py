"""Tests for the network workload models (Table 2 / Fig. 1 calibration)."""

from __future__ import annotations

import pytest

from repro.nn.models import (
    FIG1_REFERENCE_DETECTORS,
    MOBILE_TOPS_BUDGET,
    build_mdnet,
    build_tiny_yolo,
    build_yolo_v2,
    get_network,
)


class TestTable2Calibration:
    """The GOPS-at-60-FPS numbers should land near the paper's Table 2."""

    def test_yolo_v2_gops(self):
        assert build_yolo_v2().gops_at_fps(60.0) == pytest.approx(3423, rel=0.15)

    def test_tiny_yolo_gops(self):
        assert build_tiny_yolo().gops_at_fps(60.0) == pytest.approx(675, rel=0.15)

    def test_mdnet_gops(self):
        assert build_mdnet().gops_at_fps(60.0) == pytest.approx(635, rel=0.15)

    def test_relative_ordering(self):
        yolo = build_yolo_v2().ops_per_frame
        tiny = build_tiny_yolo().ops_per_frame
        assert yolo > 4 * tiny  # Tiny YOLO is an ~80% MAC reduction

    def test_yolo_exceeds_mobile_budget_but_tiny_does_not(self):
        """Fig. 1's motivation: full detectors exceed ~1 TOPS, Tiny YOLO fits."""
        assert build_yolo_v2().gops_at_fps(60.0) / 1000.0 > MOBILE_TOPS_BUDGET
        assert build_tiny_yolo().gops_at_fps(60.0) / 1000.0 < MOBILE_TOPS_BUDGET


class TestNetworkSpec:
    def test_layer_counts(self):
        assert len(build_yolo_v2().conv_layers()) == 22
        assert len(build_tiny_yolo().conv_layers()) == 9

    def test_parameters_are_positive_and_ordered(self):
        assert build_yolo_v2().total_parameters > build_tiny_yolo().total_parameters > 0

    def test_mdnet_candidates_multiply_frame_cost(self):
        few = build_mdnet(candidates_per_frame=1)
        many = build_mdnet(candidates_per_frame=10)
        assert many.ops_per_frame == 10 * few.ops_per_frame
        assert many.ops_per_evaluation == few.ops_per_evaluation

    def test_describe_mentions_name_and_gops(self):
        text = build_tiny_yolo().describe()
        assert "TinyYOLO" in text
        assert "GOPS" in text

    def test_weight_bytes_follow_precision(self):
        net = build_tiny_yolo()
        assert net.weight_bytes == net.total_parameters * net.bytes_per_value


class TestLookup:
    def test_get_network_variants(self):
        assert get_network("YOLOv2").name == "YOLOv2"
        assert get_network("tiny-yolo").name == "TinyYOLO"
        assert get_network("MD Net").name == "MDNet"

    def test_unknown_network(self):
        with pytest.raises(KeyError):
            get_network("resnet50")


class TestFig1References:
    def test_reference_set_contains_expected_detectors(self):
        names = {ref.name for ref in FIG1_REFERENCE_DETECTORS}
        assert {"Haar", "HOG", "Tiny YOLO", "SSD", "YOLOv2", "Faster R-CNN"} <= names

    def test_cnns_are_more_accurate_than_handcrafted(self):
        cnn_accuracy = min(r.accuracy_percent for r in FIG1_REFERENCE_DETECTORS if r.is_cnn)
        handcrafted_accuracy = max(
            r.accuracy_percent for r in FIG1_REFERENCE_DETECTORS if not r.is_cnn
        )
        assert cnn_accuracy > handcrafted_accuracy

    def test_full_cnn_detectors_exceed_budget(self):
        for reference in FIG1_REFERENCE_DETECTORS:
            if reference.name in {"SSD", "YOLOv2", "Faster R-CNN"}:
                assert reference.tops_at_480p60 > MOBILE_TOPS_BUDGET
