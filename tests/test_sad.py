"""Tests for the SAD matching metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion.sad import normalized_sad, sad_map, sum_of_absolute_differences


class TestSAD:
    def test_identical_blocks_have_zero_sad(self):
        block = np.full((8, 8), 120.0)
        assert sum_of_absolute_differences(block, block) == 0.0

    def test_known_difference(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 3.0)
        assert sum_of_absolute_differences(a, b) == 48.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sum_of_absolute_differences(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(0, 255, (8, 8))
        b = rng.uniform(0, 255, (8, 8))
        assert sum_of_absolute_differences(a, b) == pytest.approx(
            sum_of_absolute_differences(b, a)
        )


class TestNormalizedSAD:
    def test_maximum_difference_is_one(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 255.0)
        assert normalized_sad(a, b) == pytest.approx(1.0)

    def test_identical_is_zero(self):
        a = np.full((8, 8), 42.0)
        assert normalized_sad(a, a) == 0.0

    def test_bounded(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(0, 255, (16, 16))
        b = rng.uniform(0, 255, (16, 16))
        assert 0.0 <= normalized_sad(a, b) <= 1.0


class TestSADMap:
    def test_per_block_values(self):
        current = np.zeros((8, 8))
        reference = np.zeros((8, 8))
        reference[:4, :4] = 2.0  # only the top-left 4x4 block differs
        result = sad_map(current, reference, 4)
        assert result.shape == (2, 2)
        assert result[0, 0] == 32.0
        assert result[0, 1] == 0.0
        assert result[1, 0] == 0.0
        assert result[1, 1] == 0.0

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            sad_map(np.zeros((8, 8)), np.zeros((8, 4)), 4)

    def test_non_multiple_frames_are_edge_padded(self):
        """Partial edge blocks count as full blocks, like the BlockMatcher."""
        current = np.zeros((10, 10))
        reference = np.full((10, 10), 1.0)
        result = sad_map(current, reference, 4)
        assert result.shape == (3, 3)
        # Edge padding replicates the last row/column, so every padded block
        # still differs by 1.0 per pixel over a full 4x4 block.
        assert np.all(result == 16.0)

    def test_rejects_non_positive_block(self):
        with pytest.raises(ValueError):
            sad_map(np.zeros((8, 8)), np.zeros((8, 8)), 0)
