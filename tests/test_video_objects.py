"""Tests for moving objects and their rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.video.objects import MovingObject, make_textured_part, _resize_nearest
from repro.video.trajectories import LinearTrajectory


def _simple_object(**overrides) -> MovingObject:
    rng = np.random.default_rng(5)
    part = make_textured_part(rng, width=20.0, height=16.0)
    defaults = dict(
        object_id=0,
        label="car",
        trajectory=LinearTrajectory(40.0, 30.0, 2.0, 1.0),
        parts=[part],
    )
    defaults.update(overrides)
    return MovingObject(**defaults)


class TestMovingObjectGeometry:
    def test_center_follows_trajectory(self):
        obj = _simple_object()
        assert obj.center_at(0) == (40.0, 30.0)
        assert obj.center_at(5) == (50.0, 35.0)

    def test_bounding_box_size_matches_part(self):
        obj = _simple_object()
        box = obj.bounding_box(0)
        assert box.width == pytest.approx(20.0)
        assert box.height == pytest.approx(16.0)
        assert box.center.x == pytest.approx(40.0)

    def test_scale_rate_grows_box(self):
        obj = _simple_object(scale_rate=1.01)
        early = obj.bounding_box(0)
        late = obj.bounding_box(30)
        assert late.width > early.width

    def test_scale_is_clamped(self):
        obj = _simple_object(scale_rate=1.1)
        assert obj.scale_at(1000) <= 4.0
        shrinking = _simple_object(scale_rate=0.9)
        assert shrinking.scale_at(1000) >= 0.25

    def test_multi_part_bounding_box_covers_all_parts(self):
        rng = np.random.default_rng(6)
        torso = make_textured_part(rng, 12, 20)
        limb = make_textured_part(rng, 6, 10, offset_x=-10.0)
        obj = _simple_object(parts=[torso, limb])
        box = obj.bounding_box(0)
        for part_box in obj.part_boxes(0):
            assert box.contains_box(part_box)


class TestGroundTruth:
    def test_ground_truth_is_clipped_to_frame(self):
        obj = _simple_object(trajectory=LinearTrajectory(5.0, 5.0, 0.0, 0.0))
        box = obj.ground_truth_box(0, frame_width=100, frame_height=60)
        assert box is not None
        assert box.left >= 0.0 and box.top >= 0.0

    def test_out_of_view_interval_returns_none(self):
        obj = _simple_object(out_of_view_intervals=((3, 6),))
        assert obj.ground_truth_box(4, 100, 60) is None
        assert obj.ground_truth_box(6, 100, 60) is not None

    def test_object_fully_outside_frame_returns_none(self):
        obj = _simple_object(trajectory=LinearTrajectory(-100.0, -100.0, 0.0, 0.0))
        assert obj.ground_truth_box(0, 100, 60) is None

    def test_occlusion_flag(self):
        obj = _simple_object(occluded_intervals=((2, 4),))
        assert not obj.is_occluded(1)
        assert obj.is_occluded(2)
        assert obj.is_occluded(3)
        assert not obj.is_occluded(4)


class TestRendering:
    def test_render_changes_canvas_inside_box(self):
        obj = _simple_object()
        canvas = np.zeros((60, 100))
        obj.render_into(canvas, 0)
        box = obj.bounding_box(0).clip(100, 60)
        region = canvas[
            int(box.top) + 1 : int(box.bottom) - 1, int(box.left) + 1 : int(box.right) - 1
        ]
        assert region.mean() > 50.0
        # Pixels far away from the object are untouched.
        assert canvas[0, 0] == 0.0

    def test_render_skips_out_of_view(self):
        obj = _simple_object(out_of_view_intervals=((0, 5),))
        canvas = np.zeros((60, 100))
        obj.render_into(canvas, 1)
        assert canvas.sum() == 0.0

    def test_render_partial_off_frame_does_not_crash(self):
        obj = _simple_object(trajectory=LinearTrajectory(95.0, 55.0, 0.0, 0.0))
        canvas = np.zeros((60, 100))
        obj.render_into(canvas, 0)
        assert np.isfinite(canvas).all()

    def test_occluder_flattens_lower_half(self):
        obj = _simple_object(occluded_intervals=((0, 1),))
        canvas = np.zeros((60, 100))
        obj.render_into(canvas, 0)
        box = obj.bounding_box(0)
        lower = canvas[
            int(box.top + 0.6 * box.height) : int(box.bottom) - 1,
            int(box.left) + 1 : int(box.right) - 1,
        ]
        assert np.all(lower == 128.0)

    def test_illumination_scales_brightness(self):
        obj = _simple_object()
        bright = np.zeros((60, 100))
        dim = np.zeros((60, 100))
        obj.render_into(bright, 0, illumination=1.0)
        obj.render_into(dim, 0, illumination=0.5)
        assert dim.sum() < bright.sum()


class TestTextureHelpers:
    def test_make_textured_part_range(self):
        rng = np.random.default_rng(1)
        part = make_textured_part(rng, 16, 16, base_intensity=200.0, contrast=40.0)
        assert part.texture.min() >= 0.0
        assert part.texture.max() <= 255.0
        assert part.texture.std() > 1.0  # has structure, not flat

    def test_resize_nearest_shapes(self):
        texture = np.arange(16, dtype=float).reshape(4, 4)
        resized = _resize_nearest(texture, 8, 2)
        assert resized.shape == (8, 2)
        down = _resize_nearest(texture, 2, 2)
        assert down.shape == (2, 2)

    def test_part_local_offset_oscillates(self):
        rng = np.random.default_rng(2)
        part = make_textured_part(rng, 10, 10, sway_amplitude=4.0, sway_period=8.0)
        offsets = {round(part.local_offset(t)[0], 6) for t in range(8)}
        assert len(offsets) > 1
