"""Tests for the macroblock grid and motion field (Eq. 1 / Eq. 2 queries)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.geometry import BoundingBox, MotionVector
from repro.motion.motion_field import MacroblockGrid, MotionField


class TestMacroblockGrid:
    def test_grid_dimensions(self, simple_grid):
        assert simple_grid.cols == 4
        assert simple_grid.rows == 3
        assert simple_grid.num_blocks == 12

    def test_partial_blocks_count(self):
        grid = MacroblockGrid(frame_width=70, frame_height=50, block_size=16)
        assert grid.cols == 5  # 70/16 -> 4.375 -> 5
        assert grid.rows == 4

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            MacroblockGrid(64, 48, 0)
        with pytest.raises(ValueError):
            MacroblockGrid(0, 48, 16)

    def test_block_index_for_pixel(self, simple_grid):
        assert simple_grid.block_index_for_pixel(0, 0) == (0, 0)
        assert simple_grid.block_index_for_pixel(17, 33) == (2, 1)

    def test_block_index_clamps_out_of_frame(self, simple_grid):
        assert simple_grid.block_index_for_pixel(-10, -10) == (0, 0)
        assert simple_grid.block_index_for_pixel(1000, 1000) == (2, 3)

    def test_block_box_edges_are_cropped(self):
        grid = MacroblockGrid(frame_width=70, frame_height=50, block_size=16)
        edge_box = grid.block_box(3, 4)
        assert edge_box.width == 70 - 64
        assert edge_box.height == 50 - 48

    def test_blocks_overlapping_roi(self, simple_grid):
        rows, cols = simple_grid.blocks_overlapping(BoundingBox(10, 10, 20, 20))
        assert (rows.start, rows.stop) == (0, 2)
        assert (cols.start, cols.stop) == (0, 2)

    def test_blocks_overlapping_exact_boundary(self, simple_grid):
        rows, cols = simple_grid.blocks_overlapping(BoundingBox(0, 0, 16, 16))
        assert (rows.start, rows.stop) == (0, 1)
        assert (cols.start, cols.stop) == (0, 1)

    def test_blocks_overlapping_fully_outside_falls_back(self, simple_grid):
        rows, cols = simple_grid.blocks_overlapping(BoundingBox(500, 500, 10, 10))
        assert rows.stop - rows.start == 1
        assert cols.stop - cols.start == 1


class TestMotionFieldConstruction:
    def test_shape_validation(self, simple_grid):
        with pytest.raises(ValueError):
            MotionField(np.zeros((3, 4)), np.zeros((3, 4)), simple_grid)
        with pytest.raises(ValueError):
            MotionField(np.zeros((2, 4, 2)), np.zeros((2, 4)), simple_grid)
        with pytest.raises(ValueError):
            MotionField(np.zeros((3, 4, 2)), np.zeros((2, 4)), simple_grid)

    def test_negative_sad_rejected(self, simple_grid):
        sad = np.zeros((3, 4))
        sad[0, 0] = -1
        with pytest.raises(ValueError):
            MotionField(np.zeros((3, 4, 2)), sad, simple_grid)

    def test_zero_factory(self, simple_grid):
        field = MotionField.zero(simple_grid)
        assert field.mean_motion() == MotionVector(0.0, 0.0)
        assert field.max_magnitude() == 0.0

    def test_uniform_factory(self, simple_grid):
        field = MotionField.uniform(simple_grid, MotionVector(3.0, -1.0), sad_value=10.0)
        assert field.mean_motion() == MotionVector(3.0, -1.0)
        assert np.all(field.sad == 10.0)


class TestConfidence:
    def test_zero_sad_gives_full_confidence(self, uniform_motion_field):
        assert np.all(uniform_motion_field.confidence() == 1.0)

    def test_max_sad_gives_zero_confidence(self, simple_grid):
        sad = np.full((3, 4), 255.0 * 16 * 16)
        field = MotionField(np.zeros((3, 4, 2)), sad, simple_grid)
        assert np.all(field.confidence() == 0.0)

    def test_confidence_matches_equation2(self, simple_grid):
        sad_value = 0.25 * 255.0 * 16 * 16
        field = MotionField(np.zeros((3, 4, 2)), np.full((3, 4), sad_value), simple_grid)
        assert field.confidence()[0, 0] == pytest.approx(0.75)


class TestRoiQueries:
    def test_vector_at_pixel(self, simple_grid):
        vectors = np.zeros((3, 4, 2))
        vectors[1, 2] = (5.0, -3.0)
        field = MotionField(vectors, np.zeros((3, 4)), simple_grid)
        assert field.vector_at(2 * 16 + 3, 1 * 16 + 3) == MotionVector(5.0, -3.0)

    def test_roi_average_uniform(self, uniform_motion_field):
        roi = BoundingBox(5, 5, 30, 30)
        motion = uniform_motion_field.roi_average_motion(roi)
        assert motion.u == pytest.approx(2.0)
        assert motion.v == pytest.approx(1.0)

    def test_roi_average_is_area_weighted(self, simple_grid):
        vectors = np.zeros((3, 4, 2))
        vectors[0, 0] = (4.0, 0.0)
        vectors[0, 1] = (0.0, 0.0)
        field = MotionField(vectors, np.zeros((3, 4)), simple_grid)
        # ROI covers 3/4 of block (0,0) horizontally and 1/4 of block (0,1).
        roi = BoundingBox(4, 0, 16, 16)
        motion = field.roi_average_motion(roi)
        assert motion.u == pytest.approx(4.0 * 0.75)

    def test_roi_outside_frame_returns_finite(self, uniform_motion_field):
        roi = BoundingBox(1000, 1000, 10, 10)
        motion = uniform_motion_field.roi_average_motion(roi)
        assert np.isfinite(motion.u) and np.isfinite(motion.v)

    def test_roi_confidence_uniform(self, uniform_motion_field, sample_box):
        assert uniform_motion_field.roi_confidence(sample_box) == pytest.approx(1.0)

    def test_roi_confidence_mixed(self, simple_grid):
        sad = np.zeros((3, 4))
        sad[0, 0] = 255.0 * 256  # zero confidence block
        field = MotionField(np.zeros((3, 4, 2)), sad, simple_grid)
        roi = BoundingBox(0, 0, 32, 16)  # half over the bad block
        assert field.roi_confidence(roi) == pytest.approx(0.5)


class TestMetadataAccounting:
    def test_bits_per_vector_at_d7(self, uniform_motion_field):
        # ceil(log2(15)) = 4 bits per direction -> 8 bits per MV.
        assert uniform_motion_field.bits_per_vector() == 8

    def test_metadata_bytes(self, uniform_motion_field):
        # 12 macroblocks x (1 MV byte + 1 confidence byte).
        assert uniform_motion_field.metadata_bytes() == 24

    def test_1080p_metadata_is_about_16kb(self):
        grid = MacroblockGrid(1920, 1080, 16)
        field = MotionField.zero(grid)
        assert 8_000 <= field.metadata_bytes() <= 20_000


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
@given(
    u=st.floats(-7, 7, allow_nan=False),
    v=st.floats(-7, 7, allow_nan=False),
    x=st.floats(0, 60, allow_nan=False),
    y=st.floats(0, 44, allow_nan=False),
    w=st.floats(1, 40, allow_nan=False),
    h=st.floats(1, 40, allow_nan=False),
)
def test_uniform_field_average_equals_field_motion(u, v, x, y, w, h):
    grid = MacroblockGrid(64, 48, 16)
    field = MotionField.uniform(grid, MotionVector(u, v))
    motion = field.roi_average_motion(BoundingBox(x, y, w, h))
    assert motion.u == pytest.approx(u, abs=1e-9)
    assert motion.v == pytest.approx(v, abs=1e-9)


@given(sad_scale=st.floats(0, 1, allow_nan=False))
def test_confidence_always_within_unit_interval(sad_scale):
    grid = MacroblockGrid(64, 48, 16)
    sad = np.full((grid.rows, grid.cols), sad_scale * 255.0 * 256)
    field = MotionField(np.zeros((grid.rows, grid.cols, 2)), sad, grid)
    confidence = field.confidence()
    assert np.all(confidence >= 0.0)
    assert np.all(confidence <= 1.0)
    roi_confidence = field.roi_confidence(BoundingBox(3, 3, 30, 20))
    assert 0.0 <= roi_confidence <= 1.0
