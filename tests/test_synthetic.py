"""Tests for the synthetic sequence generator and VideoSequence container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import BoundingBox
from repro.video.attributes import VisualAttribute
from repro.video.sequence import VideoSequence
from repro.video.synthetic import SequenceConfig, SequenceGenerator


class TestSequenceConfigValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            SequenceConfig(num_frames=0)
        with pytest.raises(ValueError):
            SequenceConfig(num_objects=0)
        with pytest.raises(ValueError):
            SequenceConfig(frame_width=8)


class TestGeneratedSequence:
    def test_shape_and_dtype(self, small_sequence):
        assert small_sequence.frames.dtype == np.uint8
        assert small_sequence.frames.shape == (24, 108, 192)
        assert small_sequence.num_frames == 24
        assert small_sequence.width == 192
        assert small_sequence.height == 108

    def test_ground_truth_every_frame(self, small_sequence):
        truth = small_sequence.truth_for(small_sequence.primary_object_id)
        assert len(truth) == small_sequence.num_frames
        assert all(box is None or isinstance(box, BoundingBox) for box in truth)
        # A plain sequence keeps the target visible the whole time.
        assert all(box is not None for box in truth)

    def test_determinism(self):
        config = SequenceConfig(name="deterministic", num_frames=10, seed=77)
        a = SequenceGenerator(config).generate()
        b = SequenceGenerator(config).generate()
        assert np.array_equal(a.frames, b.frames)
        assert a.truth_for(0)[5].as_xywh() == b.truth_for(0)[5].as_xywh()

    def test_different_seeds_differ(self):
        a = SequenceGenerator(SequenceConfig(num_frames=10, seed=1)).generate()
        b = SequenceGenerator(SequenceConfig(num_frames=10, seed=2)).generate()
        assert not np.array_equal(a.frames, b.frames)

    def test_object_moves_between_frames(self, small_sequence):
        truth = small_sequence.truth_for(small_sequence.primary_object_id)
        first, last = truth[0], truth[-1]
        displacement = abs(first.center.x - last.center.x) + abs(first.center.y - last.center.y)
        assert displacement > 3.0

    def test_ground_truth_stays_inside_frame(self, small_sequence):
        for box in small_sequence.truth_for(0):
            assert box.left >= -1e-6
            assert box.top >= -1e-6
            assert box.right <= small_sequence.width + 1e-6
            assert box.bottom <= small_sequence.height + 1e-6

    def test_multi_object_annotations(self, multi_object_sequence):
        assert len(multi_object_sequence.object_ids) == 4
        assert multi_object_sequence.average_objects_per_frame() > 2.0
        detections = multi_object_sequence.truth_detections(0)
        assert len(detections) >= 3
        labels = {d.label for d in detections}
        assert all(isinstance(label, str) and label for label in labels)


class TestAttributeEffects:
    def test_fast_motion_moves_faster(self, small_sequence, fast_motion_sequence):
        def mean_speed(sequence):
            truth = sequence.truth_for(sequence.primary_object_id)
            speeds = []
            for a, b in zip(truth[:-1], truth[1:]):
                if a is None or b is None:
                    continue
                speeds.append(
                    abs(b.center.x - a.center.x) + abs(b.center.y - a.center.y)
                )
            return float(np.mean(speeds))

        assert mean_speed(fast_motion_sequence) > 2.0 * mean_speed(small_sequence)

    def test_out_of_view_attribute_produces_gaps(self):
        config = SequenceConfig(
            name="oov",
            num_frames=30,
            seed=3,
            attributes=frozenset({VisualAttribute.OUT_OF_VIEW}),
        )
        sequence = SequenceGenerator(config).generate()
        truth = sequence.truth_for(0)
        assert any(box is None for box in truth)

    def test_illumination_variation_changes_brightness(self):
        config = SequenceConfig(
            name="illum",
            num_frames=40,
            seed=4,
            attributes=frozenset({VisualAttribute.ILLUMINATION_VARIATION}),
        )
        sequence = SequenceGenerator(config).generate()
        means = sequence.frames.mean(axis=(1, 2))
        assert means.max() - means.min() > 10.0

    def test_background_clutter_raises_texture(self):
        plain = SequenceGenerator(SequenceConfig(num_frames=5, seed=5)).generate()
        cluttered = SequenceGenerator(
            SequenceConfig(
                num_frames=5,
                seed=5,
                attributes=frozenset({VisualAttribute.BACKGROUND_CLUTTER}),
            )
        ).generate()
        assert cluttered.frames[0].std() > plain.frames[0].std()

    def test_attributes_recorded_on_sequence(self, fast_motion_sequence):
        assert fast_motion_sequence.has_attribute(VisualAttribute.FAST_MOTION)
        assert not fast_motion_sequence.has_attribute(VisualAttribute.OCCLUSION)


class TestVideoSequenceValidation:
    def test_rejects_wrong_annotation_length(self):
        frames = np.zeros((5, 32, 32), dtype=np.uint8)
        with pytest.raises(ValueError):
            VideoSequence(
                name="bad",
                frames=frames,
                ground_truth={0: [BoundingBox(0, 0, 4, 4)] * 3},
            )

    def test_rejects_non_3d_frames(self):
        with pytest.raises(ValueError):
            VideoSequence(name="bad", frames=np.zeros((32, 32)), ground_truth={})

    def test_truth_at_skips_absent_objects(self):
        frames = np.zeros((2, 32, 32), dtype=np.uint8)
        sequence = VideoSequence(
            name="partial",
            frames=frames,
            ground_truth={0: [BoundingBox(0, 0, 4, 4), None]},
        )
        assert list(sequence.truth_at(0).keys()) == [0]
        assert sequence.truth_at(1) == {}
        assert sequence.total_annotations() == 1

    def test_primary_object_requires_annotations(self):
        sequence = VideoSequence(
            name="empty", frames=np.zeros((1, 32, 32), dtype=np.uint8), ground_truth={}
        )
        with pytest.raises(ValueError):
            _ = sequence.primary_object_id
