"""Integration test: the full RAW frontend feeding a real-pixel backend.

This exercises the complete functional path with no simulated component:
synthetic scene -> camera sensor (Bayer + noise + dead pixels) -> ISP stages
-> temporal denoise (block matching) -> frame buffer -> NCC template tracker
on I-frames -> motion extrapolation on E-frames.
"""

from __future__ import annotations

import numpy as np

from repro.core.extrapolation import MotionExtrapolator
from repro.isp.pipeline import ISPPipeline
from repro.isp.sensor import CameraSensor
from repro.nn.classical import NCCTemplateTracker, NCCTrackerConfig


class TestFullFrontendToBackendPath:
    def test_raw_pipeline_with_ncc_and_extrapolation(self, small_sequence):
        sensor = CameraSensor(seed=21)
        isp = ISPPipeline()
        tracker = NCCTemplateTracker(NCCTrackerConfig(search_radius=10))
        extrapolator = MotionExtrapolator(
            frame_width=small_sequence.width, frame_height=small_sequence.height
        )
        target = small_sequence.primary_object_id
        truth_boxes = small_sequence.truth_for(target)

        current_box = None
        ious = []
        num_frames = 12
        for frame_index in range(num_frames):
            raw = sensor.capture(small_sequence.frame(frame_index), frame_index)
            processed = isp.process(raw)

            if frame_index == 0:
                current_box = truth_boxes[0]
                tracker.initialize(processed.luma, current_box)
                continue

            if frame_index % 2 == 1 and processed.motion_field is not None:
                # E-frame: extrapolate using the ISP's motion vectors.
                result = extrapolator.extrapolate_roi(current_box, processed.motion_field)
                current_box = result.box
            else:
                # I-frame: run the real pixel-domain tracker.
                detection = tracker.track(processed.luma)
                current_box = detection.box

            truth = truth_boxes[frame_index]
            if truth is not None:
                ious.append(current_box.iou(truth))

        assert len(ious) == num_frames - 1
        assert float(np.mean(ious)) > 0.35
        # The frame buffer actually carried MV metadata for the backend.
        assert isp.frame_buffer.latest().has_motion_vectors

    def test_frame_buffer_traffic_ratio(self, small_sequence):
        """Pixel traffic must dwarf MV metadata traffic (the Sec. 4.2 argument)."""
        sensor = CameraSensor(seed=22)
        isp = ISPPipeline()
        for frame_index in range(4):
            isp.process(sensor.capture(small_sequence.frame(frame_index), frame_index))
        buffer = isp.frame_buffer
        pixels = buffer.read_pixels(3)
        assert pixels.shape == small_sequence.frame(3).shape
        metadata = buffer.read_motion_metadata(3)
        assert metadata is not None
        entry = buffer.get(3)
        assert entry.motion_metadata_bytes < 0.01 * entry.pixel_bytes
