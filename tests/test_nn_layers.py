"""Tests for the CNN layer descriptors and their accounting."""

from __future__ import annotations


from repro.nn.layers import ConvLayer, FullyConnectedLayer, PoolLayer


class TestConvLayer:
    def test_same_padding_preserves_size(self):
        layer = ConvLayer("c", 32, 32, 16, 32, kernel_size=3, stride=1)
        assert layer.output_shape == (32, 32, 32)

    def test_stride_two_halves_size(self):
        layer = ConvLayer("c", 32, 32, 16, 32, kernel_size=3, stride=2)
        out_h, out_w, _ = layer.output_shape
        assert out_h == 16 and out_w == 16

    def test_explicit_padding(self):
        layer = ConvLayer("c", 107, 107, 3, 96, kernel_size=7, stride=2, padding=0)
        out_h, _, _ = layer.output_shape
        assert out_h == (107 - 7) // 2 + 1

    def test_mac_count(self):
        layer = ConvLayer("c", 8, 8, 4, 8, kernel_size=3, stride=1)
        # 8*8 output pixels * 8 out channels * 4 in channels * 9.
        assert layer.macs == 8 * 8 * 8 * 4 * 9
        assert layer.ops == 2 * layer.macs

    def test_parameter_count(self):
        layer = ConvLayer("c", 8, 8, 4, 8, kernel_size=3)
        assert layer.parameters == 8 * 4 * 9 + 8

    def test_output_activations(self):
        layer = ConvLayer("c", 8, 8, 4, 8, kernel_size=3)
        assert layer.output_activations == 8 * 8 * 8


class TestPoolLayer:
    def test_output_shape_halves(self):
        layer = PoolLayer("p", 32, 32, 64, kernel_size=2, stride=2)
        assert layer.output_shape == (16, 16, 64)

    def test_no_macs_but_some_ops(self):
        layer = PoolLayer("p", 32, 32, 64)
        assert layer.macs == 0
        assert layer.ops == 32 * 32 * 64
        assert layer.parameters == 0

    def test_stride_one_pool(self):
        layer = PoolLayer("p", 13, 13, 512, kernel_size=2, stride=1)
        out_h, out_w, _ = layer.output_shape
        assert out_h == 12 and out_w == 12


class TestFullyConnectedLayer:
    def test_macs_and_params(self):
        layer = FullyConnectedLayer("fc", 512, 128)
        assert layer.macs == 512 * 128
        assert layer.parameters == 512 * 128 + 128
        assert layer.output_shape == (1, 1, 128)
        assert layer.output_activations == 128
