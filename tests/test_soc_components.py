"""Tests for the individual SoC IP models: NNX, motion controller, CPU, DRAM."""

from __future__ import annotations

import pytest

from repro.nn.models import build_mdnet, build_tiny_yolo, build_yolo_v2
from repro.soc.config import CPUConfig, DRAMConfig, NNXConfig, SoCConfig
from repro.soc.cpu import CPUHost
from repro.soc.dram import DRAMModel
from repro.soc.motion_controller import MotionControllerIP
from repro.soc.nnx import NNXAccelerator


class TestNNXConfig:
    def test_peak_throughput(self):
        config = NNXConfig()
        # 24x24 MACs at 1 GHz = 1.152 TOPS (Sec. 5.1).
        assert config.peak_tops == pytest.approx(1.152)

    def test_power_efficiency_matches_paper(self):
        config = NNXConfig()
        # The paper reports 1.77 TOPS/W post-layout.
        assert config.tops_per_watt == pytest.approx(1.77, rel=0.02)


class TestNNXAccelerator:
    def test_inference_energy_scales_with_latency(self):
        nnx = NNXAccelerator()
        yolo_energy = nnx.inference_energy_j(build_yolo_v2())
        tiny_energy = nnx.inference_energy_j(build_tiny_yolo())
        assert yolo_energy > 3 * tiny_energy

    def test_yolo_iframe_traffic_near_paper_value(self):
        """Each YOLOv2 I-frame moves ~646 MB of DRAM traffic (Sec. 6.1)."""
        nnx = NNXAccelerator()
        network = build_yolo_v2()
        input_bytes = 640 * 480 * 3
        traffic = nnx.inference_dram_traffic_bytes(network, input_bytes)
        assert traffic == pytest.approx(646e6, rel=0.15)

    def test_traffic_ordering(self):
        nnx = NNXAccelerator()
        traffic = {
            net.name: nnx.inference_dram_traffic_bytes(net, 640 * 480 * 3)
            for net in (build_yolo_v2(), build_tiny_yolo(), build_mdnet())
        }
        assert traffic["YOLOv2"] > traffic["TinyYOLO"] > 0
        assert traffic["YOLOv2"] > traffic["MDNet"] > 0

    def test_inference_cost_bundle(self):
        nnx = NNXAccelerator()
        cost = nnx.inference_cost(build_tiny_yolo(), 640 * 480 * 3)
        assert cost.network_name == "TinyYOLO"
        assert cost.latency_s > 0
        assert cost.achievable_fps == pytest.approx(1.0 / cost.latency_s)
        assert cost.ops == build_tiny_yolo().ops_per_frame

    def test_idle_energy(self):
        nnx = NNXAccelerator()
        assert nnx.idle_energy_j(1.0) == pytest.approx(NNXConfig().idle_power_w)


class TestMotionController:
    def test_extrapolation_is_orders_of_magnitude_cheaper_than_inference(self):
        mc = MotionControllerIP()
        # ~10 K ops per ROI vs billions per CNN inference (Sec. 3.2).
        assert mc.extrapolation_ops(1) == pytest.approx(10_000)
        assert mc.extrapolation_ops(1) < build_tiny_yolo().ops_per_frame / 1e4

    def test_supports_ten_rois_at_60fps(self):
        """The IP is sized for 10 ROIs per frame at 60 FPS (Sec. 5.1)."""
        mc = MotionControllerIP()
        assert mc.supports_frame_rate(num_rois=10, frame_rate=60.0)

    def test_latency_scales_with_rois(self):
        mc = MotionControllerIP()
        assert mc.extrapolation_latency_s(10) == pytest.approx(
            10 * mc.extrapolation_latency_s(1)
        )

    def test_frame_energy_is_milliwatt_scale(self):
        mc = MotionControllerIP()
        energy = mc.frame_energy_j(1.0 / 60.0)
        assert energy == pytest.approx(0.0022 / 60.0)

    def test_extrapolation_traffic_dominated_by_metadata(self):
        mc = MotionControllerIP()
        traffic = mc.extrapolation_traffic_bytes(motion_metadata_bytes=16_200, num_rois=6)
        assert 16_200 < traffic < 17_000

    def test_extrapolation_cost_bundle(self):
        mc = MotionControllerIP()
        cost = mc.extrapolation_cost(1.0 / 60.0, 16_200, 6)
        assert cost.latency_s > 0
        assert cost.energy_j > 0
        assert cost.dram_traffic_bytes > 16_200
        assert cost.ops == pytest.approx(60_000)


class TestCPUHost:
    def test_software_extrapolation_is_far_more_expensive_than_mc(self):
        cpu = CPUHost()
        mc = MotionControllerIP()
        cpu_energy = cpu.extrapolation_cost().energy_j
        mc_energy = mc.frame_energy_j(1.0 / 60.0)
        assert cpu_energy > 50 * mc_energy

    def test_idle_energy_zero_by_default(self):
        assert CPUHost().idle_energy_j(10.0) == 0.0

    def test_cost_combines_wake_and_compute(self):
        config = CPUConfig(active_power_w=2.0, wake_latency_s=0.001, extrapolation_time_s=0.002)
        cost = CPUHost(config).extrapolation_cost()
        assert cost.latency_s == pytest.approx(0.003)
        assert cost.energy_j == pytest.approx(0.006)


class TestDRAM:
    def test_energy_split(self):
        dram = DRAMModel()
        usage = dram.usage(traffic_bytes=int(1e9), duration_s=1.0)
        assert usage.background_energy_j == pytest.approx(0.140)
        assert usage.dynamic_energy_j == pytest.approx(1e9 * 45e-12)
        assert usage.total_energy_j == usage.background_energy_j + usage.dynamic_energy_j

    def test_capture_only_power_near_tx2_measurement(self):
        """1080p60 capture workload should land near the measured ~230 mW."""
        soc = SoCConfig()
        dram = DRAMModel(soc.dram)
        frontend_traffic_per_s = 60 * (1920 * 1080) * (2 + 2 + 3 + 3)
        usage = dram.usage(int(frontend_traffic_per_s), 1.0)
        assert 0.15 <= usage.average_power_w <= 0.30

    def test_validation(self):
        dram = DRAMModel()
        with pytest.raises(ValueError):
            dram.usage(-1, 1.0)
        with pytest.raises(ValueError):
            dram.usage(1, -1.0)

    def test_bandwidth_utilization(self):
        dram = DRAMModel(DRAMConfig(peak_bandwidth_gb_s=25.6))
        assert dram.bandwidth_utilization(int(25.6e9), 1.0) == pytest.approx(1.0)
        assert not dram.exceeds_peak_bandwidth(int(10e9), 1.0)
        assert dram.exceeds_peak_bandwidth(int(30e9), 1.0)

    def test_zero_duration(self):
        dram = DRAMModel()
        assert dram.bandwidth_utilization(100, 0.0) == 0.0
        usage = dram.usage(0, 0.0)
        assert usage.average_power_w == 0.0
        assert usage.average_bandwidth_gb_s == 0.0


class TestSoCConfigTable1:
    def test_table1_has_all_components(self):
        rows = SoCConfig().table1_rows()
        components = [name for name, _spec in rows]
        assert components == [
            "Camera Sensor",
            "ISP",
            "NN Accelerator (NNX)",
            "Motion Controller (MC)",
            "DRAM",
        ]

    def test_table1_mentions_key_parameters(self):
        text = " | ".join(spec for _name, spec in SoCConfig().table1_rows())
        assert "24x24 systolic" in text
        assert "1.5 MB" in text
        assert "8 KB" in text
        assert "4-wide SIMD" in text
        assert "LPDDR3" in text

    def test_frontend_power(self):
        config = SoCConfig()
        assert config.frontend_power_w == pytest.approx(0.180 + 0.153 * 1.025)

    def test_summary_keys(self):
        summary = SoCConfig().summary()
        assert summary["nnx_peak_tops"] == pytest.approx(1.152)
        assert summary["mc_power_w"] == pytest.approx(0.0022)
