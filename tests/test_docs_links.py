"""Docs dead-link lint: the repo's markdown tree must stay internally valid.

Runs ``tools/check_links.py`` against the committed docs (the same check the
CI ``docs`` job enforces) and unit-tests the checker itself — a linter that
silently stopped finding breakage would make the green job meaningless.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestRepoDocs:
    def test_committed_docs_have_no_broken_links(self):
        problems = []
        for path in checker.iter_doc_files():
            problems.extend(checker.check_file(path, {}))
        assert problems == []

    def test_doc_set_actually_contains_links(self):
        """Guard against the lint degenerating into checking nothing."""
        total = sum(
            1
            for path in checker.iter_doc_files()
            for _line, target in checker.iter_links(path)
            if not target.startswith(checker.EXTERNAL_SCHEMES)
        )
        assert total >= 10

    def test_docs_tree_is_linted(self):
        linted = {p.relative_to(REPO_ROOT).as_posix() for p in checker.iter_doc_files()}
        for required in (
            "README.md",
            "EXPERIMENTS.md",
            "ROADMAP.md",
            "CHANGES.md",
            "benchmarks/README.md",
            "docs/architecture.md",
            "docs/wire-protocol.md",
            "docs/kernels.md",
            "docs/benchmarking.md",
            "docs/tuning.md",
        ):
            assert required in linted


class TestCheckerCatchesBreakage:
    def test_broken_file_link_is_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](no-such-file.md) for details\n")
        problems = checker.check_file(doc, {})
        assert len(problems) == 1
        assert "no-such-file.md" in problems[0]

    def test_broken_anchor_is_reported(self, tmp_path):
        target = tmp_path / "target.md"
        target.write_text("# Real Heading\n\nbody\n")
        doc = tmp_path / "doc.md"
        doc.write_text("[ok](target.md#real-heading) and [bad](target.md#nope)\n")
        problems = checker.check_file(doc, {})
        assert len(problems) == 1
        assert "#nope" in problems[0]

    def test_same_file_fragment(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# My Section\n\njump [here](#my-section), not [there](#absent)\n")
        problems = checker.check_file(doc, {})
        assert len(problems) == 1
        assert "#absent" in problems[0]

    def test_external_links_are_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[paper](https://example.com/dead-link-404)\n")
        assert checker.check_file(doc, {}) == []

    def test_code_blocks_are_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "```\n[not a link](missing.md)\n```\n"
            "and inline `[also not](gone.md)` code\n"
        )
        assert checker.check_file(doc, {}) == []

    def test_github_slugs(self):
        assert checker.github_slug("Adding a backend") == "adding-a-backend"
        assert checker.github_slug("`PipelineSpec` — the one config") == (
            "pipelinespec--the-one-config"
        )
        assert checker.github_slug("Q8.4 fixed point!") == "q84-fixed-point"
