"""Streaming/batch equivalence tests for the session API.

The contract under test: ``run(sequence)`` is a thin wrapper over
``open_session`` + per-frame ``submit`` + ``finish``, so submitting the
frames yourself must be *bit-identical* to the batch path — for detection
and tracking, for constant and adaptive windows, and for every
``search_policy`` variant.
"""

from __future__ import annotations

import pytest

from repro.core.backends import detection_backend_for, tracking_backend_for
from repro.core.session import SessionClosedError, StreamOracle
from repro.core.spec import PipelineSpec
from repro.core.types import FrameKind


def assert_results_identical(batch, streamed):
    """Frame kinds, window sizes and detection boxes must match exactly."""
    assert len(batch) == len(streamed)
    for a, b in zip(batch.frames, streamed.frames):
        assert a.frame_index == b.frame_index
        assert a.kind is b.kind
        assert a.window_size == b.window_size
        assert len(a.detections) == len(b.detections)
        for da, db in zip(a.detections, b.detections):
            assert da.box.as_xywh() == db.box.as_xywh()
            assert da.object_id == db.object_id
            assert da.extrapolated == db.extrapolated


def run_streamed(spec, backend, sequence, **submit_kwargs):
    pipeline = spec.build(backend)
    session = pipeline.open_session(source=sequence)
    for _, frame in sequence.iter_frames():
        session.submit(frame, **submit_kwargs)
    return session.finish()


@pytest.mark.parametrize(
    "spec",
    [
        PipelineSpec(extrapolation_window=2),
        PipelineSpec(extrapolation_window=4, sub_roi_grid=(1, 1)),
        PipelineSpec(extrapolation_window="adaptive"),
        PipelineSpec(extrapolation_window=2, exhaustive_search=True, search_policy="full"),
        PipelineSpec(extrapolation_window=2, exhaustive_search=True, search_policy="spiral"),
        PipelineSpec(extrapolation_window=2, exhaustive_search=True, search_policy="pruned"),
    ],
    ids=lambda spec: spec.describe(),
)
class TestStreamingBatchEquivalence:
    def test_tracking(self, small_sequence, spec):
        batch = spec.build(tracking_backend_for("mdnet", seed=3)).run(small_sequence)
        streamed = run_streamed(spec, tracking_backend_for("mdnet", seed=3), small_sequence)
        assert_results_identical(batch, streamed)

    def test_detection(self, multi_object_sequence, spec):
        batch = spec.build(detection_backend_for("yolov2", seed=2)).run(multi_object_sequence)
        streamed = run_streamed(
            spec, detection_backend_for("yolov2", seed=2), multi_object_sequence
        )
        assert_results_identical(batch, streamed)


class TestRunIsASessionWrapper:
    def test_run_still_deterministic_across_repeats(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet"))
        first = pipeline.run(small_sequence)
        second = pipeline.run(small_sequence)
        assert_results_identical(first, second)

    def test_engine_lease_released_on_finish(self, small_sequence):
        pipeline = PipelineSpec().build(tracking_backend_for("mdnet"))
        session = pipeline.open_session(source=small_sequence, share_engines=True)
        with pytest.raises(RuntimeError, match="leased"):
            pipeline.open_session(source=small_sequence, share_engines=True)
        # run() shares the same engines, so it must refuse too.
        with pytest.raises(RuntimeError, match="leased"):
            pipeline.run(small_sequence)
        session.submit(small_sequence.frame(0))
        session.finish()
        pipeline.run(small_sequence)  # lease released

    def test_engine_lease_released_when_run_raises(self, small_sequence):
        class ExplodingBackend:
            network = None

            def start_sequence(self, sequence):
                pass

            def infer(self, frame_index, luma, sequence):
                raise RuntimeError("backend died")

        pipeline = PipelineSpec().build(ExplodingBackend())
        with pytest.raises(RuntimeError, match="backend died"):
            pipeline.run(small_sequence)
        # The lease must not be poisoned: a healthy run still works.
        pipeline.backend = tracking_backend_for("mdnet")
        pipeline.run(small_sequence)

    def test_no_lease_taken_when_backend_start_fails(self, small_sequence):
        class ExplodingStart:
            network = None

            def start_sequence(self, sequence):
                raise ValueError("no first-frame annotation")

            def infer(self, frame_index, luma, sequence):
                raise AssertionError("unreachable")

        pipeline = PipelineSpec().build(ExplodingStart())
        with pytest.raises(ValueError, match="annotation"):
            pipeline.run(small_sequence)
        pipeline.backend = tracking_backend_for("mdnet")
        pipeline.run(small_sequence)  # must not report a stale lease

    def test_subclass_disagreement_override_reaches_sessions(self, small_sequence):
        from repro.core.pipeline import EuphratesPipeline

        calls = []

        class CustomMetric(EuphratesPipeline):
            @classmethod
            def _disagreement(cls, inferred, predicted):
                calls.append((len(inferred), len(predicted)))
                return 0.0

        spec = PipelineSpec(extrapolation_window=2)
        pipeline = CustomMetric(
            tracking_backend_for("mdnet"), spec.window_controller(), spec.euphrates_config()
        )
        pipeline.run(small_sequence)
        assert calls  # the session-backed run() consulted the override

    def test_adaptive_clone_starts_from_the_configured_initial_window(self):
        from repro.core.window import AdaptiveWindowController

        controller = AdaptiveWindowController(initial_window=2, max_window=8)
        for _ in range(6):  # sustained agreement grows the live window
            controller.observe_disagreement(0.0)
        assert controller.current_window > 2
        clone = controller.clone()
        assert clone.current_window == 2
        assert clone.history == []

    def test_standalone_sessions_do_not_contend(self, small_sequence):
        pipeline = PipelineSpec().build(tracking_backend_for("mdnet"))
        a = pipeline.open_session(source=small_sequence)
        b = pipeline.open_session(source=small_sequence)
        for _, frame in small_sequence.iter_frames():
            a.submit(frame)
            b.submit(frame)
        assert_results_identical(a.finish(), b.finish())

    def test_extrapolation_ops_flow_back_to_the_pipeline(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet"))
        session = pipeline.open_session(source=small_sequence)
        for _, frame in small_sequence.iter_frames():
            session.submit(frame)
        assert pipeline.total_extrapolation_ops == 0.0  # not yet finished
        session.finish()
        assert pipeline.total_extrapolation_ops > 0.0


class TestMidStreamBehaviour:
    def test_forced_iframe_resets_the_window_phase(self, small_sequence):
        spec = PipelineSpec(extrapolation_window=4)
        pipeline = spec.build(tracking_backend_for("mdnet"))
        session = pipeline.open_session(source=small_sequence)
        force_at = 6  # mid-window: frames 4..7 would be I,E,E,E
        for index, frame in small_sequence.iter_frames():
            result = session.submit(frame, force_inference=(index == force_at))
        result = session.finish()
        kinds = [frame.kind for frame in result.frames]
        assert kinds[force_at] is FrameKind.INFERENCE
        # The window phase restarts at the forced I-frame: 3 E-frames follow.
        assert kinds[force_at + 1 : force_at + 4] == [FrameKind.EXTRAPOLATION] * 3
        assert kinds[force_at + 4] is FrameKind.INFERENCE

    def test_forcing_a_natural_iframe_is_identical_to_batch(self, small_sequence):
        spec = PipelineSpec(extrapolation_window=4)
        batch = spec.build(tracking_backend_for("mdnet")).run(small_sequence)
        pipeline = spec.build(tracking_backend_for("mdnet"))
        session = pipeline.open_session(source=small_sequence)
        for index, frame in small_sequence.iter_frames():
            # Index 8 is an I-frame anyway under EW-4; forcing it must not
            # perturb anything.
            session.submit(frame, force_inference=(index == 8))
        assert_results_identical(batch, session.finish())

    def test_next_frame_kind_predicts_every_frame(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=3).build(tracking_backend_for("mdnet"))
        session = pipeline.open_session(source=small_sequence)
        for _, frame in small_sequence.iter_frames():
            predicted = session.next_frame_kind()
            assert session.submit(frame).kind is predicted

    def test_next_frame_kind_with_motion_vectors_disabled(self, small_sequence):
        pipeline = PipelineSpec(expose_motion_vectors=False).build(
            tracking_backend_for("mdnet")
        )
        session = pipeline.open_session(source=small_sequence)
        for _, frame in small_sequence.iter_frames():
            assert session.next_frame_kind() is FrameKind.INFERENCE
            assert session.submit(frame).kind is FrameKind.INFERENCE
        session.finish()


class TestSessionLifecycle:
    def test_submit_after_finish_raises(self, small_sequence):
        pipeline = PipelineSpec().build(tracking_backend_for("mdnet"))
        session = pipeline.open_session(source=small_sequence)
        session.submit(small_sequence.frame(0))
        session.finish()
        with pytest.raises(SessionClosedError):
            session.submit(small_sequence.frame(1))
        with pytest.raises(SessionClosedError):
            session.finish()

    def test_session_stats(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet"))
        session = pipeline.open_session(source=small_sequence)
        for _, frame in small_sequence.iter_frames():
            session.submit(frame)
        stats = session.stats
        assert stats.frames == small_sequence.num_frames
        assert stats.inference_frames + stats.extrapolation_frames == stats.frames
        assert stats.inference_rate == pytest.approx(0.5, abs=0.05)
        assert stats.extrapolation_ops > 0

    def test_truth_rejected_for_sequence_bound_sessions(self, small_sequence):
        pipeline = PipelineSpec().build(tracking_backend_for("mdnet"))
        session = pipeline.open_session(source=small_sequence)
        truth = small_sequence.truth_detections(0)
        with pytest.raises(ValueError, match="without"):
            session.submit(small_sequence.frame(0), truth=truth)

    def test_open_session_needs_dimensions_or_source(self):
        pipeline = PipelineSpec().build(tracking_backend_for("mdnet"))
        with pytest.raises(ValueError, match="width and height"):
            pipeline.open_session()


class TestDimensionBoundSessions:
    """Sessions opened on (width, height) with truth arriving per frame."""

    def test_tracking_stream_matches_sequence_bound_run(self, small_sequence):
        spec = PipelineSpec(extrapolation_window=2)
        batch = spec.build(tracking_backend_for("mdnet", seed=3)).run(small_sequence)

        pipeline = spec.build(tracking_backend_for("mdnet", seed=3))
        session = pipeline.open_session(
            small_sequence.width, small_sequence.height, name=small_sequence.name
        )
        for index, frame in small_sequence.iter_frames():
            session.submit(frame, truth=small_sequence.truth_detections(index))
        assert_results_identical(batch, session.finish())

    def test_detection_stream_matches_sequence_bound_run(self, multi_object_sequence):
        spec = PipelineSpec(extrapolation_window=2)
        batch = spec.build(detection_backend_for("yolov2", seed=2)).run(
            multi_object_sequence
        )
        pipeline = spec.build(detection_backend_for("yolov2", seed=2))
        session = pipeline.open_session(
            multi_object_sequence.width,
            multi_object_sequence.height,
            name=multi_object_sequence.name,
        )
        for index, frame in multi_object_sequence.iter_frames():
            session.submit(frame, truth=multi_object_sequence.truth_detections(index))
        assert_results_identical(batch, session.finish())

    def test_oracle_requires_in_order_frames(self):
        oracle = StreamOracle("cam", 64, 48)
        with pytest.raises(ValueError, match="in order"):
            oracle.observe(1, None, [])

    def test_failed_first_submit_is_retryable_with_truth(self, small_sequence):
        """A tracking backend cannot start without frame-0 truth; the failed
        submit must roll the oracle back so the retry (with truth) works."""
        spec = PipelineSpec(extrapolation_window=2)
        pipeline = spec.build(tracking_backend_for("mdnet", seed=3))
        session = pipeline.open_session(
            small_sequence.width, small_sequence.height, name=small_sequence.name
        )
        with pytest.raises(ValueError, match="no annotated objects"):
            session.submit(small_sequence.frame(0))  # no truth: backend start fails
        for index, frame in small_sequence.iter_frames():
            session.submit(frame, truth=small_sequence.truth_detections(index))
        batch = spec.build(tracking_backend_for("mdnet", seed=3)).run(small_sequence)
        assert_results_identical(batch, session.finish())

    def test_oracle_truth_window_is_bounded(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=2).build(
            tracking_backend_for("mdnet", seed=3)
        )
        session = pipeline.open_session(
            small_sequence.width, small_sequence.height, name=small_sequence.name
        )
        for index, frame in small_sequence.iter_frames():
            session.submit(frame, truth=small_sequence.truth_detections(index))
        oracle = session._oracle
        assert len(oracle._truth) <= StreamOracle.TRUTH_WINDOW + 1

    def test_take_results_drains_the_frame_buffer(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet"))
        session = pipeline.open_session(source=small_sequence)
        for index, frame in small_sequence.iter_frames():
            session.submit(frame)
            if index == 9:
                drained = session.take_results()
                assert [f.frame_index for f in drained] == list(range(10))
        remainder = session.finish()
        assert [f.frame_index for f in remainder.frames] == list(
            range(10, small_sequence.num_frames)
        )
        assert session.stats.frames == small_sequence.num_frames


class TestTelemetry:
    """The observe-only per-frame hardware event stream."""

    def test_one_event_per_frame_mirroring_results(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=4).build(tracking_backend_for("mdnet"))
        result = pipeline.run(small_sequence)
        assert len(result.telemetry) == len(result.frames)
        for frame, event in zip(result.frames, result.telemetry):
            assert event.frame_index == frame.frame_index
            assert event.kind is frame.kind
            assert event.rois == len(frame.detections)
            assert event.pixels == small_sequence.width * small_sequence.height
            assert event.stream == small_sequence.name
        # E-frames record actual extrapolation work.  (I-frames after the
        # first may record some too: the disagreement metric extrapolates a
        # prediction before inferring.)
        for frame, event in zip(result.frames, result.telemetry):
            if frame.kind is FrameKind.EXTRAPOLATION:
                assert event.extrapolation_ops > 0
        assert result.telemetry[0].extrapolation_ops == 0.0

    def test_take_telemetry_drains_like_take_results(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet"))
        session = pipeline.open_session(source=small_sequence)
        for index, frame in small_sequence.iter_frames():
            session.submit(frame)
            if index == 9:
                drained = session.take_telemetry()
                assert [e.frame_index for e in drained] == list(range(10))
        remainder = session.finish()
        assert [e.frame_index for e in remainder.telemetry] == list(
            range(10, small_sequence.num_frames)
        )
        with pytest.raises(SessionClosedError):
            session.take_telemetry()

    def test_telemetry_is_observe_only(self, small_sequence):
        """Draining (or not draining) telemetry never changes the outputs."""
        spec = PipelineSpec(extrapolation_window=2)
        batch = spec.build(tracking_backend_for("mdnet")).run(small_sequence)
        pipeline = spec.build(tracking_backend_for("mdnet"))
        session = pipeline.open_session(source=small_sequence)
        for _, frame in small_sequence.iter_frames():
            session.submit(frame)
            session.take_telemetry()
        assert_results_identical(batch, session.finish())
