"""Tests for the systolic-array performance model."""

from __future__ import annotations

import pytest

from repro.nn.layers import ConvLayer, FullyConnectedLayer, PoolLayer
from repro.nn.models import build_mdnet, build_tiny_yolo, build_yolo_v2
from repro.soc.config import NNXConfig
from repro.soc.systolic import SystolicArrayModel


@pytest.fixture
def model():
    return SystolicArrayModel(NNXConfig())


class TestLayerTiming:
    def test_conv_cycles_formula(self, model):
        layer = ConvLayer("c", 16, 16, 24, 24, kernel_size=1, stride=1)
        timing = model.layer_timing(layer)
        # reduction = 24 -> 1 tile of rows; out_c = 24 -> 1 tile of cols.
        assert timing.cycles == 1 * 1 * (16 * 16 + 48)
        assert timing.macs == layer.macs

    def test_larger_reduction_needs_more_tiles(self, model):
        small = ConvLayer("s", 16, 16, 24, 24, kernel_size=1)
        large = ConvLayer("l", 16, 16, 48, 24, kernel_size=1)
        assert model.layer_timing(large).cycles == 2 * model.layer_timing(small).cycles

    def test_fc_timing(self, model):
        layer = FullyConnectedLayer("fc", 240, 48)
        timing = model.layer_timing(layer)
        assert timing.cycles == 10 * 2 + 48

    def test_pool_timing(self, model):
        layer = PoolLayer("p", 32, 32, 64)
        timing = model.layer_timing(layer)
        assert timing.macs == 0
        assert timing.cycles > 0

    def test_unsupported_layer_type(self, model):
        with pytest.raises(TypeError):
            model.layer_timing(object())


class TestNetworkTiming:
    def test_utilization_bounded(self, model):
        for network in (build_yolo_v2(), build_tiny_yolo(), build_mdnet()):
            utilization = model.utilization(network)
            assert 0.0 < utilization <= 1.0

    def test_yolo_latency_matches_paper_fps(self, model):
        """The paper reports baseline YOLOv2 at ~17 FPS on the 1.15 TOPS NNX."""
        latency = model.latency_per_frame_s(build_yolo_v2())
        fps = 1.0 / latency
        assert 14.0 <= fps <= 22.0

    def test_small_networks_sustain_60fps(self, model):
        """Tiny YOLO and MDNet fit the real-time budget (Table 2 discussion)."""
        for network in (build_tiny_yolo(), build_mdnet()):
            assert model.latency_per_frame_s(network) < 1.0 / 60.0

    def test_evaluations_scale_latency(self, model):
        one = build_mdnet(candidates_per_frame=1)
        ten = build_mdnet(candidates_per_frame=10)
        assert model.cycles_per_frame(ten) == 10 * model.cycles_per_frame(one)

    def test_effective_tops_below_peak(self, model):
        config = NNXConfig()
        for network in (build_yolo_v2(), build_tiny_yolo()):
            assert model.effective_tops(network) <= config.peak_tops

    def test_utilization_report_has_all_layers(self, model):
        network = build_tiny_yolo()
        report = model.utilization_report(network)
        assert len(report) == len(network.layers)
