"""Tests for the temporal-denoise stage (the motion-vector producer)."""

from __future__ import annotations

import numpy as np

from repro.isp.denoise import TemporalDenoiseConfig, TemporalDenoiseStage
from repro.motion.block_matching import BlockMatchingConfig


def _noisy(frame: np.ndarray, sigma: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.clip(frame + rng.normal(0, sigma, frame.shape), 0, 255)


class TestTemporalDenoise:
    def test_first_frame_passthrough(self, small_sequence):
        stage = TemporalDenoiseStage()
        frame = small_sequence.frame(0).astype(float)
        denoised, field = stage.process(frame)
        assert field is None
        assert np.array_equal(denoised, frame)

    def test_second_frame_produces_motion_field(self, small_sequence):
        stage = TemporalDenoiseStage()
        stage.process(small_sequence.frame(0).astype(float))
        _, field = stage.process(small_sequence.frame(1).astype(float))
        assert field is not None
        assert field.grid.frame_width == small_sequence.width
        assert stage.last_motion_ops > 0

    def test_denoising_reduces_noise_on_static_scene(self):
        rng = np.random.default_rng(3)
        clean = np.kron(rng.uniform(60, 200, (12, 16)), np.ones((8, 8)))
        stage = TemporalDenoiseStage(TemporalDenoiseConfig(blend_strength=0.5))
        stage.process(_noisy(clean, 6.0, 1))
        denoised, _ = stage.process(_noisy(clean, 6.0, 2))
        raw_error = np.abs(_noisy(clean, 6.0, 2) - clean).mean()
        denoised_error = np.abs(denoised - clean).mean()
        assert denoised_error < raw_error

    def test_bad_matches_are_not_blended(self):
        """Blocks whose SAD is too high (scene change) must pass through."""
        rng = np.random.default_rng(4)
        first = rng.uniform(0, 255, (48, 64))
        second = rng.uniform(0, 255, (48, 64))  # totally different content
        stage = TemporalDenoiseStage(
            TemporalDenoiseConfig(blend_strength=0.9, max_normalised_sad=0.05)
        )
        stage.process(first)
        denoised, _ = stage.process(second)
        assert np.abs(denoised - second).mean() < 1.0

    def test_reset_clears_reference(self, small_sequence):
        stage = TemporalDenoiseStage()
        stage.process(small_sequence.frame(0).astype(float))
        stage.reset()
        _, field = stage.process(small_sequence.frame(1).astype(float))
        assert field is None

    def test_resolution_change_resets_reference(self, small_sequence):
        stage = TemporalDenoiseStage()
        stage.process(small_sequence.frame(0).astype(float))
        _, field = stage.process(np.zeros((64, 64)))
        assert field is None


class TestSRAMAccounting:
    def test_double_buffering_doubles_sram(self):
        single = TemporalDenoiseStage(TemporalDenoiseConfig(double_buffered_sram=False))
        double = TemporalDenoiseStage(TemporalDenoiseConfig(double_buffered_sram=True))
        assert double.sram_bytes(1920, 1080) == 2 * single.sram_bytes(1920, 1080)

    def test_1080p_sram_is_about_8kb_single_buffered(self):
        stage = TemporalDenoiseStage(TemporalDenoiseConfig(double_buffered_sram=False))
        size = stage.sram_bytes(1920, 1080)
        assert 14_000 <= size <= 18_000  # 8100 MVs + 8100 confidences

    def test_block_size_affects_sram(self):
        small_blocks = TemporalDenoiseStage(
            TemporalDenoiseConfig(block_matching=BlockMatchingConfig(block_size=8))
        )
        large_blocks = TemporalDenoiseStage(
            TemporalDenoiseConfig(block_matching=BlockMatchingConfig(block_size=32))
        )
        assert small_blocks.sram_bytes(640, 480) > large_blocks.sram_bytes(640, 480)
