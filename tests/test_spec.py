"""Tests for the unified PipelineSpec."""

from __future__ import annotations

import argparse
from dataclasses import FrozenInstanceError

import pytest

from repro.core.backends import tracking_backend_for
from repro.core.spec import PipelineSpec, normalize_window
from repro.core.window import AdaptiveWindowController, ConstantWindowController
from repro.motion.block_matching import SearchPolicy, SearchStrategy


class TestNormalization:
    def test_adaptive_aliases(self):
        for alias in ("adaptive", "EW-A", "a", "Adaptive"):
            assert normalize_window(alias) == "adaptive"

    def test_numeric_strings_become_ints(self):
        assert normalize_window("4") == 4
        assert PipelineSpec(extrapolation_window="4").extrapolation_window == 4

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="window mode"):
            PipelineSpec(extrapolation_window="sometimes")

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineSpec(extrapolation_window=0)
        with pytest.raises(ValueError):
            PipelineSpec(block_size=0)
        with pytest.raises(ValueError):
            PipelineSpec(search_range=-1)
        with pytest.raises(ValueError):
            PipelineSpec(search_policy="greedy")
        with pytest.raises(ValueError):
            PipelineSpec(kernel_backend="cython")
        with pytest.raises(ValueError):
            PipelineSpec(sub_roi_grid=(0, 2))
        with pytest.raises(ValueError):
            PipelineSpec(soc_config="vga")
        with pytest.raises(ValueError):
            PipelineSpec(extrapolation_host="gpu")

    def test_soc_surface(self):
        spec = PipelineSpec(soc_config="720p30", extrapolation_host="cpu")
        assert spec.extrapolation_on_cpu
        config = spec.soc_configuration()
        assert (config.frame_width, config.frame_height, config.frame_rate) == (
            1280,
            720,
            30.0,
        )
        soc = spec.vision_soc()
        assert soc.config.frame_period_s == pytest.approx(1.0 / 30.0)
        assert not PipelineSpec().extrapolation_on_cpu

    def test_sub_roi_grid_coerced_to_tuple(self):
        spec = PipelineSpec(sub_roi_grid=[3, 1])
        assert spec.sub_roi_grid == (3, 1)

    def test_frozen(self):
        with pytest.raises(FrozenInstanceError):
            PipelineSpec().block_size = 8  # type: ignore[misc]


class TestFromKwargs:
    def test_accepts_exactly_the_legacy_names(self):
        spec = PipelineSpec.from_kwargs(
            extrapolation_window="adaptive",
            block_size=8,
            search_range=3,
            exhaustive_search=True,
            search_policy="spiral",
            sub_roi_grid=(1, 1),
            expose_motion_vectors=False,
        )
        assert spec.extrapolation_window == "adaptive"
        assert spec.block_size == 8
        assert spec.search_policy == "spiral"
        assert not spec.expose_motion_vectors

    def test_unknown_kwarg_is_a_type_error(self):
        with pytest.raises(TypeError, match="blok_size"):
            PipelineSpec.from_kwargs(blok_size=8)


class TestCliRoundTrip:
    def _parser(self) -> argparse.ArgumentParser:
        parser = argparse.ArgumentParser()
        PipelineSpec.add_cli_options(parser)
        return parser

    @pytest.mark.parametrize(
        "spec",
        [
            PipelineSpec(),
            PipelineSpec(extrapolation_window="adaptive"),
            PipelineSpec(extrapolation_window=8, block_size=32, search_range=15),
            PipelineSpec(exhaustive_search=True, search_policy="full"),
            PipelineSpec(
                exhaustive_search=True,
                search_policy="histogram",
                kernel_backend="numba",
            ),
            PipelineSpec(sub_roi_grid=(1, 1), expose_motion_vectors=False),
            PipelineSpec(soc_config="720p30", extrapolation_host="cpu"),
            PipelineSpec(soc_config="640x480@15"),
            PipelineSpec(frame_format="q8.8"),
            PipelineSpec(frame_format="float"),
        ],
    )
    def test_to_cli_args_round_trips(self, spec):
        args = self._parser().parse_args(spec.to_cli_args())
        assert PipelineSpec.from_cli_args(args) == spec

    def test_default_spec_emits_no_flags(self):
        assert PipelineSpec().to_cli_args() == []

    def test_without_window_flag(self):
        parser = argparse.ArgumentParser()
        PipelineSpec.add_cli_options(parser, include_window=False)
        args = parser.parse_args(["--block-size", "8"])
        spec = PipelineSpec.from_cli_args(args)
        assert spec.block_size == 8
        assert spec.extrapolation_window == PipelineSpec().extrapolation_window

    def test_malformed_grid_rejected(self):
        args = self._parser().parse_args(["--sub-roi-grid", "2by2"])
        with pytest.raises(ValueError, match="sub-roi-grid"):
            PipelineSpec.from_cli_args(args)


class TestCacheKey:
    def test_equal_specs_share_a_key(self):
        assert PipelineSpec(extrapolation_window="a").cache_key() == PipelineSpec(
            extrapolation_window="adaptive"
        ).cache_key()

    def test_every_field_participates(self):
        base = PipelineSpec()
        variants = [
            PipelineSpec(extrapolation_window=4),
            PipelineSpec(block_size=8),
            PipelineSpec(search_range=3),
            PipelineSpec(exhaustive_search=True),
            PipelineSpec(search_policy="full"),
            PipelineSpec(kernel_backend="numba"),
            PipelineSpec(sub_roi_grid=(1, 1)),
            PipelineSpec(expose_motion_vectors=False),
            PipelineSpec(soc_config="1080p30"),
            PipelineSpec(extrapolation_host="cpu"),
            PipelineSpec(frame_format="q8.8"),
            PipelineSpec(frame_format="float"),
        ]
        keys = {spec.cache_key() for spec in variants}
        assert len(keys) == len(variants)
        assert base.cache_key() not in keys

    def test_key_is_hashable(self):
        {PipelineSpec().cache_key(): 1}


class TestBuild:
    def test_build_propagates_every_knob(self):
        spec = PipelineSpec(
            extrapolation_window=3,
            block_size=32,
            search_range=5,
            exhaustive_search=True,
            search_policy="spiral",
            kernel_backend="numba",
            sub_roi_grid=(1, 2),
            expose_motion_vectors=False,
        )
        pipeline = spec.build(tracking_backend_for("mdnet"))
        config = pipeline.config
        assert config.block_matching.block_size == 32
        assert config.block_matching.search_range == 5
        assert config.block_matching.strategy is SearchStrategy.EXHAUSTIVE
        assert config.block_matching.search_policy is SearchPolicy.SPIRAL
        assert config.block_matching.kernel_backend == "numba"
        assert config.extrapolation.sub_roi_grid == (1, 2)
        assert not config.expose_motion_vectors
        assert isinstance(pipeline.window_controller, ConstantWindowController)
        assert pipeline.window_controller.current_window == 3

    def test_adaptive_controller(self):
        pipeline = PipelineSpec(extrapolation_window="adaptive").build(
            tracking_backend_for("mdnet")
        )
        assert isinstance(pipeline.window_controller, AdaptiveWindowController)

    def test_describe(self):
        assert PipelineSpec().describe() == "EW-2/b16/r7/tss"
        assert (
            PipelineSpec(
                extrapolation_window="adaptive", exhaustive_search=True
            ).describe()
            == "EW-A/b16/r7/es/pruned"
        )

    def test_describe_marks_non_default_backend(self):
        assert "/k:numba" in PipelineSpec(kernel_backend="numba").describe()
        assert "/k:" not in PipelineSpec().describe()

    def test_with_window(self):
        spec = PipelineSpec(block_size=8)
        swept = spec.with_window("adaptive")
        assert swept.extrapolation_window == "adaptive"
        assert swept.block_size == 8
        assert spec.extrapolation_window == 2  # original untouched


class TestExecutionKnobs:
    """workers/transport select where sessions run, never what they compute."""

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            PipelineSpec(workers=0)
        with pytest.raises(ValueError, match="unknown transport"):
            PipelineSpec(transport="carrier-pigeon")

    def test_excluded_from_cache_key(self):
        base = PipelineSpec(extrapolation_window=4)
        sharded = PipelineSpec(extrapolation_window=4, workers=4, transport="shm")
        assert base.cache_key() == sharded.cache_key()
        # ...but algorithmic fields still split the key.
        assert base.cache_key() != PipelineSpec(extrapolation_window=2).cache_key()

    def test_cli_roundtrip(self):
        spec = PipelineSpec(extrapolation_window=4, workers=2, transport="shm")
        parser = argparse.ArgumentParser()
        PipelineSpec.add_cli_options(parser)
        args = parser.parse_args(spec.to_cli_args())
        assert PipelineSpec.from_cli_args(args) == spec

    def test_describe_marks_sharded_specs(self):
        assert "/x2" in PipelineSpec(workers=2).describe()
        assert "/x" not in PipelineSpec().describe()

    def test_build_installs_execution_spec(self):
        pipeline = PipelineSpec(workers=2, transport="shm").build(
            tracking_backend_for("mdnet")
        )
        assert pipeline.execution.workers == 2
        assert pipeline.execution.transport == "shm"
        assert PipelineSpec().build(
            tracking_backend_for("mdnet")
        ).execution.workers == 1

    def test_build_pipeline_shim_is_gone(self):
        with pytest.raises(ImportError):
            from repro.core.pipeline import build_pipeline  # noqa: F401


class TestFrameFormat:
    """The fixed-point frame-format knob (a vision knob: it changes outputs)."""

    def test_spelling_is_canonicalized(self):
        assert PipelineSpec(frame_format="Q8.8").frame_format == "q8.8"
        assert PipelineSpec(frame_format="FLOAT").frame_format == "float"

    def test_default_matches_pipeline_default(self):
        from repro.isp.framebuffer import DEFAULT_FRAME_FORMAT, spell_frame_format

        assert PipelineSpec().frame_format == spell_frame_format(DEFAULT_FRAME_FORMAT)

    def test_malformed_format_rejected(self):
        with pytest.raises(ValueError, match="frame format"):
            PipelineSpec(frame_format="8bit")

    def test_euphrates_config_receives_parsed_format(self):
        config = PipelineSpec(frame_format="q8.8").euphrates_config()
        assert (config.frame_format.int_bits, config.frame_format.frac_bits) == (8, 8)
        assert PipelineSpec(frame_format="float").euphrates_config().frame_format is None

    def test_describe_marks_non_default_format(self):
        assert "/q8.8" in PipelineSpec(frame_format="q8.8").describe()
        assert "/q8.4" not in PipelineSpec().describe()


class TestSpecPresets:
    """Named tuned presets (--spec-preset / PipelineSpec.from_preset)."""

    def test_every_preset_builds(self):
        from repro.soc.config import TUNED_SPEC_PRESETS

        for name in TUNED_SPEC_PRESETS:
            assert isinstance(PipelineSpec.from_preset(name), PipelineSpec)

    def test_unknown_preset_lists_choices(self):
        with pytest.raises(ValueError, match="tuned-ci-energy"):
            PipelineSpec.from_preset("no-such-preset")

    def test_overrides_win_over_preset_values(self):
        spec = PipelineSpec.from_preset("tuned-ci-energy", block_size=8)
        assert spec.block_size == 8

    def test_cli_preset_selects_and_explicit_flags_override(self):
        from repro.soc.config import TUNED_SPEC_PRESETS

        parser = argparse.ArgumentParser()
        PipelineSpec.add_cli_options(parser)
        args = parser.parse_args(["--spec-preset", "tuned-ci-energy"])
        assert PipelineSpec.from_cli_args(args) == PipelineSpec.from_preset(
            "tuned-ci-energy"
        )
        args = parser.parse_args(
            ["--spec-preset", "tuned-ci-energy", "--block-size", "8"]
        )
        assert PipelineSpec.from_cli_args(args).block_size == 8
        # Defaulted flags never mask what the preset sets.
        preset_kwargs = TUNED_SPEC_PRESETS["tuned-ci-energy"]
        spec = PipelineSpec.from_cli_args(
            parser.parse_args(["--spec-preset", "tuned-ci-energy"])
        )
        for name, value in preset_kwargs.items():
            if name == "extrapolation_window":
                value = normalize_window(value)
            assert getattr(spec, name) == value
