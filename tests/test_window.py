"""Tests for the extrapolation-window controllers (constant and adaptive)."""

from __future__ import annotations

import pytest

from repro.core.window import AdaptiveWindowController, ConstantWindowController


class TestConstantWindow:
    def test_window_one_always_infers(self):
        controller = ConstantWindowController(1)
        assert controller.should_infer(0)
        assert controller.should_infer(5)

    def test_window_four_pattern(self):
        controller = ConstantWindowController(4)
        # After an I-frame, three E-frames pass before the next inference.
        assert not controller.should_infer(0)
        assert not controller.should_infer(1)
        assert not controller.should_infer(2)
        assert controller.should_infer(3)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ConstantWindowController(0)

    def test_feedback_is_ignored(self):
        controller = ConstantWindowController(4)
        controller.observe_disagreement(1.0)
        assert controller.current_window == 4

    def test_name(self):
        assert ConstantWindowController(8).name == "EW-8"


class TestAdaptiveWindowValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            AdaptiveWindowController(min_window=0)
        with pytest.raises(ValueError):
            AdaptiveWindowController(initial_window=10, max_window=8)
        with pytest.raises(ValueError):
            AdaptiveWindowController(patience=0)
        with pytest.raises(ValueError):
            AdaptiveWindowController(disagreement_threshold=2.0)


class TestAdaptiveWindowBehaviour:
    def test_shrinks_on_large_disagreement(self):
        controller = AdaptiveWindowController(initial_window=4, disagreement_threshold=0.3)
        controller.observe_disagreement(0.8)
        assert controller.current_window == 3
        controller.observe_disagreement(0.8)
        controller.observe_disagreement(0.8)
        controller.observe_disagreement(0.8)
        assert controller.current_window == controller.min_window

    def test_grows_after_sustained_agreement(self):
        controller = AdaptiveWindowController(
            initial_window=2, disagreement_threshold=0.3, patience=2, max_window=4
        )
        controller.observe_disagreement(0.1)
        assert controller.current_window == 2  # one good observation is not enough
        controller.observe_disagreement(0.1)
        assert controller.current_window == 3
        controller.observe_disagreement(0.1)
        controller.observe_disagreement(0.1)
        assert controller.current_window == 4
        controller.observe_disagreement(0.1)
        controller.observe_disagreement(0.1)
        assert controller.current_window == 4  # capped at max_window

    def test_disagreement_resets_good_streak(self):
        controller = AdaptiveWindowController(
            initial_window=2, disagreement_threshold=0.3, patience=2
        )
        controller.observe_disagreement(0.1)
        controller.observe_disagreement(0.9)  # resets streak and shrinks
        assert controller.current_window == 1
        controller.observe_disagreement(0.1)
        assert controller.current_window == 1  # streak restarted, needs two

    def test_should_infer_follows_current_window(self):
        controller = AdaptiveWindowController(initial_window=3)
        assert not controller.should_infer(0)
        assert not controller.should_infer(1)
        assert controller.should_infer(2)

    def test_history_recorded(self):
        controller = AdaptiveWindowController()
        controller.observe_disagreement(0.2)
        controller.observe_disagreement(0.6)
        assert len(controller.history) == 2
        assert controller.history[0] == (2, 0.2)

    def test_name(self):
        assert AdaptiveWindowController().name == "EW-A"
