"""Tests for the sharded execution core (ShardedExecutor + FrameTransport)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.backends import detection_backend_for, tracking_backend_for
from repro.core.executor import (
    ExecutionSpec,
    ShardedExecutor,
    ShardError,
    ShardSchedule,
    SharedMemorySlotReader,
    SharedMemoryTransport,
    _assert_frame_free,
)
from repro.core.spec import PipelineSpec

from test_session import assert_results_identical


def _frame(seed: int, shape=(24, 32)) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 255, size=shape, dtype=np.uint8)


class TestValidation:
    def test_execution_spec(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            ExecutionSpec(workers=0)
        with pytest.raises(ValueError, match="unknown transport"):
            ExecutionSpec(transport="smoke-signals")

    def test_shard_schedule(self):
        with pytest.raises(ValueError, match="e_frame_burst"):
            ShardSchedule(e_frame_burst=0)
        with pytest.raises(ValueError, match="max_inference_batch"):
            ShardSchedule(max_inference_batch=0)
        with pytest.raises(ValueError, match="unknown policy"):
            ShardSchedule(policy="greedy")
        with pytest.raises(ValueError, match="deadline_frames"):
            ShardSchedule(deadline_frames=0)

    def test_executor_rejects_pickle_transport(self):
        pipeline = PipelineSpec().build(tracking_backend_for("mdnet"))
        with pytest.raises(ValueError, match="legacy"):
            ShardedExecutor(pipeline, transport="pickle")

    def test_inproc_transport_cannot_cross_processes(self):
        pipeline = PipelineSpec().build(tracking_backend_for("mdnet"))
        with pytest.raises(ValueError, match="cannot cross process boundaries"):
            ShardedExecutor(pipeline, workers=2, transport="inproc")

    def test_single_worker_always_resolves_inproc(self):
        pipeline = PipelineSpec().build(tracking_backend_for("mdnet"))
        for transport in ("auto", "shm", "inproc"):
            executor = ShardedExecutor(pipeline, workers=1, transport=transport)
            assert executor.transport_mode == "inproc"
            executor.close()


class TestFrameGuard:
    def test_rejects_raw_arrays(self):
        with pytest.raises(TypeError, match="refusing to pickle"):
            _assert_frame_free(_frame(0))

    def test_rejects_arrays_nested_in_containers(self):
        with pytest.raises(TypeError, match="shared-memory transport"):
            _assert_frame_free(("frame", {"payload": [_frame(1)]}))

    def test_accepts_small_control_payloads(self):
        _assert_frame_free(("frame", "seq0", None, False))


class TestSharedMemoryTransport:
    def test_roundtrip_preserves_pixels(self):
        transport = SharedMemoryTransport()
        reader = SharedMemorySlotReader()
        try:
            frame = _frame(2)
            ref = transport.send(frame)
            view = reader.read(ref)
            assert view.shape == frame.shape
            assert view.dtype == frame.dtype
            np.testing.assert_array_equal(view, frame)
            # The view maps the shared segment, not a pickled copy.
            assert view.base is not None
        finally:
            reader.close()
            transport.close()

    def test_slot_reuse_bumps_generation_and_stales_old_refs(self):
        transport = SharedMemoryTransport()
        reader = SharedMemorySlotReader()
        try:
            first = transport.send(_frame(3))
            reader.release(first)
            second = transport.send(_frame(4))
            # Same size class, freed slot: the ring reuses it.
            assert (second.segment, second.slot) == (first.segment, first.slot)
            assert second.generation == first.generation + 1
            with pytest.raises(RuntimeError, match="stale frame ref"):
                reader.read(first)
            np.testing.assert_array_equal(reader.read(second), _frame(4))
        finally:
            reader.close()
            transport.close()

    def test_full_ring_grows_a_new_segment(self):
        transport = SharedMemoryTransport(slots_per_segment=2)
        reader = SharedMemorySlotReader()
        try:
            refs = [transport.send(_frame(seed)) for seed in range(3)]
            assert transport.segments_allocated == 2
            assert transport.slots_in_flight == 3
            for seed, ref in enumerate(refs):
                np.testing.assert_array_equal(reader.read(ref), _frame(seed))
        finally:
            reader.close()
            transport.close()

    def test_distinct_size_classes_get_distinct_segments(self):
        transport = SharedMemoryTransport()
        try:
            small = transport.send(_frame(5, shape=(8, 8)))
            large = transport.send(_frame(6, shape=(64, 64)))
            assert small.segment != large.segment
        finally:
            transport.close()

    def test_close_unlinks_segments(self):
        transport = SharedMemoryTransport()
        ref = transport.send(_frame(7))
        transport.close()
        with pytest.raises(FileNotFoundError):
            SharedMemorySlotReader().read(ref)


class TestEngineLease:
    def test_standalone_session_rejects_the_pipelines_own_engine(self):
        pipeline = PipelineSpec().build(tracking_backend_for("mdnet"))
        with pytest.raises(ValueError, match="own engine"):
            pipeline.open_session(width=64, height=64, backend=pipeline.backend)

    def test_shard_streams_never_share_a_backend(self, tiny_tracking_dataset):
        """Concurrent shard ownership: every session gets its own engine copy."""
        pipeline = PipelineSpec(extrapolation_window=4).build(
            tracking_backend_for("mdnet")
        )
        executor = ShardedExecutor(pipeline)
        try:
            sequences = tiny_tracking_dataset.sequences[:2]
            for index, sequence in enumerate(sequences):
                executor.open_stream(f"s{index}", source=sequence)
            shard = executor.shard_of("s0")
            backends = [
                shard.core.stream(f"s{index}").session.backend
                for index in range(len(sequences))
            ]
            assert backends[0] is not backends[1]
            assert all(backend is not pipeline.backend for backend in backends)
        finally:
            executor.close()


class TestShardedRunDataset:
    @pytest.mark.parametrize("task", ["tracking", "detection"])
    def test_sharded_matches_serial(
        self, task, tiny_tracking_dataset, tiny_detection_dataset
    ):
        dataset = (
            tiny_tracking_dataset if task == "tracking" else tiny_detection_dataset
        )
        backend_for = (
            tracking_backend_for if task == "tracking" else detection_backend_for
        )
        backend_name = "mdnet" if task == "tracking" else "yolov2"
        spec = PipelineSpec(extrapolation_window=4)
        serial = spec.build(backend_for(backend_name)).run_dataset(dataset)
        sharded = spec.build(backend_for(backend_name)).run_dataset(
            dataset, max_workers=2
        )
        assert len(serial) == len(sharded)
        for left, right in zip(serial, sharded):
            assert_results_identical(left, right)

    def test_sharded_run_routes_through_executor_without_pickling_frames(
        self, tiny_tracking_dataset
    ):
        """Every frame crosses via the transport; none ride the pipe."""
        spec = PipelineSpec(extrapolation_window=4)
        pipeline = spec.build(tracking_backend_for("mdnet"))
        executor = ShardedExecutor(pipeline, workers=2)
        try:
            assert executor.transport_mode == "shm"
            outcomes = executor.run_sequences(tiny_tracking_dataset.sequences)
            total = sum(len(s) for s in tiny_tracking_dataset.sequences)
            assert executor.transport.frames_sent == total
            assert sum(len(result) for result, _ in outcomes) == total
        finally:
            executor.close()

    def test_legacy_pickle_transport_still_matches_serial(
        self, tiny_tracking_dataset
    ):
        spec = PipelineSpec(extrapolation_window=4)
        serial = spec.build(tracking_backend_for("mdnet")).run_dataset(
            tiny_tracking_dataset
        )
        legacy = spec.build(tracking_backend_for("mdnet")).run_dataset(
            tiny_tracking_dataset, max_workers=2, transport="pickle"
        )
        for left, right in zip(serial, legacy):
            assert_results_identical(left, right)

    def test_legacy_jobs_ship_config_handles_not_frame_stacks(
        self, tiny_tracking_dataset
    ):
        from repro.core.pipeline import _sequence_handle

        sequence = tiny_tracking_dataset.sequences[0]
        handle = _sequence_handle(sequence)
        kind, payload = handle
        assert kind == "config"
        # The handle is a tiny generator config, orders of magnitude below
        # the pixel stack the old fallback pickled.
        assert len(pickle.dumps(handle)) < sequence.frames.nbytes / 50

    def test_worker_failure_surfaces_as_shard_error(self):
        pipeline = PipelineSpec().build(tracking_backend_for("mdnet"))
        executor = ShardedExecutor(pipeline, workers=2)
        try:
            executor.open_stream("live", width=48, height=48, name="live")
            # First frame of a live tracking stream needs truth: the worker
            # session raises, and the failure must carry its traceback back.
            executor.submit("live", _frame(8, shape=(48, 48)))
            with pytest.raises(ShardError, match="no annotated objects"):
                executor.drain()
        finally:
            executor.close()


class TestShardedEquivalenceProperty:
    """Sharded output is bit-identical to serial for every policy mix."""

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        search_policy=st.sampled_from(["full", "spiral", "pruned"]),
        scheduling_policy=st.sampled_from(["fair", "energy"]),
        forced=st.sets(st.integers(min_value=1, max_value=23), max_size=4),
    )
    def test_sharded_matches_serial(
        self, small_sequence, fast_motion_sequence, search_policy,
        scheduling_policy, forced,
    ):
        spec = PipelineSpec(extrapolation_window=4, search_policy=search_policy)
        sequences = [small_sequence, fast_motion_sequence]

        serial = []
        for sequence in sequences:
            session = spec.build(tracking_backend_for("mdnet")).open_session(
                source=sequence
            )
            for index, frame in sequence.iter_frames():
                session.submit(frame, force_inference=index in forced)
            serial.append(session.finish())

        executor = ShardedExecutor(
            spec.build(tracking_backend_for("mdnet")),
            workers=2,
            schedule=ShardSchedule(policy=scheduling_policy),
        )
        try:
            for position, sequence in enumerate(sequences):
                executor.open_stream(f"s{position}", source=sequence)
            for index in range(max(len(s) for s in sequences)):
                for position, sequence in enumerate(sequences):
                    if index < len(sequence):
                        executor.submit(
                            f"s{position}",
                            sequence.frame(index),
                            force_inference=index in forced,
                        )
            executor.drain()
            for position, expected in enumerate(serial):
                result, _stats = executor.finish_stream(f"s{position}")
                assert_results_identical(expected, result)
        finally:
            executor.close()


class TestFailureIsolation:
    """A crashed stream (or worker) fails only itself under isolation."""

    def _open_pair(self, workers: int, sequence):
        spec = PipelineSpec(extrapolation_window=4)
        executor = ShardedExecutor(
            spec.build(tracking_backend_for("mdnet")),
            workers=workers,
            isolate_failures=True,
        )
        executor.open_stream(
            "bad", width=sequence.width, height=sequence.height, name="bad"
        )
        executor.open_stream("good", source=sequence, name="good")
        return executor

    @pytest.mark.parametrize("workers", [1, 2])
    def test_stream_failure_scopes_to_stream(self, small_sequence, workers):
        executor = self._open_pair(workers, small_sequence)
        try:
            # First frame of a live tracking stream with no truth: its
            # session raises inside the shard.
            executor.submit("bad", _frame(8, shape=small_sequence.frame(0).shape))
            for index, frame in small_sequence.iter_frames():
                executor.submit("good", frame)
            executor.drain()  # must NOT raise: only 'bad' is lost
            failures = executor.stream_failures
            assert set(failures) == {"bad"}
            assert "no annotated objects" in failures["bad"]
            from repro.core.executor import StreamFailedError

            with pytest.raises(StreamFailedError, match="no annotated objects"):
                executor.finish_stream("bad")
            result, _stats = executor.finish_stream("good")
            assert len(result.frames) == len(small_sequence)
        finally:
            executor.close()

    def test_isolated_failure_matches_serial_for_survivors(self, small_sequence):
        """The surviving stream's output is untouched by its neighbour dying."""
        spec = PipelineSpec(extrapolation_window=4)
        session = spec.build(tracking_backend_for("mdnet")).open_session(
            source=small_sequence
        )
        for _index, frame in small_sequence.iter_frames():
            session.submit(frame)
        expected = session.finish()

        executor = self._open_pair(2, small_sequence)
        try:
            executor.submit("bad", _frame(8, shape=small_sequence.frame(0).shape))
            for _index, frame in small_sequence.iter_frames():
                executor.submit("good", frame)
            executor.drain()
            result, _stats = executor.finish_stream("good")
            assert_results_identical(expected, result)
        finally:
            executor.close()

    def test_worker_death_fails_only_its_streams(self, small_sequence):
        from repro.core.executor import StreamFailedError

        executor = self._open_pair(2, small_sequence)
        try:
            bad_shard = executor.shard_of("bad")
            good_shard = executor.shard_of("good")
            assert bad_shard is not good_shard  # round-robin placement
            bad_shard.process.kill()
            bad_shard.process.join(timeout=10.0)
            # Submits to the dead shard surface a descriptive per-stream
            # failure; the sibling shard keeps serving.
            with pytest.raises(StreamFailedError, match="died unexpectedly"):
                for _ in range(64):
                    executor.submit(
                        "bad", _frame(9, shape=small_sequence.frame(0).shape)
                    )
            for _index, frame in small_sequence.iter_frames():
                executor.submit("good", frame)
            executor.drain()
            assert "bad" in executor.stream_failures
            assert "died unexpectedly" in executor.stream_failures["bad"]
            result, _stats = executor.finish_stream("good")
            assert len(result.frames) == len(small_sequence)
        finally:
            executor.close()

    def test_default_mode_still_propagates_raw_errors(self, small_sequence):
        """Without isolation the historical semantics hold: the in-process
        path re-raises the session exception itself (see also
        test_worker_failure_surfaces_as_shard_error for workers=2)."""
        spec = PipelineSpec(extrapolation_window=4)
        executor = ShardedExecutor(
            spec.build(tracking_backend_for("mdnet")), workers=1
        )
        try:
            executor.open_stream("live", width=48, height=48, name="live")
            executor.submit("live", _frame(8, shape=(48, 48)))
            with pytest.raises(ValueError, match="no annotated objects"):
                executor.drain()
        finally:
            executor.close()
