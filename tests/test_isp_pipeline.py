"""Tests for the full ISP pipeline (RAW path and luma path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isp.pipeline import ISPConfig, ISPPipeline
from repro.isp.sensor import CameraSensor


class TestRawPath:
    def test_full_raw_path_produces_luma_and_metadata(self, small_sequence):
        sensor = CameraSensor(seed=1)
        isp = ISPPipeline()
        first = isp.process(sensor.capture(small_sequence.frame(0), 0))
        second = isp.process(sensor.capture(small_sequence.frame(1), 1))
        assert first.motion_field is None  # no reference frame yet
        assert second.motion_field is not None
        assert second.luma.shape == small_sequence.frame(0).shape
        assert second.rgb.shape == (*small_sequence.frame(0).shape, 3)
        assert second.total_ops > second.motion_ops > 0

    def test_raw_path_luma_close_to_scene(self, small_sequence):
        sensor = CameraSensor(seed=2)
        isp = ISPPipeline()
        scene = small_sequence.frame(0).astype(np.float64)
        processed = isp.process(sensor.capture(scene, 0))
        assert np.abs(processed.luma - scene).mean() < 15.0


class TestLumaPath:
    def test_motion_vectors_exposed_by_default(self, small_sequence):
        isp = ISPPipeline()
        isp.process_luma(small_sequence.frame(0).astype(float), 0)
        result = isp.process_luma(small_sequence.frame(1).astype(float), 1)
        assert result.motion_field is not None
        entry = isp.frame_buffer.latest()
        assert entry.has_motion_vectors

    def test_motion_vectors_hidden_when_disabled(self, small_sequence):
        isp = ISPPipeline(ISPConfig(expose_motion_vectors=False))
        isp.process_luma(small_sequence.frame(0).astype(float), 0)
        result = isp.process_luma(small_sequence.frame(1).astype(float), 1)
        assert result.motion_field is None
        assert not isp.frame_buffer.latest().has_motion_vectors

    def test_temporal_denoise_disabled(self, small_sequence):
        isp = ISPPipeline(ISPConfig(temporal_denoise=False))
        isp.process_luma(small_sequence.frame(0).astype(float), 0)
        result = isp.process_luma(small_sequence.frame(1).astype(float), 1)
        assert result.motion_field is None
        assert result.motion_ops == 0

    def test_frame_counter_and_reset(self, small_sequence):
        isp = ISPPipeline()
        for index in range(3):
            isp.process_luma(small_sequence.frame(index).astype(float), index)
        assert isp.frames_processed == 3
        isp.reset()
        assert isp.frames_processed == 0
        result = isp.process_luma(small_sequence.frame(3).astype(float), 3)
        assert result.motion_field is None  # reference was cleared

    def test_frame_buffer_traffic_grows(self, small_sequence):
        isp = ISPPipeline()
        isp.process_luma(small_sequence.frame(0).astype(float), 0)
        written_after_one = isp.frame_buffer.bytes_written
        isp.process_luma(small_sequence.frame(1).astype(float), 1)
        assert isp.frame_buffer.bytes_written > written_after_one


class TestISPConfig:
    def test_power_includes_motion_estimation_overhead(self):
        with_me = ISPConfig(temporal_denoise=True)
        without_me = ISPConfig(temporal_denoise=False)
        assert with_me.total_power_w == pytest.approx(0.153 * 1.025)
        assert without_me.total_power_w == pytest.approx(0.153)

    def test_motion_field_tracks_configured_block_size(self, small_sequence):
        from repro.motion.block_matching import BlockMatchingConfig

        isp = ISPPipeline(ISPConfig(block_matching=BlockMatchingConfig(block_size=32)))
        isp.process_luma(small_sequence.frame(0).astype(float), 0)
        result = isp.process_luma(small_sequence.frame(1).astype(float), 1)
        assert result.motion_field.grid.block_size == 32
