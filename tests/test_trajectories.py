"""Tests for the synthetic object trajectories."""

from __future__ import annotations


import pytest
from hypothesis import given, strategies as st

from repro.video.trajectories import (
    BouncingTrajectory,
    CompositeTrajectory,
    LinearTrajectory,
    SinusoidalTrajectory,
    StationaryTrajectory,
)


class TestLinearTrajectory:
    def test_constant_velocity(self):
        trajectory = LinearTrajectory(10.0, 5.0, 2.0, -1.0)
        assert trajectory.position(0) == (10.0, 5.0)
        assert trajectory.position(4) == (18.0, 1.0)

    def test_per_frame_displacement_is_constant(self):
        trajectory = LinearTrajectory(0.0, 0.0, 1.5, 0.5)
        deltas = set()
        for t in range(1, 10):
            x0, y0 = trajectory.position(t - 1)
            x1, y1 = trajectory.position(t)
            deltas.add((round(x1 - x0, 9), round(y1 - y0, 9)))
        assert deltas == {(1.5, 0.5)}


class TestSinusoidalTrajectory:
    def test_periodicity(self):
        trajectory = SinusoidalTrajectory(50.0, 50.0, period_frames=20.0)
        x0, y0 = trajectory.position(0)
        x1, y1 = trajectory.position(20)
        assert x1 == pytest.approx(x0, abs=1e-6)
        assert y1 == pytest.approx(y0, abs=1e-6)

    def test_amplitude_bounds(self):
        trajectory = SinusoidalTrajectory(
            50.0, 50.0, amplitude_x=10.0, amplitude_y=4.0, period_frames=16.0
        )
        xs = [trajectory.position(t)[0] for t in range(64)]
        ys = [trajectory.position(t)[1] for t in range(64)]
        assert max(xs) <= 60.0 + 1e-9 and min(xs) >= 40.0 - 1e-9
        assert max(ys) <= 54.0 + 1e-9 and min(ys) >= 46.0 - 1e-9

    def test_drift_accumulates(self):
        trajectory = SinusoidalTrajectory(0.0, 0.0, drift_x=1.0, period_frames=10.0)
        assert trajectory.position(100)[0] == pytest.approx(100.0, abs=10.0)


class TestBouncingTrajectory:
    def test_stays_within_bounds(self):
        trajectory = BouncingTrajectory(30.0, 20.0, 7.0, 5.0, 100.0, 60.0, margin=5.0)
        for t in range(200):
            x, y = trajectory.position(t)
            assert 5.0 - 1e-9 <= x <= 95.0 + 1e-9
            assert 5.0 - 1e-9 <= y <= 55.0 + 1e-9

    def test_moves_before_first_bounce(self):
        trajectory = BouncingTrajectory(10.0, 10.0, 2.0, 0.0, 100.0, 60.0)
        assert trajectory.position(3) == (16.0, 10.0)

    def test_degenerate_bounds_pin_position(self):
        trajectory = BouncingTrajectory(10.0, 10.0, 2.0, 2.0, 10.0, 10.0, margin=10.0)
        x, y = trajectory.position(50)
        assert x == 10.0 and y == 10.0


class TestCompositeTrajectory:
    def test_follows_parent_with_offset(self):
        parent = LinearTrajectory(0.0, 0.0, 1.0, 0.0)
        part = CompositeTrajectory(parent, offset_x=5.0, offset_y=-2.0)
        assert part.position(10) == (15.0, -2.0)

    def test_local_oscillation_bounded(self):
        parent = StationaryTrajectory(0.0, 0.0)
        part = CompositeTrajectory(
            parent, local_amplitude_x=3.0, local_amplitude_y=1.0, local_period_frames=8.0
        )
        xs = [part.position(t)[0] for t in range(32)]
        assert max(xs) <= 3.0 + 1e-9
        assert min(xs) >= -3.0 - 1e-9


class TestStationaryTrajectory:
    def test_never_moves(self):
        trajectory = StationaryTrajectory(12.0, 34.0)
        assert trajectory.position(0) == trajectory.position(1000) == (12.0, 34.0)


@given(
    start=st.floats(0, 100, allow_nan=False),
    velocity=st.floats(-10, 10, allow_nan=False),
    frames=st.integers(min_value=0, max_value=500),
)
def test_bouncing_never_escapes(start, velocity, frames):
    trajectory = BouncingTrajectory(start, start, velocity, -velocity, 120.0, 120.0)
    x, y = trajectory.position(frames)
    assert -1e-6 <= x <= 120.0 + 1e-6
    assert -1e-6 <= y <= 120.0 + 1e-6
