"""Tests for the simulated CNN detector / tracker and their profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import BoundingBox
from repro.core.types import Detection
from repro.nn.detector import SimulatedCNNDetector
from repro.nn.models import build_mdnet, build_tiny_yolo, build_yolo_v2
from repro.nn.profiles import (
    AccuracyProfile,
    MDNET_PROFILE,
    TINY_YOLO_PROFILE,
    YOLO_V2_PROFILE,
)
from repro.nn.tracker import SimulatedCNNTracker


@pytest.fixture
def truth():
    return [
        Detection(box=BoundingBox(20, 20, 40, 30), label="car", object_id=0),
        Detection(box=BoundingBox(100, 50, 30, 40), label="person", object_id=1),
    ]


class TestProfiles:
    def test_validation(self):
        with pytest.raises(ValueError):
            AccuracyProfile("bad", 0.1, 0.1, miss_rate=1.5)
        with pytest.raises(ValueError):
            AccuracyProfile("bad", -0.1, 0.1, miss_rate=0.0)
        with pytest.raises(ValueError):
            AccuracyProfile("bad", 0.1, 0.1, 0.0, false_positives_per_frame=-1)

    def test_yolo_more_accurate_than_tiny(self):
        assert YOLO_V2_PROFILE.center_noise < TINY_YOLO_PROFILE.center_noise
        assert YOLO_V2_PROFILE.miss_rate < TINY_YOLO_PROFILE.miss_rate
        assert MDNET_PROFILE.miss_rate == 0.0


class TestSimulatedDetector:
    def test_detections_close_to_truth(self, truth):
        detector = SimulatedCNNDetector(build_yolo_v2(), YOLO_V2_PROFILE, seed=0,
                                        frame_width=200, frame_height=150)
        detections = detector.detect(3, truth, sequence_name="seq")
        matched = [d for d in detections if d.object_id is not None]
        assert matched
        for detection in matched:
            original = truth[detection.object_id]
            assert detection.box.iou(original.box) > 0.5
            assert detection.label == original.label

    def test_determinism_per_frame(self, truth):
        detector_a = SimulatedCNNDetector(build_yolo_v2(), YOLO_V2_PROFILE, seed=5,
                                          frame_width=200, frame_height=150)
        detector_b = SimulatedCNNDetector(build_yolo_v2(), YOLO_V2_PROFILE, seed=5,
                                          frame_width=200, frame_height=150)
        first = detector_a.detect(7, truth, sequence_name="seq")
        second = detector_b.detect(7, truth, sequence_name="seq")
        assert [d.box.as_xywh() for d in first] == [d.box.as_xywh() for d in second]

    def test_results_independent_of_call_order(self, truth):
        detector = SimulatedCNNDetector(build_yolo_v2(), YOLO_V2_PROFILE, seed=5,
                                        frame_width=200, frame_height=150)
        direct = detector.detect(9, truth, sequence_name="seq")
        detector.detect(1, truth, sequence_name="seq")
        detector.detect(4, truth, sequence_name="seq")
        repeated = detector.detect(9, truth, sequence_name="seq")
        assert [d.box.as_xywh() for d in direct] == [d.box.as_xywh() for d in repeated]

    def test_tiny_yolo_is_noisier(self, truth):
        yolo = SimulatedCNNDetector(build_yolo_v2(), YOLO_V2_PROFILE, seed=1,
                                    frame_width=200, frame_height=150)
        tiny = SimulatedCNNDetector(build_tiny_yolo(), TINY_YOLO_PROFILE, seed=1,
                                    frame_width=200, frame_height=150)

        def mean_iou_against_truth(detector):
            ious = []
            for frame in range(40):
                for detection in detector.detect(frame, truth, sequence_name="s"):
                    if detection.object_id is not None:
                        ious.append(detection.box.iou(truth[detection.object_id].box))
            return float(np.mean(ious))

        assert mean_iou_against_truth(yolo) > mean_iou_against_truth(tiny)

    def test_miss_rate_drops_objects(self, truth):
        profile = AccuracyProfile("lossy", 0.02, 0.02, miss_rate=0.5)
        detector = SimulatedCNNDetector(build_yolo_v2(), profile, seed=2,
                                        frame_width=200, frame_height=150)
        total = sum(
            len([d for d in detector.detect(f, truth, sequence_name="s")
                 if d.object_id is not None])
            for f in range(50)
        )
        assert total < 0.8 * 50 * len(truth)

    def test_false_positives_generated(self, truth):
        profile = AccuracyProfile("fp", 0.02, 0.02, 0.0, false_positives_per_frame=2.0)
        detector = SimulatedCNNDetector(build_yolo_v2(), profile, seed=3,
                                        frame_width=200, frame_height=150)
        fps = sum(
            len([d for d in detector.detect(f, truth, sequence_name="s")
                 if d.object_id is None])
            for f in range(30)
        )
        assert fps > 20

    def test_boxes_clipped_to_frame(self):
        edge_truth = [Detection(box=BoundingBox(0, 0, 30, 30), object_id=0)]
        detector = SimulatedCNNDetector(build_yolo_v2(), YOLO_V2_PROFILE, seed=4,
                                        frame_width=100, frame_height=80)
        for frame in range(20):
            for detection in detector.detect(frame, edge_truth, sequence_name="s"):
                assert detection.box.left >= 0
                assert detection.box.top >= 0
                assert detection.box.right <= 100
                assert detection.box.bottom <= 80

    def test_inference_counter(self, truth):
        detector = SimulatedCNNDetector(build_yolo_v2(), YOLO_V2_PROFILE, seed=0)
        for frame in range(5):
            detector.detect(frame, truth, sequence_name="s")
        assert detector.inference_count == 5


class TestSimulatedTracker:
    def test_requires_initialization(self):
        tracker = SimulatedCNNTracker(build_mdnet(), MDNET_PROFILE)
        with pytest.raises(RuntimeError):
            tracker.track(0, BoundingBox(0, 0, 10, 10))

    def test_tracks_close_to_truth(self):
        tracker = SimulatedCNNTracker(build_mdnet(), MDNET_PROFILE, seed=1)
        first = BoundingBox(40, 30, 30, 40)
        tracker.initialize(first, label="person", object_id=0)
        ious = []
        for frame in range(1, 30):
            truth = first.translate(2.0 * frame, 1.0 * frame)
            result = tracker.track(frame, truth, sequence_name="s")
            ious.append(result.box.iou(truth))
            assert result.object_id == 0
            assert result.label == "person"
        assert np.mean(ious) > 0.7

    def test_drifts_when_target_absent(self):
        tracker = SimulatedCNNTracker(build_mdnet(), MDNET_PROFILE, seed=2)
        first = BoundingBox(40, 30, 30, 40)
        tracker.initialize(first)
        result = tracker.track(1, None, sequence_name="s")
        assert result.score <= 0.5
        assert result.box.iou(first) > 0.3  # stays near the last known location

    def test_is_initialized_flag(self):
        tracker = SimulatedCNNTracker(build_mdnet(), MDNET_PROFILE)
        assert not tracker.is_initialized
        tracker.initialize(BoundingBox(0, 0, 10, 10))
        assert tracker.is_initialized
