"""Integration tests: the object-detection scenario end to end (Sec. 6.1 shape)."""

from __future__ import annotations

import pytest

from repro.core import PipelineSpec, detection_backend_for
from repro.eval import average_precision
from repro.nn.models import build_tiny_yolo, build_yolo_v2
from repro.soc import VisionSoC


@pytest.fixture(scope="module")
def detection_runs(tiny_detection_dataset):
    dataset = tiny_detection_dataset
    runs = {}
    for label, backend_name, window in (
        ("YOLOv2", "yolov2", 1),
        ("EW-2", "yolov2", 2),
        ("EW-4", "yolov2", 4),
        ("EW-32", "yolov2", 32),
        ("TinyYOLO", "tinyyolo", 1),
    ):
        pipeline = PipelineSpec(extrapolation_window=window).build(
            detection_backend_for(backend_name, seed=9)
        )
        runs[label] = pipeline.run_dataset(dataset)
    return runs


class TestDetectionAccuracyShape:
    def test_baseline_is_accurate(self, detection_runs, tiny_detection_dataset):
        assert average_precision(detection_runs["YOLOv2"], tiny_detection_dataset, 0.5) > 0.8

    def test_ew2_loses_little_accuracy(self, detection_runs, tiny_detection_dataset):
        """Paper: EW-2 costs only ~0.6% AP at IoU 0.5."""
        dataset = tiny_detection_dataset
        baseline = average_precision(detection_runs["YOLOv2"], dataset, 0.5)
        ew2 = average_precision(detection_runs["EW-2"], dataset, 0.5)
        assert baseline - ew2 < 0.06

    def test_large_windows_hurt_more(self, detection_runs, tiny_detection_dataset):
        dataset = tiny_detection_dataset
        ew4 = average_precision(detection_runs["EW-4"], dataset, 0.5)
        ew32 = average_precision(detection_runs["EW-32"], dataset, 0.5)
        assert ew4 >= ew32

    def test_tiny_yolo_less_accurate_than_ew32(self, detection_runs, tiny_detection_dataset):
        """The paper's key comparison: extrapolation beats network truncation."""
        dataset = tiny_detection_dataset
        tiny = average_precision(detection_runs["TinyYOLO"], dataset, 0.5)
        ew32 = average_precision(detection_runs["EW-32"], dataset, 0.5)
        assert tiny < ew32

    def test_multiple_objects_tracked_through_extrapolation(self, detection_runs):
        for results in (detection_runs["EW-2"], detection_runs["EW-4"]):
            for sequence_result in results:
                extrapolated = [f for f in sequence_result.frames if f.is_extrapolated]
                assert extrapolated
                assert all(len(frame.detections) >= 2 for frame in extrapolated)


class TestDetectionEnergyConsistency:
    def test_headline_claims_with_measured_schedules(self, detection_runs):
        """EW-2 roughly doubles FPS and saves >35% energy; Tiny YOLO is worse
        than aggressive extrapolation in both energy and accuracy."""
        soc = VisionSoC()
        yolo = build_yolo_v2()
        tiny = build_tiny_yolo()
        baseline = soc.evaluate_results(yolo, detection_runs["YOLOv2"], label="YOLOv2")
        ew2 = soc.evaluate_results(yolo, detection_runs["EW-2"], label="EW-2")
        ew32 = soc.evaluate_results(yolo, detection_runs["EW-32"], label="EW-32")
        tiny_result = soc.evaluate_results(tiny, detection_runs["TinyYOLO"], label="TinyYOLO")

        assert ew2.fps > 1.8 * baseline.fps
        assert ew2.energy_saving_vs(baseline) > 0.35
        assert tiny_result.energy_per_frame_j > ew32.energy_per_frame_j
