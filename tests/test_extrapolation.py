"""Tests for the motion-extrapolation algorithm (Eqs. 1-3, sub-ROIs)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.extrapolation import (
    ExtrapolationConfig,
    MotionExtrapolator,
    RoiMotionState,
)
from repro.core.geometry import BoundingBox, MotionVector
from repro.core.types import Detection
from repro.motion.motion_field import MacroblockGrid, MotionField


GRID = MacroblockGrid(frame_width=128, frame_height=96, block_size=16)


def _field(motion: MotionVector, sad: float = 0.0) -> MotionField:
    return MotionField.uniform(GRID, motion, sad_value=sad)


class TestConfigValidation:
    def test_bad_grid(self):
        with pytest.raises(ValueError):
            ExtrapolationConfig(sub_roi_grid=(0, 2))

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            ExtrapolationConfig(confidence_threshold=1.5)
        with pytest.raises(ValueError):
            ExtrapolationConfig(low_confidence_beta=-0.1)


class TestSingleRoiExtrapolation:
    def test_uniform_motion_moves_roi_exactly(self):
        extrapolator = MotionExtrapolator(frame_width=128, frame_height=96)
        roi = BoundingBox(30, 30, 30, 20)
        result = extrapolator.extrapolate_roi(roi, _field(MotionVector(3.0, -2.0)))
        assert result.box.center.x == pytest.approx(roi.center.x + 3.0)
        assert result.box.center.y == pytest.approx(roi.center.y - 2.0)
        assert result.confidence == pytest.approx(1.0)

    def test_zero_motion_keeps_roi(self):
        extrapolator = MotionExtrapolator(frame_width=128, frame_height=96)
        roi = BoundingBox(30, 30, 30, 20)
        result = extrapolator.extrapolate_roi(roi, _field(MotionVector(0.0, 0.0)))
        assert result.box.iou(roi) == pytest.approx(1.0)

    def test_low_confidence_blends_with_previous_motion(self):
        """Eq. 3: with a noisy (high-SAD) field, beta falls back to 0.5."""
        extrapolator = MotionExtrapolator(frame_width=128, frame_height=96)
        roi = BoundingBox(30, 30, 32, 32)
        noisy_field = _field(MotionVector(8.0, 0.0), sad=0.8 * 255 * 256)
        state = RoiMotionState(filtered_motion=MotionVector(0.0, 0.0))
        result = extrapolator.extrapolate_roi(roi, noisy_field, state)
        # beta = 0.5 -> blended motion is half of the observed 8 px.
        assert result.box.center.x - roi.center.x == pytest.approx(4.0, abs=0.1)

    def test_high_confidence_trusts_current_motion(self):
        extrapolator = MotionExtrapolator(frame_width=128, frame_height=96)
        roi = BoundingBox(30, 30, 32, 32)
        clean_field = _field(MotionVector(8.0, 0.0), sad=0.0)
        state = RoiMotionState(filtered_motion=MotionVector(-8.0, 0.0))
        result = extrapolator.extrapolate_roi(roi, clean_field, state)
        assert result.box.center.x - roi.center.x == pytest.approx(8.0, abs=0.1)

    def test_confidence_filter_can_be_disabled(self):
        config = ExtrapolationConfig(use_confidence_filter=False)
        extrapolator = MotionExtrapolator(config, frame_width=128, frame_height=96)
        roi = BoundingBox(30, 30, 32, 32)
        noisy_field = _field(MotionVector(6.0, 0.0), sad=0.9 * 255 * 256)
        state = RoiMotionState(filtered_motion=MotionVector(0.0, 0.0))
        result = extrapolator.extrapolate_roi(roi, noisy_field, state)
        # Without the filter the raw Eq. 1 average is applied unchanged.
        assert result.box.center.x - roi.center.x == pytest.approx(6.0, abs=0.1)

    def test_state_is_updated_recursively(self):
        extrapolator = MotionExtrapolator(frame_width=128, frame_height=96)
        roi = BoundingBox(30, 30, 32, 32)
        state = RoiMotionState()
        extrapolator.extrapolate_roi(roi, _field(MotionVector(4.0, 2.0)), state)
        assert state.filtered_motion.u == pytest.approx(4.0, abs=0.1)
        assert state.filtered_motion.v == pytest.approx(2.0, abs=0.1)

    def test_clipping_keeps_roi_inside_frame(self):
        extrapolator = MotionExtrapolator(frame_width=128, frame_height=96)
        roi = BoundingBox(110, 80, 16, 14)
        result = extrapolator.extrapolate_roi(roi, _field(MotionVector(7.0, 7.0)))
        assert result.box.right <= 128 + 1e-6
        assert result.box.bottom <= 96 + 1e-6

    def test_clipping_can_be_disabled(self):
        config = ExtrapolationConfig(clip_to_frame=False)
        extrapolator = MotionExtrapolator(config, frame_width=128, frame_height=96)
        roi = BoundingBox(110, 80, 16, 14)
        result = extrapolator.extrapolate_roi(roi, _field(MotionVector(7.0, 7.0)))
        assert result.box.right > 128


class TestDeformationHandling:
    def _two_speed_field(self) -> MotionField:
        """Left half of the frame moves right by 2, right half by 6."""
        vectors = np.zeros((GRID.rows, GRID.cols, 2))
        vectors[:, : GRID.cols // 2, 0] = 2.0
        vectors[:, GRID.cols // 2 :, 0] = 6.0
        return MotionField(vectors, np.zeros((GRID.rows, GRID.cols)), GRID)

    def test_sub_rois_stretch_the_box(self):
        """Independently moving halves must widen the merged ROI."""
        config = ExtrapolationConfig(sub_roi_grid=(1, 2))
        extrapolator = MotionExtrapolator(config, frame_width=128, frame_height=96)
        roi = BoundingBox(32, 32, 64, 32)
        result = extrapolator.extrapolate_roi(roi, self._two_speed_field())
        assert result.box.width > roi.width

    def test_single_roi_mode_translates_rigidly(self):
        config = ExtrapolationConfig(sub_roi_grid=(1, 1))
        extrapolator = MotionExtrapolator(config, frame_width=128, frame_height=96)
        roi = BoundingBox(32, 32, 64, 32)
        result = extrapolator.extrapolate_roi(roi, self._two_speed_field())
        assert result.box.width == pytest.approx(roi.width)


class TestMultiRoiExtrapolation:
    def test_detections_keep_metadata_and_gain_flag(self):
        extrapolator = MotionExtrapolator(frame_width=128, frame_height=96)
        detections = [
            Detection(box=BoundingBox(10, 10, 20, 20), label="car", score=0.9, object_id=3),
            Detection(box=BoundingBox(60, 40, 20, 20), label="person", score=0.8, object_id=None),
        ]
        states = {}
        moved = extrapolator.extrapolate_detections(
            detections, _field(MotionVector(2.0, 1.0)), states
        )
        assert len(moved) == 2
        assert all(d.extrapolated for d in moved)
        assert moved[0].label == "car" and moved[0].object_id == 3
        assert moved[0].score == pytest.approx(0.9)
        assert len(states) == 2

    def test_states_reused_across_frames(self):
        extrapolator = MotionExtrapolator(frame_width=128, frame_height=96)
        detections = [Detection(box=BoundingBox(10, 10, 20, 20), object_id=1)]
        states = {}
        extrapolator.extrapolate_detections(detections, _field(MotionVector(2.0, 0.0)), states)
        first_state = states[1].filtered_motion
        extrapolator.extrapolate_detections(detections, _field(MotionVector(2.0, 0.0)), states)
        assert states[1].filtered_motion.u == pytest.approx(first_state.u, abs=0.5)


class TestStateLifecycle:
    def test_stale_anonymous_states_are_pruned_on_count_change(self):
        """A shrinking anonymous detection list must not leak filter states."""
        extrapolator = MotionExtrapolator(frame_width=128, frame_height=96)
        two = [
            Detection(box=BoundingBox(10, 10, 20, 20)),
            Detection(box=BoundingBox(60, 40, 20, 20)),
        ]
        states = {}
        extrapolator.extrapolate_detections(two, _field(MotionVector(2.0, 0.0)), states)
        assert set(states) == {-1, -2}
        one = [Detection(box=BoundingBox(90, 20, 20, 20))]
        extrapolator.extrapolate_detections(one, _field(MotionVector(2.0, 0.0)), states)
        assert set(states) == {-1}

    def test_new_anonymous_detection_does_not_inherit_foreign_motion(self):
        """The -(index+1) key of a fresh detection set must start clean."""
        extrapolator = MotionExtrapolator(frame_width=128, frame_height=96)
        states = {}
        fast = [Detection(box=BoundingBox(10, 10, 20, 20))]
        for _ in range(3):
            extrapolator.extrapolate_detections(fast, _field(MotionVector(7.0, 0.0)), states)
        # Detection count changes: the old state keyed -1 belonged to the
        # fast object and must not seed the two new objects' filters.
        replacement = [
            Detection(box=BoundingBox(30, 30, 20, 20)),
            Detection(box=BoundingBox(70, 50, 20, 20)),
        ]
        states.clear()  # what the pipeline does at the I-frame
        noisy = _field(MotionVector(0.0, 0.0), sad=0.95 * 255 * 256)
        moved = extrapolator.extrapolate_detections(replacement, noisy, states)
        # Low confidence blends with the (fresh, zero) prior: the boxes must
        # stay put instead of inheriting the fast object's 7 px/frame.
        for before, after in zip(replacement, moved):
            assert after.box.center.x == pytest.approx(before.box.center.x, abs=0.5)

    def test_identified_states_survive_while_their_id_lives(self):
        extrapolator = MotionExtrapolator(frame_width=128, frame_height=96)
        states = {}
        detections = [
            Detection(box=BoundingBox(10, 10, 20, 20), object_id=7),
            Detection(box=BoundingBox(60, 40, 20, 20), object_id=9),
        ]
        extrapolator.extrapolate_detections(detections, _field(MotionVector(1.0, 0.0)), states)
        assert set(states) == {7, 9}
        extrapolator.extrapolate_detections(
            detections[:1], _field(MotionVector(1.0, 0.0)), states
        )
        assert set(states) == {7}


class TestComputeAccounting:
    def test_typical_roi_costs_about_10k_ops(self):
        """Sec. 3.2: a 100x50 ROI needs roughly 10 K fixed-point operations."""
        extrapolator = MotionExtrapolator()
        ops = extrapolator.operations_per_roi(BoundingBox(0, 0, 100, 50))
        assert 2_000 <= ops <= 20_000

    def test_total_operations_accumulate(self):
        extrapolator = MotionExtrapolator(frame_width=128, frame_height=96)
        roi = BoundingBox(30, 30, 30, 20)
        extrapolator.extrapolate_roi(roi, _field(MotionVector(1.0, 0.0)))
        extrapolator.extrapolate_roi(roi, _field(MotionVector(1.0, 0.0)))
        assert extrapolator.total_operations == pytest.approx(
            2 * extrapolator.operations_per_roi(roi)
        )


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
@given(
    u=st.floats(-7, 7, allow_nan=False),
    v=st.floats(-7, 7, allow_nan=False),
    x=st.floats(10, 80, allow_nan=False),
    y=st.floats(10, 60, allow_nan=False),
)
def test_extrapolated_box_preserves_size_under_uniform_motion(u, v, x, y):
    extrapolator = MotionExtrapolator()
    roi = BoundingBox(x, y, 24, 18)
    result = extrapolator.extrapolate_roi(roi, _field(MotionVector(u, v)))
    assert result.box.width == pytest.approx(roi.width, abs=1e-6)
    assert result.box.height == pytest.approx(roi.height, abs=1e-6)


@given(
    sad_fraction=st.floats(0, 1, allow_nan=False),
    u=st.floats(-7, 7, allow_nan=False),
)
def test_filtered_motion_never_exceeds_observed_or_prior(sad_fraction, u):
    """The Eq. 3 blend is a convex combination of current and prior motion."""
    extrapolator = MotionExtrapolator()
    roi = BoundingBox(40, 30, 32, 32)
    field = _field(MotionVector(u, 0.0), sad=sad_fraction * 255 * 256)
    state = RoiMotionState(filtered_motion=MotionVector(0.0, 0.0))
    result = extrapolator.extrapolate_roi(roi, field, state)
    displacement = result.box.center.x - roi.center.x
    low, high = min(0.0, u), max(0.0, u)
    assert low - 1e-6 <= displacement <= high + 1e-6
