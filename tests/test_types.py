"""Tests for the shared detection / frame-result types."""

from __future__ import annotations

import pytest

from repro.core.geometry import BoundingBox
from repro.core.types import (
    Detection,
    FrameKind,
    FrameResult,
    SequenceResult,
    merge_sequence_results,
)


@pytest.fixture
def detections():
    return [
        Detection(box=BoundingBox(0, 0, 10, 10), label="car", score=0.9, object_id=1),
        Detection(box=BoundingBox(20, 20, 8, 8), label="person", score=0.7, object_id=2),
    ]


class TestDetection:
    def test_with_box_keeps_metadata(self, detections):
        new_box = BoundingBox(5, 5, 10, 10)
        updated = detections[0].with_box(new_box)
        assert updated.box == new_box
        assert updated.label == "car"
        assert updated.object_id == 1
        assert not updated.extrapolated

    def test_as_extrapolated_sets_flag(self, detections):
        new_box = BoundingBox(5, 5, 10, 10)
        extrapolated = detections[0].as_extrapolated(new_box)
        assert extrapolated.extrapolated
        assert extrapolated.box == new_box

    def test_detection_is_frozen(self, detections):
        with pytest.raises(AttributeError):
            detections[0].score = 0.1


class TestFrameResult:
    def test_kind_predicates(self, detections):
        inference = FrameResult(0, FrameKind.INFERENCE, detections)
        extrapolated = FrameResult(1, FrameKind.EXTRAPOLATION, detections)
        assert inference.is_inference and not inference.is_extrapolated
        assert extrapolated.is_extrapolated and not extrapolated.is_inference

    def test_boxes(self, detections):
        result = FrameResult(0, FrameKind.INFERENCE, detections)
        assert result.boxes() == [d.box for d in detections]

    def test_best_for_picks_highest_iou(self, detections):
        result = FrameResult(0, FrameKind.INFERENCE, detections)
        truth = BoundingBox(19, 19, 8, 8)
        best = result.best_for(truth)
        assert best is detections[1]

    def test_best_for_empty_returns_none(self):
        result = FrameResult(0, FrameKind.INFERENCE, [])
        assert result.best_for(BoundingBox(0, 0, 5, 5)) is None


class TestSequenceResult:
    def _make(self):
        frames = [
            FrameResult(0, FrameKind.INFERENCE, []),
            FrameResult(1, FrameKind.EXTRAPOLATION, []),
            FrameResult(2, FrameKind.EXTRAPOLATION, []),
            FrameResult(3, FrameKind.INFERENCE, []),
        ]
        return SequenceResult(sequence_name="seq", frames=frames)

    def test_counts(self):
        result = self._make()
        assert len(result) == 4
        assert result.inference_count == 2
        assert result.extrapolation_count == 2
        assert result.inference_rate == pytest.approx(0.5)

    def test_empty_inference_rate(self):
        assert SequenceResult("empty").inference_rate == 0.0

    def test_iteration(self):
        result = self._make()
        assert [f.frame_index for f in result] == [0, 1, 2, 3]

    def test_merge(self):
        a = self._make()
        b = self._make()
        merged = merge_sequence_results([a, b])
        assert len(merged) == 8
