"""Tests for the design-space autotuner (repro.harness.tune).

The load-bearing properties: the disk store makes sweeps resumable with
**zero repeated evaluations** (kill-mid-sweep + ``--resume`` completes the
remainder), the Pareto machinery is correct on known inputs, and every
strategy respects the evaluation budget.
"""

from __future__ import annotations

import json

import pytest

from repro.core.spec import PipelineSpec
from repro.harness.cli import main as harness_main
from repro.harness.tune import (
    TUNE_PRESETS,
    TUNE_SPACES,
    TuneError,
    TuneFidelity,
    TuneResult,
    TuneStore,
    best_at_baseline_accuracy,
    dominates,
    enumerate_candidates,
    load_space,
    nondominated_rank,
    pareto_frontier,
    point_key,
    run_tune,
    searchable_dimensions,
)

#: A 3-point window sweep: small enough that a full grid is a few hundred
#: milliseconds at ci fidelity, big enough to exercise resume and budgets.
TINY_SPACE = {"extrapolation_window": [1, 2, 4]}


def _result(key="k", accuracy=1.0, energy=10.0, fps=60.0, **extra) -> TuneResult:
    defaults = dict(
        key=key,
        spec_args=[],
        describe=key,
        fidelity=TuneFidelity().to_dict(),
        accuracy=accuracy,
        energy_per_frame_mj=energy,
        fps=fps,
        latency_ms=1000.0 / fps if fps else float("inf"),
        inference_rate=0.5,
    )
    defaults.update(extra)
    return TuneResult(**defaults)


class TestSpaces:
    def test_builtin_spaces_validate(self):
        for name in TUNE_SPACES:
            label, dims = load_space(name)
            assert label == name
            assert enumerate_candidates(dims)

    def test_unknown_space_lists_builtins(self):
        with pytest.raises(TuneError, match="ci"):
            load_space("no-such-space")

    def test_json_space_file(self, tmp_path):
        path = tmp_path / "space.json"
        path.write_text(json.dumps(TINY_SPACE))
        label, dims = load_space(str(path))
        assert label == "space"
        assert dims == TINY_SPACE

    def test_unsearchable_dimension_rejected(self):
        with pytest.raises(TuneError, match="workers"):
            load_space({"workers": [1, 2]})

    def test_empty_values_rejected(self):
        with pytest.raises(TuneError, match="block_size"):
            load_space({"block_size": []})

    def test_candidates_start_from_base_and_deduplicate(self):
        candidates = enumerate_candidates(TINY_SPACE)
        # EW-2 is both the base spec and a swept value: one candidate, first.
        assert candidates[0] == PipelineSpec()
        assert len(candidates) == 3
        assert len({c.cache_key() for c in candidates}) == 3

    def test_redundant_combos_are_filtered(self):
        dims = {
            "exhaustive_search": [False, True],
            "search_policy": ["pruned", "histogram"],
        }
        candidates = enumerate_candidates(dims)
        # TSS ignores the scan policy, so histogram-under-TSS must not appear.
        assert not any(
            not c.exhaustive_search and c.search_policy == "histogram"
            for c in candidates
        )
        dims = {"extrapolation_window": [1], "extrapolation_host": ["cpu"]}
        # EW-1 has no E-frames: nothing for a CPU host to extrapolate.
        assert all(
            c.extrapolation_host == "mc" for c in enumerate_candidates(dims)
        )

    def test_kernel_backend_dimension_guarded_by_availability(self):
        """The ci space searches numba configs only where they can run."""
        from repro.motion.kernels import numba_available

        assert "numba" in TUNE_SPACES["ci"]["kernel_backend"]
        _, dims = load_space("ci")
        if numba_available():
            assert "numba" in dims["kernel_backend"]
        else:
            assert dims["kernel_backend"] == ["numpy"]
        # A machine-specific JSON space degrades the same way instead of
        # duplicating the numpy point.
        _, custom = load_space({"kernel_backend": ["numpy", "numba"]})
        assert "numpy" in custom["kernel_backend"]

    def test_searchable_dimensions_cover_the_spaces(self):
        listing = searchable_dimensions()
        for dims in TUNE_SPACES.values():
            for name in dims:
                assert name in listing
        for info in listing.values():
            assert "default" in info


class TestStore:
    def test_point_key_is_stable_and_discriminating(self):
        fidelity = TUNE_PRESETS["ci"]
        a = point_key(PipelineSpec(), fidelity, seed=1)
        assert a == point_key(PipelineSpec(), fidelity, seed=1)
        json.loads(a)  # keys are themselves valid JSON
        others = [
            point_key(PipelineSpec(extrapolation_window=4), fidelity, seed=1),
            point_key(PipelineSpec(frame_format="q8.8"), fidelity, seed=1),
            point_key(PipelineSpec(soc_config="720p30"), fidelity, seed=1),
            point_key(PipelineSpec(), fidelity.with_frames(6), seed=1),
            point_key(PipelineSpec(), fidelity, seed=2),
        ]
        assert len({a, *others}) == len(others) + 1

    def test_round_trip(self, tmp_path):
        store = TuneStore(tmp_path / "store.jsonl")
        store.add(_result("a", accuracy=0.5))
        store.add(_result("b", energy=float("nan")))
        reloaded = TuneStore(store.path)
        assert reloaded.load() == 2
        assert reloaded.get("a").accuracy == 0.5
        assert reloaded.get("b").energy_per_frame_mj != reloaded.get("b").energy_per_frame_mj

    def test_later_lines_supersede(self, tmp_path):
        store = TuneStore(tmp_path / "store.jsonl")
        store.add(_result("a", accuracy=0.1))
        store.add(_result("a", accuracy=0.9))
        reloaded = TuneStore(store.path)
        reloaded.load()
        assert len(reloaded) == 1
        assert reloaded.get("a").accuracy == 0.9

    def test_corrupt_line_is_a_tune_error(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('{"not": "a result"}\n')
        with pytest.raises(TuneError, match="corrupt"):
            TuneStore(path).load()


class TestPareto:
    def test_dominates(self):
        good = _result("good", accuracy=0.9, energy=10.0, fps=60.0)
        worse = _result("worse", accuracy=0.8, energy=12.0, fps=60.0)
        tradeoff = _result("tradeoff", accuracy=0.95, energy=20.0, fps=60.0)
        assert dominates(good, worse)
        assert not dominates(worse, good)
        assert not dominates(good, tradeoff) and not dominates(tradeoff, good)
        assert not dominates(good, good)

    def test_frontier_on_known_points(self):
        points = [
            _result("a", accuracy=1.0, energy=20.0),
            _result("b", accuracy=0.9, energy=10.0),
            _result("c", accuracy=0.8, energy=15.0),  # dominated by b
            _result("d", accuracy=0.9, energy=12.0),  # dominated by b
        ]
        frontier = pareto_frontier(points)
        assert [r.key for r in frontier] == ["a", "b"]

    def test_frontier_deduplicates_equal_objectives(self):
        points = [_result("a"), _result("a-twin")]
        assert [r.key for r in pareto_frontier(points)] == ["a"]

    def test_single_point_frontier(self):
        assert len(pareto_frontier([_result("only")])) == 1
        assert pareto_frontier([]) == []

    def test_nondominated_rank_peels_fronts(self):
        points = [
            _result("front", accuracy=1.0, energy=10.0),
            _result("mid", accuracy=0.9, energy=12.0),
            _result("back", accuracy=0.8, energy=14.0),
        ]
        ranks = nondominated_rank(points)
        assert ranks == {"front": 0, "mid": 1, "back": 2}

    def test_best_at_baseline_accuracy(self):
        baseline = _result("base", accuracy=0.9, energy=15.0)
        cheaper_same = _result("cheap", accuracy=0.92, energy=9.0)
        cheapest_worse = _result("lossy", accuracy=0.5, energy=5.0)
        best = best_at_baseline_accuracy(
            [baseline, cheaper_same, cheapest_worse], baseline
        )
        assert best.key == "cheap"
        # Without a baseline: lowest energy outright.
        assert (
            best_at_baseline_accuracy([baseline, cheapest_worse], None).key == "lossy"
        )
        assert best_at_baseline_accuracy([], None) is None


class TestRunTune:
    def test_grid_completes_and_reports_frontier(self, tmp_path):
        report = run_tune(
            TINY_SPACE, preset="ci", strategy="grid", store_path=tmp_path / "s.jsonl"
        )
        assert report.evaluated == 3
        assert report.reused == 0
        assert report.frontier
        meta = report.artifact.metadata
        assert meta["evaluated"] == 3
        assert meta["frontier_size"] == len(report.frontier)
        assert "baseline" in meta and "best_at_baseline_accuracy" in meta

    def test_budget_caps_fresh_evaluations(self, tmp_path):
        report = run_tune(
            TINY_SPACE,
            preset="ci",
            strategy="grid",
            budget=2,
            store_path=tmp_path / "s.jsonl",
        )
        assert report.evaluated == 2
        assert report.artifact.metadata["budget_exhausted"]

    def test_kill_mid_sweep_then_resume_repeats_nothing(self, tmp_path):
        store_path = tmp_path / "s.jsonl"
        evaluated: list[str] = []

        def killer(message: str) -> None:
            # Simulate Ctrl-C after the second point finishes journaling.
            evaluated.append(message)
            if len(evaluated) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_tune(
                TINY_SPACE,
                preset="ci",
                strategy="grid",
                store_path=store_path,
                log=killer,
            )
        # The two finished points survived the kill.
        assert len(TuneStore(store_path)) == 0  # fresh handle, not loaded
        interrupted = TuneStore(store_path)
        assert interrupted.load() == 2

        report = run_tune(
            TINY_SPACE,
            preset="ci",
            strategy="grid",
            store_path=store_path,
            resume=True,
        )
        assert report.reused == 2
        assert report.evaluated == 1  # only the missing point
        # Zero repeated evaluations: every key appears exactly once on disk.
        keys = [
            json.loads(line)["key"]
            for line in store_path.read_text().splitlines()
            if line.strip()
        ]
        assert len(keys) == len(set(keys)) == 3

        again = run_tune(
            TINY_SPACE,
            preset="ci",
            strategy="grid",
            store_path=store_path,
            resume=True,
        )
        assert again.evaluated == 0
        assert again.reused == 3

    def test_existing_store_without_resume_is_refused(self, tmp_path):
        store_path = tmp_path / "s.jsonl"
        run_tune(TINY_SPACE, preset="ci", strategy="grid", store_path=store_path)
        with pytest.raises(TuneError, match="--resume"):
            run_tune(TINY_SPACE, preset="ci", strategy="grid", store_path=store_path)

    def test_random_strategy_is_seed_deterministic(self, tmp_path):
        kwargs = dict(preset="ci", strategy="random", budget=2, seed=7)
        first = run_tune(TINY_SPACE, store_path=tmp_path / "a.jsonl", **kwargs)
        second = run_tune(TINY_SPACE, store_path=tmp_path / "b.jsonl", **kwargs)
        a = sorted(r.key for r in TuneStore(tmp_path / "a.jsonl").results())
        b = sorted(r.key for r in TuneStore(tmp_path / "b.jsonl").results())
        assert first.evaluated == second.evaluated == 2
        assert a == b

    def test_halving_reaches_full_fidelity(self, tmp_path):
        report = run_tune(
            TINY_SPACE,
            preset="ci",
            strategy="halving",
            store_path=tmp_path / "s.jsonl",
        )
        # The frontier is computed at target fidelity, so at least one
        # candidate must have been promoted through every rung.
        assert report.frontier
        target = TUNE_PRESETS["ci"].to_dict()
        assert all(r.fidelity == target for r in report.frontier)

    def test_soc_variants_share_one_pipeline_run(self, tmp_path):
        from repro.harness.runner import SweepRunner

        runner = SweepRunner()
        from repro.harness.tune import TuneEvaluator

        evaluator = TuneEvaluator(runner, seed=1)
        fidelity = TUNE_PRESETS["ci"]
        a = evaluator.evaluate(PipelineSpec(), fidelity)
        b = evaluator.evaluate(PipelineSpec(soc_config="720p30"), fidelity)
        assert runner.cache_misses == 1  # pricing knob reused the vision run
        assert runner.cache_hits == 1
        assert a.energy_per_frame_mj != b.energy_per_frame_mj

    def test_unknown_strategy_and_preset_rejected(self, tmp_path):
        with pytest.raises(TuneError, match="strategy"):
            run_tune(TINY_SPACE, strategy="simulated-annealing")
        with pytest.raises(TuneError, match="preset"):
            run_tune(TINY_SPACE, preset="nightly")


class TestTuneCli:
    def test_tune_subcommand_writes_frontier_artifact(self, tmp_path, capsys):
        frontier_path = tmp_path / "frontier.json"
        code = harness_main(
            [
                "tune",
                "--space",
                "ci",
                "--preset",
                "ci",
                "--budget",
                "4",
                "--store",
                str(tmp_path / "store.jsonl"),
                "--frontier-out",
                str(frontier_path),
            ]
        )
        assert code == 0
        payload = json.loads(frontier_path.read_text())
        assert payload["name"] == "tune"
        assert payload["metadata"]["evaluated"] == 4
        assert payload["tables"][0]["rows"]
        assert "Pareto frontier" in capsys.readouterr().out

    def test_tune_resume_via_cli_reports_zero_evaluations(self, tmp_path, capsys):
        args = [
            "tune",
            "--space",
            "ci",
            "--store",
            str(tmp_path / "store.jsonl"),
            "--frontier-out",
            str(tmp_path / "frontier.json"),
        ]
        assert harness_main(args) == 0
        assert harness_main(args + ["--resume"]) == 0
        capsys.readouterr()
        payload = json.loads((tmp_path / "frontier.json").read_text())
        assert payload["metadata"]["evaluated"] == 0
        assert payload["metadata"]["reused"] == payload["metadata"]["candidates"]

    def test_refusing_a_dirty_store_is_exit_2(self, tmp_path, capsys):
        args = ["tune", "--space", "ci", "--budget", "1", "--store", str(tmp_path / "s.jsonl")]
        assert harness_main(args) == 0
        assert harness_main(args) == 2
        assert "--resume" in capsys.readouterr().err

    def test_list_json_is_machine_readable(self, capsys):
        assert harness_main(["list", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in listing["experiments"]}
        assert "fig10a" in names
        assert "extrapolation_window" in listing["spec_dimensions"]
        assert "ci" in listing["tune"]["spaces"]
        assert "tuned-ci-energy" in listing["spec_presets"]
