"""Tests for the benchmark-dataset builders."""

from __future__ import annotations


from repro.video.attributes import VisualAttribute
from repro.video.datasets import (
    Dataset,
    build_detection_dataset,
    build_otb_like_dataset,
    build_tracking_dataset,
    build_vot_like_dataset,
)


class TestOTBLikeDataset:
    def test_sizes(self):
        dataset = build_otb_like_dataset(num_sequences=6, frames_per_sequence=12)
        assert len(dataset) == 6
        assert dataset.total_frames == 72
        assert all(seq.num_frames == 12 for seq in dataset)

    def test_single_target_per_sequence(self):
        dataset = build_otb_like_dataset(num_sequences=3, frames_per_sequence=10)
        assert all(len(seq.object_ids) == 1 for seq in dataset)

    def test_attribute_coverage(self):
        dataset = build_otb_like_dataset(num_sequences=12, frames_per_sequence=8)
        counts = dataset.attribute_counts()
        covered = {attr for attr, count in counts.items() if count > 0}
        # The twelve-bundle rotation covers every Fig. 12 attribute.
        assert covered == set(VisualAttribute)

    def test_unique_names(self):
        dataset = build_otb_like_dataset(num_sequences=5, frames_per_sequence=8)
        names = [seq.name for seq in dataset]
        assert len(set(names)) == len(names)


class TestVOTLikeDataset:
    def test_every_sequence_is_challenging(self):
        dataset = build_vot_like_dataset(num_sequences=5, frames_per_sequence=8)
        assert all(len(seq.attributes) >= 1 for seq in dataset)

    def test_sizes(self):
        dataset = build_vot_like_dataset(num_sequences=4, frames_per_sequence=10)
        assert len(dataset) == 4
        assert dataset.total_frames == 40


class TestCombinedTrackingDataset:
    def test_combines_both_pools(self):
        dataset = build_tracking_dataset(
            otb_sequences=3, vot_sequences=2, frames_per_sequence=8
        )
        assert len(dataset) == 5
        names = {seq.name for seq in dataset}
        assert any(name.startswith("otb_like") for name in names)
        assert any(name.startswith("vot_like") for name in names)


class TestDetectionDataset:
    def test_multi_object_density(self):
        dataset = build_detection_dataset(
            num_sequences=2, frames_per_sequence=10, objects_per_sequence=6
        )
        for sequence in dataset:
            assert len(sequence.object_ids) == 6
            assert sequence.average_objects_per_frame() > 3.0

    def test_total_frames(self):
        dataset = build_detection_dataset(num_sequences=3, frames_per_sequence=14)
        assert dataset.total_frames == 42


class TestDatasetHelpers:
    def test_sequences_with_attribute(self):
        dataset = build_otb_like_dataset(num_sequences=12, frames_per_sequence=6)
        occluded = dataset.sequences_with(VisualAttribute.OCCLUSION)
        assert occluded
        assert all(VisualAttribute.OCCLUSION in seq.attributes for seq in occluded)

    def test_empty_dataset(self):
        dataset = Dataset(name="empty")
        assert len(dataset) == 0
        assert dataset.total_frames == 0
        assert dataset.sequences_with(VisualAttribute.OCCLUSION) == []
