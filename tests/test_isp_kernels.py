"""Bit-identity property tests for the vectorized/compiled ISP stage kernels.

The oracle hierarchy mirrors the SAD kernels': the scalar references in
:mod:`repro.isp.reference` define the semantics, the vectorized numpy
kernels (the default backend) must match them exactly, and the numba
kernels (:mod:`repro.isp.kernels_numba`, run as plain Python here when the
``[accel]`` extra is absent — the same code the JIT compiles) must match
both.  Every comparison is ``np.array_equal`` — bit-identity, never a
tolerance.

Coverage steers the numpy blend through all three of its internal paths:

* **dominant** — one displacement covers at least half the macroblock grid
  (whole-rectangle view blend + restore);
* **dense** — many distinct displacements but a near-dense valid grid
  (source-only gather through blocked destination views);
* **sparse** — few valid blocks (pooled flat-index gather/scatter);

plus Q8.4 fixed-point frames, fractional float frames, ragged frame edges,
``search_range=0`` fields, non-contiguous output buffers and scratch-pool
reuse across frames.  A pinned end-to-end run asserts the vectorization
never moved the *energy model* (satellite requirement: ``fold_energy_breakdown``
unchanged).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.geometry import BoundingBox
from repro.isp.framebuffer import FixedPointFormat
from repro.isp.kernels import (
    bilinear_demosaic,
    box_sum_3x3,
    motion_compensated_blend,
)
from repro.isp.reference import (
    reference_bilinear_demosaic,
    reference_box_sum_3x3,
    reference_motion_compensated_blend,
    reference_roi_statistics,
)
from repro.motion.kernels import KernelScratch, _edge_pad_pooled
from repro.motion.motion_field import MacroblockGrid, MotionField

#: The denoise stage's default blend parameters.
BLEND = dict(blend_strength=0.5, max_normalised_sad=0.15)

FRAME_KINDS = ("uint8", "q8.4", "float")
FIELD_MODES = ("dominant", "dense", "sparse", "zero")


def make_frame(rng: np.random.Generator, height: int, width: int, kind: str) -> np.ndarray:
    """A float64 frame whose values lie in the requested domain."""
    if kind == "uint8":
        return rng.integers(0, 256, (height, width)).astype(np.float64)
    if kind == "q8.4":
        return np.round(rng.uniform(0.0, 255.0, (height, width)) * 16.0) / 16.0
    return rng.uniform(0.0, 255.0, (height, width))


def make_field(
    rng: np.random.Generator,
    height: int,
    width: int,
    block: int,
    mode: str,
    search_range: int = 3,
) -> MotionField:
    """A motion field crafted to steer the blend down one internal path.

    ``mode`` picks the displacement structure: ``dominant`` makes one
    displacement cover most of the grid, ``dense`` scatters displacements
    over a near-fully-valid grid, ``sparse`` marks most blocks as bad
    matches, and ``zero`` is the ``search_range=0`` degenerate field.
    """
    grid = MacroblockGrid(frame_width=width, frame_height=height, block_size=block)
    if mode == "zero":
        return MotionField.zero(grid, search_range=0)
    rows, cols = grid.rows, grid.cols
    vectors = rng.integers(-search_range, search_range + 1, (rows, cols, 2)).astype(
        np.float64
    )
    max_sad = 255.0 * block * block
    good = max_sad * BLEND["max_normalised_sad"] * 0.5
    bad = max_sad * 0.5
    if mode == "dominant":
        u, v = rng.integers(-search_range, search_range + 1, 2)
        covered = rng.random((rows, cols)) < 0.8
        vectors[covered] = (float(u), float(v))
        valid_fraction = 0.95
    elif mode == "dense":
        valid_fraction = 0.9
    else:  # sparse
        valid_fraction = 0.2
    sad = np.where(rng.random((rows, cols)) < valid_fraction, good, bad)
    return MotionField(vectors, sad, grid, search_range=search_range)


class TestBlendBitIdentity:
    """numpy blend == scalar reference, across all internal paths."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        block=st.sampled_from([4, 8]),
        height=st.integers(12, 44),
        width=st.integers(12, 44),
        mode=st.sampled_from(FIELD_MODES),
        kind=st.sampled_from(FRAME_KINDS),
    )
    def test_matches_reference(self, seed, block, height, width, mode, kind):
        rng = np.random.default_rng(seed)
        current = make_frame(rng, height, width, kind)
        previous = make_frame(rng, height, width, kind)
        field = make_field(rng, height, width, block, mode)
        expected = reference_motion_compensated_blend(
            current, previous, field, **BLEND
        )
        got = motion_compensated_blend(current, previous, field, **BLEND)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("mode", ["dominant", "dense", "sparse"])
    def test_each_path_with_ragged_edges(self, mode):
        """Deterministic per-path coverage on a frame with partial edge blocks."""
        rng = np.random.default_rng(42)
        height, width, block = 43, 38, 8  # 5x4 full grid + ragged strips
        current = make_frame(rng, height, width, "uint8")
        previous = make_frame(rng, height, width, "uint8")
        field = make_field(rng, height, width, block, mode)
        expected = reference_motion_compensated_blend(
            current, previous, field, **BLEND
        )
        got = motion_compensated_blend(current, previous, field, **BLEND)
        assert np.array_equal(got, expected)

    def test_search_range_zero_field(self):
        """A zero field blends every block in place (the dominant (0,0) path)."""
        rng = np.random.default_rng(7)
        current = make_frame(rng, 32, 40, "q8.4")
        previous = make_frame(rng, 32, 40, "q8.4")
        field = make_field(rng, 32, 40, 8, "zero")
        expected = reference_motion_compensated_blend(
            current, previous, field, **BLEND
        )
        got = motion_compensated_blend(current, previous, field, **BLEND)
        assert np.array_equal(got, expected)
        assert np.array_equal(
            got, (1.0 - BLEND["blend_strength"]) * current
            + BLEND["blend_strength"] * previous
        )

    @pytest.mark.parametrize("mode", ["dominant", "dense", "sparse"])
    def test_non_contiguous_out_buffer(self, mode):
        """Every path writes correctly through a strided ``out`` view."""
        rng = np.random.default_rng(11)
        height, width = 40, 44
        current = make_frame(rng, height, width, "uint8")
        previous = make_frame(rng, height, width, "uint8")
        field = make_field(rng, height, width, 4, mode)
        base = np.empty((height, 2 * width), dtype=np.float64)
        out = base[:, ::2]
        assert not out.flags.c_contiguous
        got = motion_compensated_blend(current, previous, field, out=out, **BLEND)
        assert got is out
        expected = reference_motion_compensated_blend(
            current, previous, field, **BLEND
        )
        assert np.array_equal(out, expected)

    def test_scratch_pool_reuse_across_paths(self):
        """One KernelScratch serves successive frames on different paths."""
        rng = np.random.default_rng(23)
        height, width = 36, 36
        pool = KernelScratch()
        out = np.empty((height, width), dtype=np.float64)
        for mode in ("dense", "dominant", "sparse", "dense", "zero"):
            current = make_frame(rng, height, width, "uint8")
            previous = make_frame(rng, height, width, "uint8")
            field = make_field(rng, height, width, 4, mode)
            expected = reference_motion_compensated_blend(
                current, previous, field, **BLEND
            )
            got = motion_compensated_blend(
                current, previous, field, out=out, scratch=pool, **BLEND
            )
            assert np.array_equal(got, expected), mode

    @pytest.mark.parametrize("mode", ["dominant", "dense", "sparse", "zero"])
    def test_uint8_current_frame(self, mode):
        """A raw uint8 ``current`` blends bit-identically to its widening.

        The steady-state denoise stage hands the capture buffer straight to
        the kernel; every read of ``current`` lands in a float64 destination
        and uint8 -> float64 conversion is exact, so skipping the up-front
        full-frame copy must not move a single bit (numpy and numba paths,
        ragged edge blocks included).
        """
        rng = np.random.default_rng(31)
        height, width, block = 43, 38, 8  # ragged bottom/right strips
        current_u8 = rng.integers(0, 256, (height, width), dtype=np.uint8)
        current_f64 = current_u8.astype(np.float64)
        previous = make_frame(rng, height, width, "uint8")
        field = make_field(rng, height, width, block, mode)
        expected = reference_motion_compensated_blend(
            current_f64, previous, field, **BLEND
        )
        got = motion_compensated_blend(current_u8, previous, field, **BLEND)
        assert got.dtype == np.float64
        assert np.array_equal(got, expected)
        got_numba = motion_compensated_blend(
            current_u8, previous, field, backend="numba", **BLEND
        )
        assert np.array_equal(got_numba, expected)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        mode=st.sampled_from(["dominant", "dense", "sparse", "zero"]),
        kind=st.sampled_from(FRAME_KINDS),
    )
    def test_numba_loops_match_reference(self, seed, mode, kind):
        """The numba blend loops (run as plain Python when uncompiled) agree."""
        rng = np.random.default_rng(seed)
        height, width = 24, 28
        current = make_frame(rng, height, width, kind)
        previous = make_frame(rng, height, width, kind)
        field = make_field(rng, height, width, 4, mode)
        expected = reference_motion_compensated_blend(
            current, previous, field, **BLEND
        )
        got = motion_compensated_blend(
            current, previous, field, backend="numba", **BLEND
        )
        assert np.array_equal(got, expected)


class TestBoxSum:
    """SAT fast path and numba loops vs the nine-shift reference."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        height=st.integers(2, 24),
        width=st.integers(2, 24),
        kind=st.sampled_from(FRAME_KINDS),
    )
    def test_matches_reference(self, seed, height, width, kind):
        rng = np.random.default_rng(seed)
        image = make_frame(rng, height, width, kind)
        expected = reference_box_sum_3x3(image)
        assert np.array_equal(box_sum_3x3(image), expected)
        assert np.array_equal(box_sum_3x3(image, backend="numba"), expected)

    def test_integer_dtype_rides_sat(self):
        rng = np.random.default_rng(3)
        image = rng.integers(0, 256, (17, 23)).astype(np.uint8)
        expected = reference_box_sum_3x3(image)
        assert np.array_equal(box_sum_3x3(image), expected)

    def test_out_buffer_reuse(self):
        rng = np.random.default_rng(4)
        out = np.empty((12, 15), dtype=np.float64)
        for kind in FRAME_KINDS:
            image = make_frame(rng, 12, 15, kind)
            got = box_sum_3x3(image, out=out)
            assert got is out
            assert np.array_equal(out, reference_box_sum_3x3(image))


class TestDemosaic:
    """Mask-based bilinear demosaic vs the reference, numpy and numba."""

    @staticmethod
    def rggb_map(height: int, width: int) -> np.ndarray:
        channel_map = np.empty((height, width), dtype=np.int64)
        channel_map[0::2, 0::2] = 0
        channel_map[0::2, 1::2] = 1
        channel_map[1::2, 0::2] = 1
        channel_map[1::2, 1::2] = 2
        return channel_map

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        height=st.integers(4, 20),
        width=st.integers(4, 20),
        kind=st.sampled_from(FRAME_KINDS),
    )
    def test_matches_reference(self, seed, height, width, kind):
        rng = np.random.default_rng(seed)
        bayer = make_frame(rng, height, width, kind)
        channel_map = self.rggb_map(height, width)
        expected = reference_bilinear_demosaic(bayer, channel_map)
        assert np.array_equal(bilinear_demosaic(bayer, channel_map), expected)
        assert np.array_equal(
            bilinear_demosaic(bayer, channel_map, backend="numba"), expected
        )


class TestQuantize:
    """The magic-constant in-range quantizer vs the mul/rint/clip/div path."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        frac_bits=st.sampled_from([0, 2, 4, 6]),
        int_bits=st.sampled_from([8, 10]),
    )
    def test_assume_in_range_matches_general(self, seed, frac_bits, int_bits):
        fmt = FixedPointFormat(int_bits=int_bits, frac_bits=frac_bits)
        rng = np.random.default_rng(seed)
        step = 1.0 / fmt.scale
        values = np.concatenate(
            [
                rng.uniform(0.0, fmt.max_value, 2048),
                # Exact half-step ties: the round-to-nearest-even cases.
                (rng.integers(0, fmt.scale * (1 << int_bits) - 1, 256) + 0.5) * step,
                np.array([0.0, fmt.max_value]),
            ]
        )
        expected = fmt.quantize(values)
        assert np.array_equal(fmt.quantize(values, assume_in_range=True), expected)
        out = np.empty_like(values)
        got = fmt.quantize(values, out=out, assume_in_range=True)
        assert got is out
        assert np.array_equal(out, expected)
        aliased = values.copy()
        fmt.quantize(aliased, out=aliased, assume_in_range=True)
        assert np.array_equal(aliased, expected)


class TestEdgePadPooled:
    """Pooled edge replication == ``np.pad(mode="edge")``, bit for bit."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        pad=st.integers(1, 7),
        height=st.integers(2, 20),
        width=st.integers(2, 20),
        dtype=st.sampled_from(["uint8", "float64"]),
    )
    def test_matches_np_pad(self, seed, pad, height, width, dtype):
        rng = np.random.default_rng(seed)
        frame = rng.integers(0, 256, (height, width)).astype(dtype)
        pool = KernelScratch()
        padded = _edge_pad_pooled(frame, pad, pool)
        assert np.array_equal(padded, np.pad(frame, pad, mode="edge"))
        # The pool hands back the same pages for a same-geometry frame.
        second = rng.integers(0, 256, (height, width)).astype(dtype)
        repadded = _edge_pad_pooled(second, pad, pool)
        assert repadded is padded
        assert np.array_equal(repadded, np.pad(second, pad, mode="edge"))


class TestRoiStatisticsBatch:
    """The extrapolator's batch ROI query == one-at-a-time queries."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_matches_individual_queries(self, seed):
        rng = np.random.default_rng(seed)
        height, width, block = 64, 96, 8
        field = make_field(rng, height, width, block, "dense")
        fresh = MotionField(
            field.vectors.copy(), field.sad.copy(), field.grid,
            search_range=field.search_range,
        )
        rois = [
            BoundingBox(
                x=float(rng.uniform(-10, width)),
                y=float(rng.uniform(-10, height)),
                width=float(rng.uniform(1, 50)),
                height=float(rng.uniform(1, 50)),
            )
            for _ in range(6)
        ]
        batch = field.roi_statistics_batch(rois)
        expected = reference_roi_statistics(fresh, rois)
        assert len(batch) == len(expected)
        for (motion, confidence), (ref_motion, ref_confidence) in zip(batch, expected):
            assert motion.u == ref_motion.u
            assert motion.v == ref_motion.v
            assert confidence == ref_confidence

    def test_confidence_is_memoized(self):
        rng = np.random.default_rng(5)
        field = make_field(rng, 32, 32, 8, "dense")
        first = field.confidence()
        assert field.confidence() is first


class TestEnergyModelUnchanged:
    """Satellite guard: the perf work must not move the energy model.

    Runs a pinned deterministic session (192x108, 24 frames, seed 7, EW=4,
    mdnet backend) and folds its telemetry through the measured-energy path.
    Every value below was captured on the pre-optimization build and
    verified identical on the optimized one — any future kernel change that
    perturbs frames, motion fields, ROI trajectories or the op accounting
    shows up here as an energy drift.
    """

    def test_fold_energy_breakdown_pinned(self):
        from repro.core.backends import tracking_backend_for
        from repro.core.spec import PipelineSpec
        from repro.harness.experiments import fold_energy_breakdown
        from repro.nn.models import build_yolo_v2
        from repro.soc.soc import VisionSoC
        from repro.video.synthetic import SequenceConfig, SequenceGenerator

        sequence = SequenceGenerator(
            SequenceConfig(
                name="pinned",
                frame_width=192,
                frame_height=108,
                num_frames=24,
                seed=7,
            )
        ).generate()
        spec = PipelineSpec(extrapolation_window=4)
        pipeline = spec.build(tracking_backend_for("mdnet", seed=7))
        session = pipeline.open_session(source=sequence)
        for _, frame in sequence.iter_frames():
            session.submit(frame)
        telemetry = session.take_telemetry()
        session.finish()

        kinds = "".join(
            "E" if record.kind.name == "EXTRAPOLATION" else "I"
            for record in telemetry
        )
        assert kinds == "IEEEIEEEIEEEIEEEIEEEIEEE"
        assert telemetry[0].motion_ops == 0.0
        assert all(record.motion_ops == 537600.0 for record in telemetry[1:])
        pinned_extrapolation_ops = [
            0.0,
            1946.6978422358493,
            1967.0792339554764,
            1967.1261866003738,
            1967.1149817273526,
            1987.6088307198233,
        ]
        for record, pinned in zip(telemetry, pinned_extrapolation_ops):
            assert record.extrapolation_ops == pytest.approx(pinned, rel=1e-9)

        breakdown = fold_energy_breakdown(
            VisionSoC(),
            build_yolo_v2(),
            [SimpleNamespace(telemetry=telemetry)],
            label="pinned",
        )
        assert breakdown.num_frames == 24
        assert breakdown.inference_rate == pytest.approx(0.25)
        assert breakdown.total_traffic_bytes == 4297709094
        assert breakdown.total_ops == pytest.approx(313462144800.0, rel=1e-9)
        assert breakdown.frontend_energy_j == pytest.approx(0.13473, rel=1e-9)
        assert breakdown.memory_energy_j == pytest.approx(
            0.24939690923000002, rel=1e-9
        )
        assert breakdown.backend_energy_j == pytest.approx(
            0.207568296064, rel=1e-9
        )
        assert breakdown.cpu_energy_j == 0.0
