"""Equivalence tests for the exhaustive-search candidate-scan policies.

The spiral and pruned policies must return *bit-identical* motion fields to
the full scan and to the scalar reference oracle — same argmin, same SAD —
because their pruning rules only skip candidates that provably cannot
strictly improve a block's best SAD.  These property tests drive all three
policies over random integer, fixed-point and fractional-float frames,
including the ``search_range=0`` degenerate window and frames that need
edge padding (sizes that are not multiples of the block size).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.experiments import search_policy_comparison
from repro.motion.block_matching import (
    BlockMatcher,
    BlockMatchingConfig,
    SearchPolicy,
    SearchStrategy,
)
from repro.motion.reference import scalar_estimate


def _policy_fields(current, previous, block_size, search_range):
    """Run every policy and return {policy: (matcher, field)}."""
    out = {}
    for policy in SearchPolicy:
        matcher = BlockMatcher(
            BlockMatchingConfig(
                block_size=block_size,
                search_range=search_range,
                strategy=SearchStrategy.EXHAUSTIVE,
                search_policy=policy,
            )
        )
        out[policy] = (matcher, matcher.estimate(current, previous))
    return out


def _assert_all_policies_match_oracle(current, previous, block_size, search_range):
    oracle = scalar_estimate(
        current, previous, block_size=block_size, search_range=search_range, three_step=False
    )
    for policy, (_matcher, field) in _policy_fields(
        current, previous, block_size, search_range
    ).items():
        assert np.array_equal(field.vectors, oracle.vectors), policy
        assert np.array_equal(field.sad, oracle.sad), policy


class TestPolicyEquivalence:
    """Property tests: every policy equals the full scan and the oracle."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        block_size=st.sampled_from([3, 4, 8, 16]),
        search_range=st.sampled_from([0, 1, 2, 5, 7]),
        height=st.integers(8, 48),
        width=st.integers(8, 48),
    )
    def test_integer_frames(self, seed, block_size, search_range, height, width):
        rng = np.random.default_rng(seed)
        current = rng.integers(0, 256, (height, width)).astype(np.uint8)
        previous = rng.integers(0, 256, (height, width)).astype(np.uint8)
        _assert_all_policies_match_oracle(current, previous, block_size, search_range)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        block_size=st.sampled_from([4, 8, 16]),
        search_range=st.sampled_from([0, 2, 7]),
        height=st.integers(8, 48),
        width=st.integers(8, 48),
    )
    def test_fixed_point_frames(self, seed, block_size, search_range, height, width):
        """Q8.4-lattice floats ride the exact integer kernel, all policies."""
        rng = np.random.default_rng(seed)
        current = np.round(rng.uniform(0, 255, (height, width)) * 16) / 16
        previous = np.round(rng.uniform(0, 255, (height, width)) * 16) / 16
        _assert_all_policies_match_oracle(current, previous, block_size, search_range)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        block_size=st.sampled_from([4, 8, 16]),
        search_range=st.sampled_from([0, 2, 7]),
        height=st.integers(8, 48),
        width=st.integers(8, 48),
    )
    def test_fractional_float_frames(self, seed, block_size, search_range, height, width):
        """Genuinely fractional frames: the float gather path, all policies."""
        rng = np.random.default_rng(seed)
        current = rng.uniform(0, 255, (height, width))
        previous = rng.uniform(0, 255, (height, width))
        _assert_all_policies_match_oracle(current, previous, block_size, search_range)

    def test_zero_search_range(self):
        """d = 0 collapses the window to the co-located block for every policy."""
        rng = np.random.default_rng(3)
        current = rng.integers(0, 256, (40, 56)).astype(np.uint8)
        previous = rng.integers(0, 256, (40, 56)).astype(np.uint8)
        _assert_all_policies_match_oracle(current, previous, 8, 0)
        for _matcher, field in _policy_fields(current, previous, 8, 0).values():
            assert field.max_magnitude() == 0.0

    def test_edge_padded_blocks(self):
        """Frame sizes that are not block multiples exercise the edge padding."""
        rng = np.random.default_rng(4)
        for height, width in [(50, 70), (33, 47), (17, 90)]:
            current = rng.integers(0, 256, (height, width)).astype(np.uint8)
            previous = rng.integers(0, 256, (height, width)).astype(np.uint8)
            _assert_all_policies_match_oracle(current, previous, 16, 7)

    def test_flat_frames_keep_zero_motion_tiebreak(self):
        """Ties (flat content) must break identically: smallest motion wins."""
        flat = np.full((48, 64), 128, dtype=np.uint8)
        fields = _policy_fields(flat, flat, 16, 7)
        for _matcher, field in fields.values():
            assert field.max_magnitude() == 0.0
            assert np.all(field.sad == 0.0)
        # The spiral early-exit fires after the seeding (0, 0) evaluation:
        # all 224 remaining offsets are skipped, and the accounting says so.
        # The histogram policy pins (0, 0) first too, so it exits the same way.
        for policy in (SearchPolicy.SPIRAL, SearchPolicy.PRUNED, SearchPolicy.HISTOGRAM):
            stats = fields[policy][0].last_search_stats
            assert stats.candidates_evaluated == stats.candidates_total // 225
            assert stats.offsets_skipped == 224


class TestPolicyWorkAccounting:
    def test_pruning_reduces_candidate_evaluations(self):
        """On matchable content the non-full policies skip real work."""
        rng = np.random.default_rng(5)
        coarse = rng.uniform(0, 255, (16, 20))
        canvas = np.kron(coarse, np.ones((8, 8)))
        previous = canvas[: 96, : 128].astype(np.uint8)
        current = canvas[2 : 98, 3 : 131].astype(np.uint8)
        fields = _policy_fields(current, previous, 16, 7)
        full_stats = fields[SearchPolicy.FULL][0].last_search_stats
        spiral_stats = fields[SearchPolicy.SPIRAL][0].last_search_stats
        pruned_stats = fields[SearchPolicy.PRUNED][0].last_search_stats
        assert full_stats.candidates_evaluated == full_stats.candidates_total
        assert spiral_stats.candidates_evaluated < full_stats.candidates_total
        assert pruned_stats.candidates_evaluated <= spiral_stats.candidates_evaluated
        assert pruned_stats.lower_bound_checks > 0

    def test_full_policy_operation_count_matches_analytical(self):
        rng = np.random.default_rng(6)
        frame = rng.integers(0, 256, (64, 96)).astype(np.uint8)
        config = BlockMatchingConfig(
            strategy=SearchStrategy.EXHAUSTIVE, search_policy=SearchPolicy.FULL
        )
        matcher = BlockMatcher(config)
        matcher.estimate(frame, frame)
        expected = (64 // 16) * (96 // 16) * config.ops_per_macroblock
        assert matcher.last_operation_count == expected

    def test_search_policy_accepts_strings(self):
        config = BlockMatchingConfig(search_policy="spiral")
        assert config.search_policy is SearchPolicy.SPIRAL
        with pytest.raises(ValueError):
            BlockMatchingConfig(search_policy="bogus")

    def test_tss_ignores_policy_and_clears_stats(self):
        rng = np.random.default_rng(7)
        frame = rng.integers(0, 256, (48, 48)).astype(np.uint8)
        matcher = BlockMatcher(
            BlockMatchingConfig(strategy=SearchStrategy.THREE_STEP)
        )
        matcher.estimate(frame, frame)
        assert matcher.last_search_stats is None


class TestSearchPolicyComparison:
    """The fig11b helper artifact: deterministic, identical, cheaper."""

    def test_rows_report_identical_and_cheaper_policies(self):
        rows = search_policy_comparison(height=96, width=128)
        by_policy = {
            policy: (fraction, ops, identical, backend)
            for policy, fraction, ops, identical, backend in rows
        }
        assert set(by_policy) == {"full", "spiral", "pruned", "histogram"}
        assert all(identical for _f, _o, identical, _b in by_policy.values())
        # The numba backend was not requested, so numpy must have run.
        assert all(backend == "numpy" for _f, _o, _i, backend in by_policy.values())
        assert by_policy["full"][0] == 1.0
        assert by_policy["pruned"][1] < by_policy["full"][1]
        assert by_policy["spiral"][1] < by_policy["full"][1]
        assert by_policy["histogram"][1] < by_policy["full"][1]
