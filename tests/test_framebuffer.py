"""Tests for the DRAM frame buffer and its traffic accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import MotionVector
from repro.isp.framebuffer import FrameBuffer, FrameBufferEntry, PIXEL_BYTES_PER_PIXEL
from repro.motion.motion_field import MacroblockGrid, MotionField


def _entry(frame_index: int = 0, with_motion: bool = True) -> FrameBufferEntry:
    pixels = np.zeros((48, 64))
    field = None
    if with_motion:
        field = MotionField.uniform(MacroblockGrid(64, 48, 16), MotionVector(1.0, 0.0))
    return FrameBufferEntry(frame_index=frame_index, pixels=pixels, motion_field=field)


class TestFrameBufferEntry:
    def test_pixel_bytes(self):
        entry = _entry()
        assert entry.pixel_bytes == 48 * 64 * PIXEL_BYTES_PER_PIXEL

    def test_motion_metadata_bytes(self):
        with_motion = _entry(with_motion=True)
        without_motion = _entry(with_motion=False)
        assert with_motion.motion_metadata_bytes == 24
        assert without_motion.motion_metadata_bytes == 0
        assert with_motion.has_motion_vectors
        assert not without_motion.has_motion_vectors

    def test_metadata_is_small_fraction_of_pixels(self):
        """The paper's point: MV metadata is tiny next to the pixel data."""
        entry = _entry()
        assert entry.motion_metadata_bytes < 0.01 * entry.pixel_bytes

    def test_total_bytes(self):
        entry = _entry()
        assert entry.total_bytes == (
            entry.pixel_bytes + entry.baseline_metadata_bytes + entry.motion_metadata_bytes
        )


class TestFrameBuffer:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            FrameBuffer(depth=0)

    def test_push_and_latest(self):
        buffer = FrameBuffer(depth=2)
        buffer.push(_entry(0))
        buffer.push(_entry(1))
        assert buffer.latest().frame_index == 1
        assert len(buffer) == 2

    def test_ring_evicts_oldest(self):
        buffer = FrameBuffer(depth=2)
        for index in range(3):
            buffer.push(_entry(index))
        assert len(buffer) == 2
        with pytest.raises(LookupError):
            buffer.get(0)
        assert buffer.get(2).frame_index == 2

    def test_empty_lookup_errors(self):
        buffer = FrameBuffer()
        with pytest.raises(LookupError):
            buffer.latest()

    def test_write_traffic_accumulates(self):
        buffer = FrameBuffer()
        entry = _entry(0)
        buffer.push(entry)
        buffer.push(_entry(1))
        assert buffer.bytes_written == 2 * entry.total_bytes

    def test_read_traffic_differs_by_section(self):
        buffer = FrameBuffer()
        entry = _entry(0)
        buffer.push(entry)
        buffer.read_pixels(0)
        pixel_traffic = buffer.bytes_read
        buffer.read_motion_metadata(0)
        metadata_traffic = buffer.bytes_read - pixel_traffic
        assert pixel_traffic == entry.pixel_bytes
        assert metadata_traffic == entry.motion_metadata_bytes
        assert metadata_traffic < pixel_traffic

    def test_reset_traffic_counters(self):
        buffer = FrameBuffer()
        buffer.push(_entry(0))
        buffer.read_pixels(0)
        buffer.reset_traffic_counters()
        assert buffer.bytes_written == 0
        assert buffer.bytes_read == 0
