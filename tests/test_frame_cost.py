"""Tests for the per-frame SoC costing core (FrameCost / CostMeter).

The central property: folding per-frame events through a
:class:`~repro.soc.frame_cost.CostMeter` reproduces the closed-form
``evaluate_constant_ew`` breakdown exactly, across EW values and
extrapolation hosts — the analytic and measured paths share one costing
core by construction, and these tests pin that down.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PipelineSpec, tracking_backend_for
from repro.core.types import FrameKind, FrameTelemetry
from repro.nn.models import build_mdnet, build_yolo_v2
from repro.soc import CostMeter, VisionSoC
from repro.video.datasets import build_tracking_dataset


@pytest.fixture(scope="module")
def soc():
    return VisionSoC()


@pytest.fixture(scope="module")
def mdnet():
    return build_mdnet()


@pytest.fixture(scope="module")
def yolo():
    return build_yolo_v2()


def constant_ew_events(extrapolation_window: int, num_frames: int, rois: int):
    """The per-frame event stream of a constant-EW run: I, E, E, ..., I, ..."""
    for index in range(num_frames):
        kind = (
            FrameKind.INFERENCE
            if index % extrapolation_window == 0
            else FrameKind.EXTRAPOLATION
        )
        yield FrameTelemetry(frame_index=index, kind=kind, rois=rois)


class TestFoldReproducesClosedForm:
    """Satellite: per-frame fold == closed-form constant-EW breakdown."""

    @settings(max_examples=60, deadline=None)
    @given(
        extrapolation_window=st.integers(min_value=1, max_value=48),
        num_frames=st.integers(min_value=1, max_value=400),
        rois=st.integers(min_value=0, max_value=10),
        on_cpu=st.booleans(),
    )
    def test_event_fold_matches_evaluate_constant_ew(
        self, soc, mdnet, extrapolation_window, num_frames, rois, on_cpu
    ):
        analytic = soc.evaluate_constant_ew(
            mdnet,
            extrapolation_window,
            num_frames=num_frames,
            rois_per_frame=float(rois),
            extrapolation_on_cpu=on_cpu,
        )
        meter = soc.open_meter(mdnet, extrapolation_on_cpu=on_cpu)
        for event in constant_ew_events(extrapolation_window, num_frames, rois):
            meter.record(event)
        measured = meter.breakdown()

        assert measured.num_frames == analytic.num_frames
        assert measured.inference_rate == pytest.approx(analytic.inference_rate)
        assert measured.fps == pytest.approx(analytic.fps, rel=1e-9)
        assert measured.wall_time_s == pytest.approx(analytic.wall_time_s, rel=1e-9)
        assert measured.frontend_energy_j == pytest.approx(
            analytic.frontend_energy_j, rel=1e-9
        )
        assert measured.memory_energy_j == pytest.approx(
            analytic.memory_energy_j, rel=1e-9
        )
        assert measured.backend_energy_j == pytest.approx(
            analytic.backend_energy_j, rel=1e-9
        )
        assert measured.cpu_energy_j == pytest.approx(
            analytic.cpu_energy_j, rel=1e-9, abs=1e-15
        )
        assert measured.total_traffic_bytes == analytic.total_traffic_bytes
        assert measured.total_ops == pytest.approx(analytic.total_ops, rel=1e-9)
        assert measured.total_energy_j == pytest.approx(
            analytic.total_energy_j, rel=1e-9
        )

    @pytest.mark.parametrize("extrapolation_window", [1, 2, 4, 8])
    def test_live_pipeline_telemetry_matches_analytic_model(
        self, soc, mdnet, extrapolation_window
    ):
        """Acceptance: measured constant-EW energy within 1% of analytic.

        Folds the telemetry of an actual pipeline run (true per-frame I/E
        decisions and ROI counts) at the nominal capture setting and
        compares against the closed form for the same frame count.
        """
        dataset = build_tracking_dataset(
            otb_sequences=2, vot_sequences=0, frames_per_sequence=24
        )
        pipeline = PipelineSpec(extrapolation_window=extrapolation_window).build(
            tracking_backend_for("mdnet", seed=1)
        )
        results = pipeline.run_dataset(dataset)
        meter = soc.open_meter(mdnet, assume_nominal_capture=True)
        frames = 0
        for result in results:
            assert len(result.telemetry) == len(result.frames)
            frames += meter.record_all(result.telemetry)
        measured = meter.breakdown("measured")
        analytic = soc.evaluate_constant_ew(mdnet, extrapolation_window, num_frames=frames)
        assert measured.energy_per_frame_j == pytest.approx(
            analytic.energy_per_frame_j, rel=0.01
        )
        assert measured.fps == pytest.approx(analytic.fps, rel=0.01)
        assert measured.traffic_per_frame_bytes == pytest.approx(
            analytic.traffic_per_frame_bytes, rel=0.01
        )


class TestPricing:
    def test_empty_scene_e_frame_has_no_mc_cost(self, soc, mdnet):
        meter = soc.open_meter(mdnet)
        cost = meter.price(
            FrameTelemetry(frame_index=1, kind=FrameKind.EXTRAPOLATION, rois=0)
        )
        assert cost.latency_s == 0.0
        assert cost.mc_busy_s == 0.0
        assert cost.ops == 0.0
        # Only the frame buffer + MV metadata traffic remains (the metadata
        # read still happens; there is just nothing to write back).
        tracked = meter.price(
            FrameTelemetry(frame_index=1, kind=FrameKind.EXTRAPOLATION, rois=3)
        )
        assert tracked.traffic_bytes - cost.traffic_bytes == 3 * 16

    def test_empty_scene_does_not_wake_the_cpu(self, soc, mdnet):
        meter = soc.open_meter(mdnet, extrapolation_on_cpu=True)
        idle = meter.price(
            FrameTelemetry(frame_index=1, kind=FrameKind.EXTRAPOLATION, rois=0)
        )
        busy = meter.price(
            FrameTelemetry(frame_index=1, kind=FrameKind.EXTRAPOLATION, rois=1)
        )
        assert idle.cpu_energy_j == 0.0
        assert idle.latency_s == 0.0
        assert busy.cpu_energy_j > 0.0

    def test_batched_inference_amortises_weight_traffic(self, soc, yolo):
        meter = soc.open_meter(yolo)
        event = FrameTelemetry(frame_index=0, kind=FrameKind.INFERENCE)
        single = meter.price(event, batch_size=1)
        batched = meter.price(event, batch_size=4)
        saved = single.traffic_bytes - batched.traffic_bytes
        assert saved == pytest.approx(yolo.weight_bytes * (1 - 1 / 4), rel=1e-6)
        # Compute, latency and ops are per-frame regardless of batching.
        assert batched.latency_s == single.latency_s
        assert batched.ops == single.ops

    def test_pixels_scale_frontend_traffic(self, soc, mdnet):
        meter = soc.open_meter(mdnet)
        nominal = meter.price(FrameTelemetry(frame_index=0, kind=FrameKind.INFERENCE))
        small = meter.price(
            FrameTelemetry(frame_index=0, kind=FrameKind.INFERENCE, pixels=192 * 108)
        )
        assert small.traffic_bytes < nominal.traffic_bytes
        # assume_nominal_capture overrides measured pixels.
        nominal_meter = soc.open_meter(mdnet, assume_nominal_capture=True)
        assert (
            nominal_meter.price(
                FrameTelemetry(frame_index=0, kind=FrameKind.INFERENCE, pixels=192 * 108)
            ).traffic_bytes
            == nominal.traffic_bytes
        )

    def test_price_is_pure_and_record_accumulates(self, soc, mdnet):
        meter = soc.open_meter(mdnet)
        event = FrameTelemetry(frame_index=0, kind=FrameKind.INFERENCE)
        meter.price(event)
        assert meter.frames == 0
        meter.record(event, count=5)
        assert meter.frames == 5
        assert meter.inference_frames == 5
        with pytest.raises(ValueError):
            meter.record(event, count=-1)

    def test_breakdown_requires_frames(self, soc, mdnet):
        with pytest.raises(ValueError, match="no frames"):
            soc.open_meter(mdnet).breakdown()

    def test_breakdown_is_non_destructive(self, soc, mdnet):
        meter = soc.open_meter(mdnet)
        meter.record(FrameTelemetry(frame_index=0, kind=FrameKind.INFERENCE))
        first = meter.breakdown()
        meter.record(
            FrameTelemetry(frame_index=1, kind=FrameKind.EXTRAPOLATION, rois=1)
        )
        second = meter.breakdown()
        assert first.num_frames == 1
        assert second.num_frames == 2

    def test_meter_label_defaults_to_network_name(self, soc, mdnet):
        assert CostMeter(soc, mdnet).label == mdnet.name


class TestQueueingEstimate:
    """The M/D/1 latency view layered on the wall-clock rule."""

    def test_capture_bound_stream_has_finite_wait(self, soc, mdnet):
        meter = soc.open_meter(mdnet)
        # Cheap E-frames: backend demand far below the capture period.
        for event in constant_ew_events(8, 64, rois=1):
            meter.record(event)
        estimate = meter.queueing_estimate()
        assert 0.0 < estimate.utilization < 1.0
        assert 0.0 < estimate.mean_wait_s < float("inf")
        assert estimate.mean_latency_s == pytest.approx(
            estimate.mean_wait_s + estimate.service_time_s
        )

    def test_compute_bound_stream_has_unbounded_wait(self, soc, yolo):
        meter = soc.open_meter(yolo)
        # Every frame a heavyweight inference: compute-bound (wall ==
        # backend time, utilisation pinned at 1).
        for event in constant_ew_events(1, 16, rois=1):
            meter.record(event)
        estimate = meter.queueing_estimate()
        assert estimate.utilization == pytest.approx(1.0)
        assert estimate.mean_wait_s == float("inf")

    def test_requires_frames(self, soc, mdnet):
        with pytest.raises(ValueError, match="nothing to estimate"):
            soc.open_meter(mdnet).queueing_estimate()


class TestSharedSoCPool:
    """Exact shared-static-power aggregates across concurrent streams."""

    def _fill(self, meter, extrapolation_window=4, num_frames=32):
        for event in constant_ew_events(extrapolation_window, num_frames, rois=1):
            meter.record(event)

    def test_single_stream_aggregate_equals_its_breakdown(self, soc, mdnet):
        pool = soc.open_pool()
        meter = pool.open_meter(mdnet)
        self._fill(meter)
        aggregate = pool.aggregate()
        alone = meter.breakdown()
        assert aggregate.total_energy_j == pytest.approx(alone.total_energy_j)
        assert aggregate.num_frames == alone.num_frames
        assert aggregate.wall_time_s == pytest.approx(alone.wall_time_s)

    def test_multi_stream_aggregate_below_per_stream_sum(self, soc, mdnet):
        pool = soc.open_pool()
        meters = [pool.open_meter(mdnet, label=f"cam{i}") for i in range(4)]
        for meter in meters:
            self._fill(meter)
        aggregate = pool.aggregate()
        upper_bound = sum(meter.breakdown().total_energy_j for meter in meters)
        assert aggregate.total_energy_j < upper_bound
        # The gap is exactly the (N-1) extra copies of static power the
        # per-stream sum double-counts; both sides share identical dynamic
        # terms, so the exact figure is bounded below by them too.
        assert aggregate.total_energy_j > upper_bound / len(meters)

    def test_heterogeneous_stream_socs_price_dynamically_per_stream(self, mdnet):
        from repro.soc.config import resolve_soc_config

        pool = VisionSoC().open_pool()
        slow = pool.open_meter(mdnet, soc=VisionSoC(resolve_soc_config("1080p30")))
        fast = pool.open_meter(mdnet, soc=VisionSoC(resolve_soc_config("1080p60")))
        self._fill(slow)
        self._fill(fast)
        # Same frames, but the 30 FPS camera's capture-bound wall is twice
        # as long, so its frontend term dominates.
        assert slow.breakdown().frontend_energy_j > fast.breakdown().frontend_energy_j
        aggregate = pool.aggregate()
        upper_bound = sum(m.breakdown().total_energy_j for m in (slow, fast))
        assert aggregate.total_energy_j < upper_bound

    def test_pool_queueing_can_overload_past_unity(self, soc, yolo):
        pool = soc.open_pool()
        for index in range(3):
            meter = pool.open_meter(yolo, label=f"cam{index}")
            self._fill(meter, extrapolation_window=1, num_frames=16)
        estimate = pool.queueing_estimate()
        # Three compute-bound streams genuinely overload one shared backend.
        assert estimate.utilization > 1.0
        assert estimate.mean_wait_s == float("inf")

    def test_empty_pool_refuses_aggregates(self, soc, mdnet):
        pool = soc.open_pool()
        pool.open_meter(mdnet)
        assert pool.frames == 0
        with pytest.raises(ValueError, match="nothing to aggregate"):
            pool.aggregate()
        with pytest.raises(ValueError, match="nothing to estimate"):
            pool.queueing_estimate()
