"""Stage profiler: telemetry stage clocks, aggregation, and the profile table.

The session stamps per-stage wall-clock fields (``isp_s``,
``motion_search_s``, ``denoise_blend_s``, ``extrapolation_s``,
``inference_s``, ``total_s``) onto every :class:`FrameTelemetry` record;
:mod:`repro.core.profiler` folds them into per-kind breakdowns for the
``profile`` subcommand, the pipeline bench and the multiplexer's per-stream
stats.  These tests pin the plumbing: fields populated for the right frame
kinds, the decomposition accounting for the whole frame clock, degraded
handling of records without the fields, and the rendered table/CLI output.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core.backends import tracking_backend_for
from repro.core.profiler import STAGE_NAMES, StageProfiler, stage_seconds
from repro.core.spec import PipelineSpec
from repro.core.streaming import StreamMultiplexer
from repro.core.types import FrameKind
from repro.harness.pipeline_perf import (
    format_profile_table,
    make_sequence,
    profile_report,
)

TINY = {"tiny": (96, 128)}


def run_tiny_session(num_frames: int = 9, window: int = 4):
    spec = PipelineSpec(extrapolation_window=window)
    pipeline = spec.build(tracking_backend_for("mdnet"))
    sequence = make_sequence(96, 128, num_frames, seed=0)
    session = pipeline.open_session(source=sequence)
    for _, frame in sequence.iter_frames():
        session.submit(frame)
    telemetry = session.take_telemetry()
    session.finish()
    return telemetry


class TestTelemetryStageClocks:
    def test_stage_fields_populated_per_kind(self):
        telemetry = run_tiny_session()
        assert len(telemetry) == 9
        for index, record in enumerate(telemetry):
            assert record.total_s > 0.0
            assert record.isp_s > 0.0
            if index > 0:
                # Every frame after the first runs motion search + blend.
                assert record.motion_search_s > 0.0
                assert record.denoise_blend_s > 0.0
            if record.kind is FrameKind.INFERENCE:
                assert record.inference_s > 0.0
            else:
                assert record.extrapolation_s > 0.0
                assert record.inference_s == 0.0

    def test_stage_seconds_accounts_for_the_whole_frame(self):
        for record in run_tiny_session():
            seconds = stage_seconds(record)
            assert set(seconds) == set(STAGE_NAMES)
            assert all(value >= 0.0 for value in seconds.values())
            # The sub-stage clocks nest inside isp_s / total_s, so the
            # decomposition re-sums to the whole-frame clock.
            assert sum(seconds.values()) == pytest.approx(
                record.total_s, rel=1e-6, abs=1e-9
            )
            assert (
                seconds["motion_search"] + seconds["denoise_blend"]
                <= record.isp_s + 1e-9
            )

    def test_records_without_stage_fields_read_as_zero(self):
        """Telemetry from older emitters degrades to zero stage times."""
        legacy = SimpleNamespace(kind=FrameKind.INFERENCE)
        seconds = stage_seconds(legacy)
        assert set(seconds) == set(STAGE_NAMES)
        assert all(value == 0.0 for value in seconds.values())
        profiler = StageProfiler()
        profiler.observe(legacy)
        assert profiler.summary("I").frames == 1


class TestStageProfiler:
    def test_observe_splits_by_kind(self):
        telemetry = run_tiny_session(num_frames=9, window=4)
        profiler = StageProfiler()
        for record in telemetry:
            profiler.observe(record)
        i_frames = sum(
            1 for r in telemetry if r.kind is not FrameKind.EXTRAPOLATION
        )
        assert profiler.summary("I").frames == i_frames
        assert profiler.summary("E").frames == len(telemetry) - i_frames
        assert profiler.frames == len(telemetry)

    def test_rows_shares_sum_to_one(self):
        profiler = StageProfiler()
        for record in run_tiny_session():
            profiler.observe(record)
        for kind in ("I", "E"):
            rows = profiler.summary(kind).rows()
            assert rows
            assert sum(row["share"] for row in rows) == pytest.approx(1.0, rel=1e-6)
            names = [row["stage"] for row in rows]
            assert names == [n for n in STAGE_NAMES if n in names]  # display order

    def test_merge_accumulates(self):
        telemetry = run_tiny_session()
        one = StageProfiler()
        two = StageProfiler()
        for record in telemetry:
            one.observe(record)
            two.observe(record)
        one.merge(two)
        assert one.frames == 2 * len(telemetry)
        doubled = one.mean_seconds()
        single = two.mean_seconds()
        for name in STAGE_NAMES:
            assert doubled[name] == pytest.approx(single[name])


class TestProfileReport:
    def test_report_and_table(self):
        report = profile_report(
            PipelineSpec(), resolutions=TINY, num_frames=8, seed=0
        )
        assert report["sections"]
        kinds = {(s["resolution"], s["schedule"], s["kind"]) for s in report["sections"]}
        assert ("tiny", "e_heavy", "E") in kinds
        assert ("tiny", "i_heavy", "I") in kinds
        table = format_profile_table(report)
        assert "tiny e_heavy (EW=8) E-frames" in table
        assert "motion_search" in table
        assert "ms/frame" in table
        for section in report["sections"]:
            for row in section["stages"]:
                assert row["mean_s"] >= 0.0

    def test_cli_profile_subcommand(self, capsys):
        """``python -m repro.harness profile`` prints the breakdown table."""
        from repro.harness import cli
        from repro.harness import pipeline_perf

        original = pipeline_perf.profile_report

        def tiny_report(spec, resolutions=None, **kwargs):
            return original(spec, resolutions=TINY, num_frames=6, seed=0)

        pipeline_perf.profile_report = tiny_report
        try:
            exit_code = cli.main(["profile", "--frames", "6"])
        finally:
            pipeline_perf.profile_report = original
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "motion_search" in out
        assert "denoise_blend" in out
        assert "fps" in out


class TestStreamStatsCarryThrough:
    def test_multiplexer_accumulates_stage_seconds(self):
        pipeline = PipelineSpec(extrapolation_window=4).build(
            tracking_backend_for("mdnet")
        )
        mux = StreamMultiplexer(pipeline)
        sequence = make_sequence(96, 128, 8, seed=0)
        stream_id = mux.add_stream(sequence)
        mux.feed_sequence(stream_id, sequence)
        mux.drain()
        mux.finish()
        stats = mux.stats_for(stream_id)
        assert set(stats.stage_s) == set(STAGE_NAMES)
        assert stats.stage_s["motion_search"] > 0.0
        assert stats.stage_s["denoise_blend"] > 0.0
        assert stats.stage_s["inference"] > 0.0
        assert sum(stats.stage_s.values()) > 0.0
