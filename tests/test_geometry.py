"""Unit and property-based tests for the geometric primitives."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.geometry import BoundingBox, MotionVector, Point, mean_iou


# ----------------------------------------------------------------------
# Point and MotionVector
# ----------------------------------------------------------------------
class TestPoint:
    def test_translate(self):
        assert Point(1.0, 2.0).translate(3.0, -1.0) == Point(4.0, 1.0)

    def test_distance(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestMotionVector:
    def test_magnitude(self):
        assert MotionVector(3.0, 4.0).magnitude() == pytest.approx(5.0)

    def test_addition_and_subtraction(self):
        a = MotionVector(1.0, 2.0)
        b = MotionVector(0.5, -1.0)
        assert (a + b) == MotionVector(1.5, 1.0)
        assert (a - b) == MotionVector(0.5, 3.0)

    def test_scale(self):
        assert MotionVector(2.0, -4.0).scale(0.5) == MotionVector(1.0, -2.0)

    def test_blend_full_weight_returns_self(self):
        current = MotionVector(2.0, 2.0)
        previous = MotionVector(-10.0, 5.0)
        assert current.blend(previous, 1.0) == current

    def test_blend_zero_weight_returns_other(self):
        current = MotionVector(2.0, 2.0)
        previous = MotionVector(-10.0, 5.0)
        assert current.blend(previous, 0.0) == previous

    def test_blend_midpoint(self):
        blended = MotionVector(2.0, 0.0).blend(MotionVector(0.0, 2.0), 0.5)
        assert blended.u == pytest.approx(1.0)
        assert blended.v == pytest.approx(1.0)


# ----------------------------------------------------------------------
# BoundingBox basics
# ----------------------------------------------------------------------
class TestBoundingBoxConstruction:
    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, -1, 5)
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 5, -1)

    def test_from_corners_any_order(self):
        box = BoundingBox.from_corners(10, 20, 4, 6)
        assert box.as_xywh() == (4, 6, 6, 14)

    def test_from_center(self):
        box = BoundingBox.from_center(10, 10, 4, 6)
        assert box.as_corners() == (8, 7, 12, 13)

    def test_union_of_requires_boxes(self):
        with pytest.raises(ValueError):
            BoundingBox.union_of([])

    def test_union_of_covers_all(self):
        a = BoundingBox(0, 0, 2, 2)
        b = BoundingBox(5, 5, 2, 2)
        union = BoundingBox.union_of([a, b])
        assert union.contains_box(a)
        assert union.contains_box(b)
        assert union.as_corners() == (0, 0, 7, 7)


class TestBoundingBoxProperties:
    def test_area_and_center(self, sample_box):
        assert sample_box.area == 24.0 * 16.0
        assert sample_box.center == Point(22.0, 16.0)

    def test_aspect_ratio(self):
        assert BoundingBox(0, 0, 10, 5).aspect_ratio == 2.0
        assert math.isinf(BoundingBox(0, 0, 10, 0).aspect_ratio)

    def test_is_empty(self):
        assert BoundingBox(0, 0, 0, 5).is_empty()
        assert not BoundingBox(0, 0, 1, 5).is_empty()


class TestBoundingBoxSetOperations:
    def test_intersection_overlapping(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 5, 10, 10)
        inter = a.intersection(b)
        assert inter.as_xywh() == (5, 5, 5, 5)

    def test_intersection_disjoint_is_empty(self):
        a = BoundingBox(0, 0, 4, 4)
        b = BoundingBox(10, 10, 4, 4)
        assert a.intersection(b).is_empty()

    def test_iou_identical(self, sample_box):
        assert sample_box.iou(sample_box) == pytest.approx(1.0)

    def test_iou_disjoint(self):
        assert BoundingBox(0, 0, 4, 4).iou(BoundingBox(10, 10, 4, 4)) == 0.0

    def test_iou_half_overlap(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 0, 10, 10)
        assert a.iou(b) == pytest.approx(50.0 / 150.0)

    def test_contains(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(2, 2, 4, 4)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.contains_point(Point(5, 5))
        assert not outer.contains_point(Point(15, 5))


class TestBoundingBoxTransforms:
    def test_translate_and_shift(self, sample_box):
        moved = sample_box.translate(2.0, -3.0)
        assert moved.as_xywh() == (12.0, 5.0, 24.0, 16.0)
        shifted = sample_box.shift(MotionVector(2.0, -3.0))
        assert shifted == moved

    def test_scale_preserves_center(self, sample_box):
        scaled = sample_box.scale(2.0)
        assert scaled.center == sample_box.center
        assert scaled.width == pytest.approx(sample_box.width * 2)

    def test_inflate_and_negative_inflate(self):
        box = BoundingBox(10, 10, 10, 10)
        grown = box.inflate(2)
        assert grown.as_xywh() == (8, 8, 14, 14)
        shrunk = box.inflate(-6)
        assert shrunk.width == 0.0 and shrunk.height == 0.0

    def test_clip(self):
        box = BoundingBox(-5, -5, 20, 20)
        clipped = box.clip(10, 10)
        assert clipped.as_corners() == (0, 0, 10, 10)

    def test_round(self):
        box = BoundingBox(1.4, 2.6, 3.5, 4.4)
        assert box.round().as_xywh() == (1.0, 3.0, 4.0, 4.0)

    def test_split_grid_covers_box(self, sample_box):
        cells = sample_box.split(2, 3)
        assert len(cells) == 6
        union = BoundingBox.union_of(cells)
        assert union.left == pytest.approx(sample_box.left)
        assert union.bottom == pytest.approx(sample_box.bottom)
        assert sum(cell.area for cell in cells) == pytest.approx(sample_box.area)

    def test_split_rejects_bad_grid(self, sample_box):
        with pytest.raises(ValueError):
            sample_box.split(0, 2)


def test_mean_iou_empty_is_zero():
    assert mean_iou([]) == 0.0


def test_mean_iou_averages():
    a = BoundingBox(0, 0, 10, 10)
    pairs = [(a, a), (a, BoundingBox(100, 100, 10, 10))]
    assert mean_iou(pairs) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
finite_coord = st.floats(min_value=-500, max_value=500, allow_nan=False, allow_infinity=False)
positive_size = st.floats(min_value=0.1, max_value=300, allow_nan=False, allow_infinity=False)


@st.composite
def boxes(draw):
    return BoundingBox(draw(finite_coord), draw(finite_coord), draw(positive_size), draw(positive_size))


@given(boxes(), boxes())
def test_iou_is_symmetric(a, b):
    assert a.iou(b) == pytest.approx(b.iou(a), abs=1e-9)


@given(boxes(), boxes())
def test_iou_bounded(a, b):
    iou = a.iou(b)
    assert 0.0 <= iou <= 1.0 + 1e-9


@given(boxes())
def test_iou_with_self_is_one(box):
    assert box.iou(box) == pytest.approx(1.0)


@given(boxes(), finite_coord, finite_coord)
def test_translation_preserves_iou_with_translated(box, dx, dy):
    moved = box.translate(dx, dy)
    assert moved.width == pytest.approx(box.width)
    assert moved.height == pytest.approx(box.height)
    assert moved.translate(-dx, -dy).iou(box) == pytest.approx(1.0, abs=1e-6)


@given(boxes(), boxes())
def test_union_contains_both(a, b):
    union = a.union(b)
    assert union.area >= max(a.area, b.area) - 1e-6
    assert union.left <= min(a.left, b.left) + 1e-9
    assert union.right >= max(a.right, b.right) - 1e-9


@given(boxes(), boxes())
def test_intersection_no_larger_than_either(a, b):
    inter = a.intersection(b)
    assert inter.area <= a.area + 1e-9
    assert inter.area <= b.area + 1e-9


@given(boxes(), st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4))
def test_split_preserves_area(box, rows, cols):
    cells = box.split(rows, cols)
    assert len(cells) == rows * cols
    assert sum(cell.area for cell in cells) == pytest.approx(box.area, rel=1e-9, abs=1e-9)
