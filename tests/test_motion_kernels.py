"""Tests for the vectorized SAD kernels and the scalar-oracle equivalence.

The vectorized engine must be *bit-identical* to the scalar reference in
``repro.motion.reference`` — not approximately equal — because downstream
confidence filtering (Eq. 2/3) is sensitive to SAD values and the paper's
hardware produces exact integer SADs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.motion.block_matching import BlockMatcher, BlockMatchingConfig, SearchStrategy
from repro.motion.kernels import SadKernel, frames_are_integer
from repro.motion.reference import scalar_estimate


class TestFramesAreInteger:
    def test_uint8_frames(self):
        assert frames_are_integer(np.zeros((4, 4), dtype=np.uint8))

    def test_integer_valued_floats(self):
        assert frames_are_integer(np.array([[1.0, 255.0], [0.0, 7.0]]))

    def test_fractional_floats(self):
        assert not frames_are_integer(np.array([[1.0, 2.5]]))

    def test_mixed(self):
        a = np.zeros((2, 2), dtype=np.uint8)
        b = np.array([[0.25, 1.0], [2.0, 3.0]])
        assert not frames_are_integer(a, b)

    def test_huge_values_rejected(self):
        assert not frames_are_integer(np.array([[2.0**40]]))

    def test_non_finite_rejected(self):
        assert not frames_are_integer(np.array([[np.nan, 1.0]]))


class TestSadKernelModes:
    def test_integer_mode_detected_for_uint8(self):
        frame = np.zeros((16, 16), dtype=np.uint8)
        kernel = SadKernel(frame, frame, block_size=8, search_range=2)
        assert kernel.exact_integer

    def test_float_mode_for_fractional_frames(self):
        # 1/3 lies on no power-of-two lattice, so this is genuinely float.
        frame = np.full((16, 16), 1.0 / 3.0)
        kernel = SadKernel(frame, frame, block_size=8, search_range=2)
        assert not kernel.exact_integer

    def test_fixed_point_mode_for_lattice_frames(self):
        # 0.5 lies on the Q8.4 lattice: matched in scaled integers.
        frame = np.full((16, 16), 0.5)
        kernel = SadKernel(frame, frame, block_size=8, search_range=2)
        assert kernel.exact_integer
        assert kernel.scale == 16

    def test_uniform_and_per_block_agree_on_integers(self):
        rng = np.random.default_rng(0)
        current = rng.integers(0, 256, (32, 48)).astype(np.uint8)
        previous = rng.integers(0, 256, (32, 48)).astype(np.uint8)
        kernel = SadKernel(current, previous, block_size=16, search_range=3)
        for dy, dx in [(0, 0), (1, -2), (-3, 3)]:
            uniform = kernel.sad_uniform(dy, dx)
            per_block = kernel.sad_per_block(
                np.full((2, 3), dy, dtype=np.int64), np.full((2, 3), dx, dtype=np.int64)
            )
            assert np.array_equal(uniform, per_block)

    def test_integer_and_float_modes_agree_on_integer_frames(self):
        rng = np.random.default_rng(1)
        current = rng.integers(0, 256, (32, 32)).astype(np.float64)
        previous = rng.integers(0, 256, (32, 32)).astype(np.float64)
        fast = SadKernel(current, previous, 16, 4, exact_integer=True)
        slow = SadKernel(current, previous, 16, 4, exact_integer=False)
        dy = rng.integers(-4, 5, (2, 2))
        dx = rng.integers(-4, 5, (2, 2))
        assert np.array_equal(fast.sad_per_block(dy, dx), slow.sad_per_block(dy, dx))

    def test_rejects_unpadded_frames(self):
        with pytest.raises(ValueError):
            SadKernel(np.zeros((10, 16)), np.zeros((10, 16)), 16, 2)


def _assert_matches_oracle(current, previous, block_size, search_range, strategy):
    matcher = BlockMatcher(
        BlockMatchingConfig(
            block_size=block_size, search_range=search_range, strategy=strategy
        )
    )
    field = matcher.estimate(current, previous)
    oracle = scalar_estimate(
        current,
        previous,
        block_size=block_size,
        search_range=search_range,
        three_step=strategy is SearchStrategy.THREE_STEP,
    )
    assert np.array_equal(field.vectors, oracle.vectors)
    assert np.array_equal(field.sad, oracle.sad)


class TestVectorizedEqualsOracle:
    """Property tests: the vectorized searches equal the scalar reference."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        block_size=st.sampled_from([3, 4, 8, 16]),
        search_range=st.sampled_from([0, 1, 2, 5, 7]),
        height=st.integers(8, 48),
        width=st.integers(8, 48),
    )
    def test_tss_on_random_float_frames(self, seed, block_size, search_range, height, width):
        rng = np.random.default_rng(seed)
        current = rng.uniform(0, 255, (height, width))
        previous = rng.uniform(0, 255, (height, width))
        _assert_matches_oracle(
            current, previous, block_size, search_range, SearchStrategy.THREE_STEP
        )

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        block_size=st.sampled_from([3, 4, 8, 16]),
        search_range=st.sampled_from([0, 1, 2, 5, 7]),
        height=st.integers(8, 48),
        width=st.integers(8, 48),
    )
    def test_tss_and_es_on_random_integer_frames(
        self, seed, block_size, search_range, height, width
    ):
        rng = np.random.default_rng(seed)
        current = rng.integers(0, 256, (height, width)).astype(np.uint8)
        previous = rng.integers(0, 256, (height, width)).astype(np.uint8)
        for strategy in SearchStrategy:
            _assert_matches_oracle(current, previous, block_size, search_range, strategy)

    def test_low_texture_ties_match_oracle(self):
        """Flat regions exercise the strict-improvement tie-breaking."""
        rng = np.random.default_rng(7)
        current = np.full((40, 40), 100.0)
        current[10:20, 10:20] += rng.integers(0, 3, (10, 10))
        previous = np.full((40, 40), 100.0)
        _assert_matches_oracle(current, previous, 8, 7, SearchStrategy.THREE_STEP)
        _assert_matches_oracle(current, previous, 8, 7, SearchStrategy.EXHAUSTIVE)
