"""Tests for the classic ISP stages (dead-pixel correction, demosaic, WB, gamma)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isp.sensor import CameraSensor, SensorConfig, bayer_channel_map
from repro.isp.stages import (
    DeadPixelCorrection,
    Demosaic,
    GammaCorrection,
    WhiteBalance,
    rgb_to_luma,
)


class TestDeadPixelCorrection:
    def test_recovers_isolated_dead_pixel(self):
        bayer = np.full((16, 16), 100.0)
        bayer[8, 8] = 0.0
        corrected = DeadPixelCorrection().process(bayer)
        assert corrected[8, 8] == pytest.approx(100.0)

    def test_leaves_healthy_pixels_untouched(self):
        rng = np.random.default_rng(0)
        bayer = rng.uniform(90, 110, (16, 16))
        corrected = DeadPixelCorrection(detection_threshold=60.0).process(bayer)
        assert np.allclose(corrected, bayer)

    def test_threshold_controls_sensitivity(self):
        bayer = np.full((16, 16), 100.0)
        bayer[4, 4] = 70.0  # only 30 below the neighbourhood
        strict = DeadPixelCorrection(detection_threshold=20.0).process(bayer)
        lenient = DeadPixelCorrection(detection_threshold=50.0).process(bayer)
        assert strict[4, 4] == pytest.approx(100.0)
        assert lenient[4, 4] == pytest.approx(70.0)


class TestDemosaic:
    def test_requires_channel_map(self):
        with pytest.raises(ValueError):
            Demosaic().process(np.zeros((8, 8)))

    def test_flat_grey_scene_reconstructs_flat_rgb(self):
        height = width = 16
        channel_map = bayer_channel_map(height, width)
        bayer = np.full((height, width), 120.0)
        rgb = Demosaic().process(bayer, channel_map=channel_map)
        assert rgb.shape == (height, width, 3)
        assert np.allclose(rgb, 120.0)

    def test_preserves_exact_sensor_samples(self):
        height = width = 8
        channel_map = bayer_channel_map(height, width)
        rng = np.random.default_rng(1)
        bayer = rng.uniform(0, 255, (height, width))
        rgb = Demosaic().process(bayer, channel_map=channel_map)
        red_sites = channel_map == 0
        assert np.allclose(rgb[..., 0][red_sites], bayer[red_sites])


class TestWhiteBalance:
    def test_balances_channel_means(self):
        rgb = np.zeros((8, 8, 3))
        rgb[..., 0] = 80.0
        rgb[..., 1] = 100.0
        rgb[..., 2] = 120.0
        balanced = WhiteBalance().process(rgb)
        means = balanced.reshape(-1, 3).mean(axis=0)
        assert np.allclose(means, means.mean(), rtol=1e-6)

    def test_requires_rgb(self):
        with pytest.raises(ValueError):
            WhiteBalance().process(np.zeros((8, 8)))

    def test_output_clipped(self):
        rgb = np.zeros((4, 4, 3))
        rgb[..., 0] = 10.0
        rgb[..., 1] = 250.0
        rgb[..., 2] = 250.0
        balanced = WhiteBalance().process(rgb)
        assert balanced.max() <= 255.0


class TestGamma:
    def test_identity_gamma(self):
        image = np.random.default_rng(2).uniform(0, 255, (8, 8, 3))
        assert np.allclose(GammaCorrection(1.0).process(image), image)

    def test_gamma_below_one_brightens(self):
        image = np.full((4, 4, 3), 64.0)
        brightened = GammaCorrection(0.5).process(image)
        assert brightened.mean() > image.mean()

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ValueError):
            GammaCorrection(0.0)


class TestLuma:
    def test_grey_is_identity(self):
        rgb = np.full((4, 4, 3), 77.0)
        assert np.allclose(rgb_to_luma(rgb), 77.0)

    def test_weights_sum_to_one(self):
        rgb = np.zeros((1, 1, 3))
        rgb[0, 0] = (255.0, 255.0, 255.0)
        assert rgb_to_luma(rgb)[0, 0] == pytest.approx(255.0)

    def test_rejects_non_rgb(self):
        with pytest.raises(ValueError):
            rgb_to_luma(np.zeros((4, 4)))


class TestEndToEndBayerPath:
    def test_capture_demosaic_roundtrip_preserves_scene(self, small_sequence):
        """Sensor -> dead-pixel correction -> demosaic -> WB -> luma should
        approximately reconstruct the original scene luma."""
        scene = small_sequence.frame(0).astype(np.float64)
        sensor = CameraSensor(SensorConfig(dead_pixel_fraction=1e-3), seed=5)
        raw = sensor.capture(scene, 0)
        corrected = DeadPixelCorrection().process(raw.bayer)
        rgb = Demosaic().process(corrected, channel_map=raw.channel_map)
        balanced = WhiteBalance().process(rgb)
        luma = rgb_to_luma(balanced)
        error = np.abs(luma - scene).mean()
        assert error < 12.0
