"""Tests for the inference backends driven by the pipeline on I-frames."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backends import (
    CNNDetectionBackend,
    CNNTrackingBackend,
    NCCTrackingBackend,
    detection_backend_for,
    tracking_backend_for,
)


class TestFactories:
    def test_detection_factory(self):
        yolo = detection_backend_for("yolov2")
        tiny = detection_backend_for("Tiny-YOLO")
        assert yolo.network.name == "YOLOv2"
        assert tiny.network.name == "TinyYOLO"
        with pytest.raises(KeyError):
            detection_backend_for("ssd")

    def test_tracking_factory(self):
        mdnet = tracking_backend_for("mdnet")
        ncc = tracking_backend_for("ncc")
        assert mdnet.network.name == "MDNet"
        assert ncc.name == "NCC"
        with pytest.raises(KeyError):
            tracking_backend_for("kcf")


class TestDetectionBackend:
    def test_requires_start_sequence(self, multi_object_sequence):
        backend = CNNDetectionBackend()
        with pytest.raises(RuntimeError):
            backend.infer(0, multi_object_sequence.frame(0), multi_object_sequence)

    def test_detections_cover_ground_truth(self, multi_object_sequence):
        backend = CNNDetectionBackend(seed=3)
        backend.start_sequence(multi_object_sequence)
        detections = backend.infer(0, multi_object_sequence.frame(0), multi_object_sequence)
        truth = multi_object_sequence.truth_at(0)
        matched = 0
        for object_id, box in truth.items():
            if any(d.object_id == object_id and d.box.iou(box) > 0.4 for d in detections):
                matched += 1
        assert matched >= len(truth) - 1  # the profile allows occasional misses

    def test_name_follows_network(self):
        assert CNNDetectionBackend().name == "YOLOv2"


class TestTrackingBackend:
    def test_tracks_primary_object(self, small_sequence):
        backend = CNNTrackingBackend(seed=2)
        backend.start_sequence(small_sequence)
        truth = small_sequence.truth_for(small_sequence.primary_object_id)[5]
        detections = backend.infer(5, small_sequence.frame(5), small_sequence)
        assert len(detections) == 1
        assert detections[0].box.iou(truth) > 0.5
        assert detections[0].object_id == small_sequence.primary_object_id

    def test_requires_start_sequence(self, small_sequence):
        backend = CNNTrackingBackend()
        with pytest.raises(RuntimeError):
            backend.infer(0, small_sequence.frame(0), small_sequence)


class TestNCCBackend:
    def test_tracks_on_real_pixels(self, small_sequence):
        backend = NCCTrackingBackend()
        backend.start_sequence(small_sequence)
        ious = []
        for frame_index in range(1, 8):
            truth = small_sequence.truth_for(small_sequence.primary_object_id)[frame_index]
            detections = backend.infer(
                frame_index, small_sequence.frame(frame_index).astype(np.float64), small_sequence
            )
            ious.append(detections[0].box.iou(truth))
        assert np.mean(ious) > 0.4

    def test_requires_start_sequence(self, small_sequence):
        backend = NCCTrackingBackend()
        with pytest.raises(RuntimeError):
            backend.infer(0, small_sequence.frame(0), small_sequence)

    def test_name(self):
        assert NCCTrackingBackend().name == "NCC"
