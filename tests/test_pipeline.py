"""Tests for the end-to-end Euphrates pipeline."""

from __future__ import annotations

import pytest

from repro.core.backends import tracking_backend_for, detection_backend_for
from repro.core.pipeline import EuphratesPipeline
from repro.core.spec import PipelineSpec
from repro.core.types import FrameKind
from repro.core.window import AdaptiveWindowController, ConstantWindowController
from repro.motion.block_matching import SearchStrategy


class TestScheduling:
    def test_first_frame_is_always_inference(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=8).build(tracking_backend_for("mdnet"))
        result = pipeline.run(small_sequence)
        assert result.frames[0].kind is FrameKind.INFERENCE

    def test_constant_window_pattern(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=4).build(tracking_backend_for("mdnet"))
        result = pipeline.run(small_sequence)
        kinds = [frame.kind for frame in result.frames]
        # Frames 0, 4, 8, ... are I-frames; everything else is extrapolated.
        for index, kind in enumerate(kinds):
            expected = FrameKind.INFERENCE if index % 4 == 0 else FrameKind.EXTRAPOLATION
            assert kind is expected

    def test_ew1_never_extrapolates(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=1).build(tracking_backend_for("mdnet"))
        result = pipeline.run(small_sequence)
        assert result.extrapolation_count == 0
        assert result.inference_rate == 1.0

    def test_inference_rate_matches_window(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet"))
        result = pipeline.run(small_sequence)
        assert result.inference_rate == pytest.approx(0.5, abs=0.05)

    def test_disabled_motion_vectors_forces_inference(self, small_sequence):
        """Without the Euphrates ISP augmentation every frame is an I-frame."""
        pipeline = PipelineSpec(
            extrapolation_window=4, expose_motion_vectors=False
        ).build(tracking_backend_for("mdnet"))
        result = pipeline.run(small_sequence)
        assert result.inference_rate == 1.0

    def test_window_size_recorded_per_frame(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=4).build(tracking_backend_for("mdnet"))
        result = pipeline.run(small_sequence)
        assert {frame.window_size for frame in result.frames} == {4}


class TestResults:
    def test_every_frame_has_a_result(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet"))
        result = pipeline.run(small_sequence)
        assert len(result) == small_sequence.num_frames
        assert all(frame.detections for frame in result.frames)

    def test_extrapolated_frames_are_flagged(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet"))
        result = pipeline.run(small_sequence)
        for frame in result.frames:
            for detection in frame.detections:
                assert detection.extrapolated == frame.is_extrapolated

    def test_extrapolated_boxes_follow_target(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet", seed=3))
        result = pipeline.run(small_sequence)
        target = small_sequence.primary_object_id
        ious = []
        for frame in result.frames:
            if not frame.is_extrapolated:
                continue
            truth = small_sequence.truth_for(target)[frame.frame_index]
            if truth is None:
                continue
            ious.append(frame.best_for(truth).box.iou(truth))
        assert ious
        assert sum(ious) / len(ious) > 0.6

    def test_detection_pipeline_handles_multiple_objects(self, multi_object_sequence):
        pipeline = PipelineSpec(extrapolation_window=2).build(detection_backend_for("yolov2", seed=2))
        result = pipeline.run(multi_object_sequence)
        extrapolated_frames = [f for f in result.frames if f.is_extrapolated]
        assert extrapolated_frames
        assert all(len(f.detections) >= 2 for f in extrapolated_frames)

    def test_run_dataset_returns_one_result_per_sequence(self, tiny_tracking_dataset):
        pipeline = PipelineSpec(extrapolation_window=4).build(tracking_backend_for("mdnet"))
        results = pipeline.run_dataset(tiny_tracking_dataset)
        assert len(results) == len(tiny_tracking_dataset)
        names = {result.sequence_name for result in results}
        assert names == {sequence.name for sequence in tiny_tracking_dataset}

    def test_extrapolation_ops_accumulate(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet"))
        pipeline.run(small_sequence)
        assert pipeline.total_extrapolation_ops > 0


class TestAdaptiveMode:
    def test_adaptive_controller_receives_feedback(self, small_sequence):
        controller = AdaptiveWindowController(initial_window=2)
        pipeline = EuphratesPipeline(tracking_backend_for("mdnet"), controller)
        pipeline.run(small_sequence)
        assert controller.history  # disagreement was observed at I-frames

    def test_adaptive_window_varies(self, tiny_tracking_dataset):
        controller = AdaptiveWindowController(initial_window=2, max_window=8)
        pipeline = EuphratesPipeline(tracking_backend_for("mdnet"), controller)
        results = pipeline.run_dataset(tiny_tracking_dataset)
        windows = {f.window_size for r in results for f in r.frames}
        assert len(windows) > 1  # the window actually adapted

    def test_adaptive_window_string_spec(self):
        pipeline = PipelineSpec(extrapolation_window="adaptive").build(tracking_backend_for("mdnet"))
        assert isinstance(pipeline.window_controller, AdaptiveWindowController)
        with pytest.raises(ValueError):
            PipelineSpec(extrapolation_window="sometimes")


class TestSpecBuildOptions:
    def test_block_size_and_strategy_propagate(self):
        pipeline = PipelineSpec(
            extrapolation_window=2,
            block_size=32,
            exhaustive_search=True,
            sub_roi_grid=(1, 1),
        ).build(tracking_backend_for("mdnet"))
        assert pipeline.config.block_matching.block_size == 32
        assert pipeline.config.block_matching.strategy is SearchStrategy.EXHAUSTIVE
        assert pipeline.config.extrapolation.sub_roi_grid == (1, 1)

    def test_default_controller_is_constant(self):
        pipeline = PipelineSpec(extrapolation_window=3).build(tracking_backend_for("mdnet"))
        assert isinstance(pipeline.window_controller, ConstantWindowController)
        assert pipeline.window_controller.current_window == 3


class TestDisagreementMetric:
    def test_identical_results_have_zero_disagreement(self):
        from repro.core.geometry import BoundingBox
        from repro.core.types import Detection

        detections = [Detection(box=BoundingBox(0, 0, 10, 10), object_id=1)]
        assert EuphratesPipeline._disagreement(detections, detections) == pytest.approx(0.0)

    def test_disjoint_results_have_full_disagreement(self):
        from repro.core.geometry import BoundingBox
        from repro.core.types import Detection

        inferred = [Detection(box=BoundingBox(0, 0, 10, 10), object_id=1)]
        predicted = [Detection(box=BoundingBox(50, 50, 10, 10), object_id=1)]
        assert EuphratesPipeline._disagreement(inferred, predicted) == pytest.approx(1.0)

    def test_empty_lists_have_zero_disagreement(self):
        assert EuphratesPipeline._disagreement([], []) == 0.0

    def test_anonymous_matching_is_one_to_one(self):
        """Two inferred boxes cannot both pair with the same prediction."""
        from repro.core.geometry import BoundingBox
        from repro.core.types import Detection

        predicted = [Detection(box=BoundingBox(0, 0, 10, 10))]
        inferred = [
            Detection(box=BoundingBox(0, 0, 10, 10)),  # perfect match
            Detection(box=BoundingBox(2, 2, 10, 10)),  # would also overlap
        ]
        # Only the best pair is counted; the second inferred box is unmatched
        # evidence, not a duplicate report against the same prediction.
        assert EuphratesPipeline._disagreement(inferred, predicted) == pytest.approx(0.0)

    def test_non_overlapping_anonymous_boxes_are_not_paired(self):
        """IoU = 0 is no evidence of a pair and must not poison the metric."""
        from repro.core.geometry import BoundingBox
        from repro.core.types import Detection

        predicted = [Detection(box=BoundingBox(100, 100, 10, 10))]
        inferred = [Detection(box=BoundingBox(0, 0, 10, 10))]
        assert EuphratesPipeline._disagreement(inferred, predicted) == 0.0

    def test_greedy_matching_prefers_best_iou(self):
        from repro.core.geometry import BoundingBox
        from repro.core.types import Detection

        predicted = [
            Detection(box=BoundingBox(0, 0, 10, 10)),
            Detection(box=BoundingBox(8, 0, 10, 10)),
        ]
        inferred = [Detection(box=BoundingBox(0, 0, 10, 10))]
        # Pairs with the identical box (IoU 1), not the offset one.
        assert EuphratesPipeline._disagreement(inferred, predicted) == pytest.approx(0.0)


class TestEngineReuse:
    def test_repeated_runs_are_deterministic(self, small_sequence):
        """Reused ISP/extrapolator state must reset between sequences."""
        pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet"))
        first = pipeline.run(small_sequence)
        second = pipeline.run(small_sequence)
        assert len(first) == len(second)
        for a, b in zip(first.frames, second.frames):
            assert a.kind is b.kind
            for da, db in zip(a.detections, b.detections):
                assert da.box.as_xywh() == pytest.approx(db.box.as_xywh())

    def test_engines_are_reused_across_runs(self, small_sequence):
        pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet"))
        pipeline.run(small_sequence)
        isp = pipeline._isp
        extrapolator = pipeline._extrapolator
        pipeline.run(small_sequence)
        assert pipeline._isp is isp
        assert pipeline._extrapolator is extrapolator


class TestParallelRunDataset:
    def test_parallel_matches_serial(self, tiny_tracking_dataset):
        serial = PipelineSpec(extrapolation_window=4).build(tracking_backend_for("mdnet"))
        parallel = PipelineSpec(extrapolation_window=4).build(tracking_backend_for("mdnet"))
        serial_results = serial.run_dataset(tiny_tracking_dataset)
        parallel_results = parallel.run_dataset(tiny_tracking_dataset, max_workers=2)
        assert [r.sequence_name for r in serial_results] == [
            r.sequence_name for r in parallel_results
        ]
        for s, p in zip(serial_results, parallel_results):
            assert len(s) == len(p)
            for fs, fp in zip(s.frames, p.frames):
                assert fs.kind is fp.kind
                for ds, dp in zip(fs.detections, fp.detections):
                    assert ds.box.as_xywh() == pytest.approx(dp.box.as_xywh())
        assert parallel.total_extrapolation_ops == pytest.approx(
            serial.total_extrapolation_ops
        )
