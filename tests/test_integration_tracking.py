"""Integration tests: the tracking scenario end to end (Sec. 6.2 shape).

These tests run the actual pipeline (ISP block matching + extrapolation +
simulated MDNet) over a small synthetic OTB-like dataset and check that the
qualitative results of the paper hold: small accuracy loss at small EW,
growing loss at large EW, adaptive mode sitting between EW-2 and EW-4, and
the energy model agreeing with the measured schedules.
"""

from __future__ import annotations

import pytest

from repro.core import PipelineSpec, tracking_backend_for
from repro.eval import success_rate
from repro.nn.models import build_mdnet
from repro.soc import VisionSoC


@pytest.fixture(scope="module")
def tracking_runs(tiny_combined_tracking_dataset):
    """Run the pipeline once per configuration and cache the results."""
    dataset = tiny_combined_tracking_dataset
    runs = {}
    for label, window in (("MDNet", 1), ("EW-2", 2), ("EW-4", 4), ("EW-32", 32), ("EW-A", "adaptive")):
        pipeline = PipelineSpec(extrapolation_window=window).build(tracking_backend_for("mdnet", seed=7))
        results = pipeline.run_dataset(dataset)
        runs[label] = results
    return runs


class TestTrackingAccuracyShape:
    def test_baseline_is_accurate(self, tracking_runs, tiny_combined_tracking_dataset):
        assert success_rate(tracking_runs["MDNet"], tiny_combined_tracking_dataset, 0.5) > 0.9

    def test_ew2_loses_little_accuracy(self, tracking_runs, tiny_combined_tracking_dataset):
        """Paper: EW-2 degrades success by only ~1% at IoU 0.5."""
        dataset = tiny_combined_tracking_dataset
        baseline = success_rate(tracking_runs["MDNet"], dataset, 0.5)
        ew2 = success_rate(tracking_runs["EW-2"], dataset, 0.5)
        assert baseline - ew2 < 0.08

    def test_accuracy_degrades_with_window(self, tracking_runs, tiny_combined_tracking_dataset):
        dataset = tiny_combined_tracking_dataset
        ew2 = success_rate(tracking_runs["EW-2"], dataset, 0.5)
        ew32 = success_rate(tracking_runs["EW-32"], dataset, 0.5)
        assert ew2 > ew32
        assert ew32 < 0.9  # large windows visibly hurt

    def test_adaptive_mode_balances_accuracy_and_inference_rate(
        self, tracking_runs, tiny_combined_tracking_dataset
    ):
        dataset = tiny_combined_tracking_dataset
        adaptive_success = success_rate(tracking_runs["EW-A"], dataset, 0.5)
        ew32_success = success_rate(tracking_runs["EW-32"], dataset, 0.5)
        assert adaptive_success > ew32_success

        def inference_rate(results):
            total = sum(len(r) for r in results)
            return sum(r.inference_count for r in results) / total

        adaptive_rate = inference_rate(tracking_runs["EW-A"])
        assert inference_rate(tracking_runs["MDNet"]) == pytest.approx(1.0)
        assert adaptive_rate < 0.6  # meaningfully fewer inferences than baseline

    def test_inference_rates_match_windows(self, tracking_runs):
        def inference_rate(results):
            total = sum(len(r) for r in results)
            return sum(r.inference_count for r in results) / total

        assert inference_rate(tracking_runs["EW-2"]) == pytest.approx(0.5, abs=0.05)
        assert inference_rate(tracking_runs["EW-4"]) == pytest.approx(0.25, abs=0.05)


class TestTrackingEnergyFromMeasuredSchedules:
    def test_energy_saving_from_actual_runs(self, tracking_runs):
        """Feed the measured I/E schedules into the SoC model (Fig. 10b path)."""
        soc = VisionSoC()
        mdnet = build_mdnet()
        baseline = soc.evaluate_results(mdnet, tracking_runs["MDNet"], label="MDNet")
        ew2 = soc.evaluate_results(mdnet, tracking_runs["EW-2"], label="EW-2")
        adaptive = soc.evaluate_results(mdnet, tracking_runs["EW-A"], label="EW-A")
        assert ew2.energy_saving_vs(baseline) > 0.1
        assert adaptive.energy_per_frame_j <= ew2.energy_per_frame_j + 1e-6
        assert baseline.fps == pytest.approx(60.0, rel=0.01)
