"""Tests for the experiment registry, the sweep-runner cache and the CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.types import DatasetRunResult
from repro.harness.cli import main
from repro.harness.reporting import (
    artifact_from_dict,
    artifact_to_dict,
    format_artifact,
    write_artifact_json,
)
from repro.harness.runner import (
    DatasetSpec,
    ExperimentArtifact,
    ExperimentContext,
    SweepRunner,
    get_experiment,
    list_experiments,
)
from repro.video.datasets import build_tracking_dataset


EXPECTED_EXPERIMENTS = [
    "fig1",
    "table1",
    "table2",
    "fig9a",
    "fig9b",
    "fig9b_measured",
    "fig9c",
    "fig10a",
    "fig10b",
    "fig10b_measured",
    "fig10c",
    "fig11a",
    "fig11b",
    "fig12",
]


@pytest.fixture(scope="module")
def tiny_dataset():
    return build_tracking_dataset(
        otb_sequences=2, vot_sequences=0, frames_per_sequence=8, seed=42
    )


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        names = [spec.name for spec in list_experiments()]
        assert names == EXPECTED_EXPERIMENTS

    def test_lookup_returns_spec(self):
        spec = get_experiment("fig9a")
        assert spec.name == "fig9a"
        assert spec.kind == "figure"
        assert callable(spec.build)
        assert get_experiment("table1").kind == "table"

    def test_unknown_name_raises_with_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'fig9"):
            get_experiment("fig9")
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("nonsense")


class TestSweepRunnerCache:
    def test_same_point_runs_once(self, tiny_dataset):
        runner = SweepRunner()
        first = runner.run("tracking", "mdnet", tiny_dataset, 2, seed=1)
        second = runner.run("tracking", "mdnet", tiny_dataset, 2, seed=1)
        assert second is first
        assert (runner.cache_misses, runner.cache_hits) == (1, 1)

    def test_distinct_points_miss(self, tiny_dataset):
        runner = SweepRunner()
        base = runner.run("tracking", "mdnet", tiny_dataset, 2, seed=1)
        for kwargs in (
            dict(window=4),
            dict(window=2, seed=2),
            dict(window=2, block_size=8),
            dict(window=2, exhaustive_search=True),
            dict(window="adaptive"),
        ):
            window = kwargs.pop("window")
            other = runner.run("tracking", "mdnet", tiny_dataset, window, **kwargs)
            assert other is not base
        assert runner.cache_hits == 0
        assert runner.cache_misses == 6

    def test_distinct_datasets_do_not_alias(self, tiny_dataset):
        other_dataset = build_tracking_dataset(
            otb_sequences=1, vot_sequences=0, frames_per_sequence=8, seed=7
        )
        runner = SweepRunner()
        runner.run("tracking", "mdnet", tiny_dataset, 2, seed=1)
        runner.run("tracking", "mdnet", other_dataset, 2, seed=1)
        assert runner.cache_misses == 2

    def test_cached_result_identical_to_isolated_run(self, tiny_dataset):
        shared = SweepRunner()
        shared.run("tracking", "mdnet", tiny_dataset, 4, seed=1)  # warm other points
        shared_result = shared.run("tracking", "mdnet", tiny_dataset, 2, seed=1)
        isolated_result = SweepRunner().run("tracking", "mdnet", tiny_dataset, 2, seed=1)
        assert shared_result.inference_count == isolated_result.inference_count
        for a, b in zip(shared_result.sequences, isolated_result.sequences):
            assert [d.box for f in a for d in f.detections] == [
                d.box for f in b for d in f.detections
            ]

    def test_parallel_matches_serial_for_constant_window(self, tiny_dataset):
        serial = SweepRunner().run("tracking", "mdnet", tiny_dataset, 2, seed=1)
        parallel = SweepRunner(max_workers=2).run("tracking", "mdnet", tiny_dataset, 2, seed=1)
        assert [d.box for r in serial for f in r for d in f.detections] == [
            d.box for r in parallel for f in r for d in f.detections
        ]
        # Summation order differs between the serial accumulator and the
        # per-worker totals, so compare up to float round-off.
        assert parallel.extrapolation_ops == pytest.approx(serial.extrapolation_ops)

    def test_run_result_counters(self, tiny_dataset):
        result = SweepRunner().run("tracking", "mdnet", tiny_dataset, 2, seed=1)
        assert isinstance(result, DatasetRunResult)
        assert result.total_frames == sum(len(r) for r in result.sequences)
        assert result.inference_rate == pytest.approx(
            result.inference_count / result.total_frames
        )
        assert result.extrapolation_ops > 0

    def test_explicit_kwargs_override_a_passed_spec(self, tiny_dataset):
        from repro.core.spec import PipelineSpec

        runner = SweepRunner()
        base = PipelineSpec(extrapolation_window=2)
        tss = runner.run("tracking", "mdnet", tiny_dataset, spec=base, seed=1)
        es = runner.run(
            "tracking", "mdnet", tiny_dataset, spec=base, exhaustive_search=True, seed=1
        )
        # The override must produce (and cache) a genuinely different point.
        assert es is not tss
        assert runner.cache_misses == 2
        assert runner.run(
            "tracking", "mdnet", tiny_dataset, 2, exhaustive_search=True, seed=1
        ) is es

    def test_unknown_task_and_window_rejected(self, tiny_dataset):
        runner = SweepRunner()
        with pytest.raises(ValueError, match="unknown task"):
            runner.run("segmentation", "mdnet", tiny_dataset, 2)
        with pytest.raises(ValueError, match="window mode"):
            runner.run("tracking", "mdnet", tiny_dataset, "sometimes")


class TestExperimentContext:
    def test_artifact_memoized(self):
        context = ExperimentContext()
        first = context.artifact("table1")
        assert context.artifact("table1") is first
        assert first.tables and first.tables[0].rows

    def test_fig10b_uses_measured_adaptive_rate(self, tiny_dataset):
        context = ExperimentContext(datasets=DatasetSpec.smoke())
        artifact = context.artifact("fig10b")
        measured = context.artifact("fig10a").metadata["inference_rates"]["EW-A"]
        assert artifact.metadata["adaptive_inference_rate"] == measured

    def test_smoke_spec_is_near_minimal(self):
        spec = DatasetSpec.smoke()
        # Two sequences per swept dataset: one would silently fall back to
        # the serial run_dataset path, and tracking sequence 0 carries no
        # visual attributes (which would leave the fig12 smoke table empty).
        assert spec.otb_sequences == 2 and spec.vot_sequences == 0
        assert spec.detection_sequences == 2
        context = ExperimentContext(datasets=spec)
        assert len(context.tracking_dataset) == 2
        assert len(context.detection_dataset) == 2
        assert context.artifact("fig12").tables[0].rows


class TestJsonEmitters:
    def _artifact(self):
        artifact = ExperimentArtifact(name="demo", title="Demo artifact", kind="figure")
        artifact.add_table(
            ["config", "value", "ok"], [["EW-2", 0.75, True], ["EW-4", 0.5, False]]
        )
        artifact.metadata["seed"] = 1
        artifact.metadata["inference_rates"] = {"EW-2": 0.5}
        return artifact

    def test_round_trip_through_json_text(self):
        artifact = self._artifact()
        payload = json.loads(json.dumps(artifact_to_dict(artifact)))
        assert artifact_from_dict(payload) == artifact

    def test_write_artifact_json_is_deterministic(self, tmp_path):
        artifact = self._artifact()
        path = write_artifact_json(artifact, tmp_path)
        first = path.read_bytes()
        assert write_artifact_json(artifact, tmp_path).read_bytes() == first
        assert json.loads(first)["name"] == "demo"

    def test_tables_become_plain_lists(self):
        payload = artifact_to_dict(self._artifact())
        assert payload["tables"][0]["rows"] == [["EW-2", 0.75, True], ["EW-4", 0.5, False]]


class TestDegenerateArtifacts:
    """Emitters must survive empty sweeps and non-finite measurements."""

    def test_empty_sweep_artifact(self, tmp_path):
        artifact = ExperimentArtifact(name="empty", title="Empty sweep", kind="figure")
        artifact.add_table(["config", "value"], [])
        assert "config" in format_artifact(artifact)
        path = write_artifact_json(artifact, tmp_path)
        payload = json.loads(path.read_text())
        assert payload["tables"][0]["rows"] == []

    def test_no_tables_at_all(self):
        artifact = ExperimentArtifact(name="bare", title="No tables", kind="table")
        assert "(no tabular data)" in format_artifact(artifact)
        assert artifact_to_dict(artifact)["tables"] == []

    def test_single_point_frontier(self):
        artifact = ExperimentArtifact(name="one", title="One point", kind="figure")
        artifact.add_table(["config", "mJ"], [["EW-2", 15.2]])
        table = format_artifact(artifact, markdown=True)
        assert table.count("| EW-2") == 1

    def test_nan_and_inf_metrics_stay_strict_json(self, tmp_path):
        artifact = ExperimentArtifact(name="nonfinite", title="Non-finite", kind="figure")
        nan, inf = float("nan"), float("inf")
        artifact.add_table(["config", "fps", "rate"], [["dead", inf, nan], ["neg", -inf, 0.5]])
        artifact.metadata["worst_latency_ms"] = inf
        payload = artifact_to_dict(artifact)
        # Strict parsers must accept the document: no NaN/Infinity literals.
        text = json.dumps(payload, allow_nan=False)
        reparsed = json.loads(text)
        assert reparsed["tables"][0]["rows"][0] == ["dead", "Infinity", "NaN"]
        assert reparsed["tables"][0]["rows"][1] == ["neg", "-Infinity", 0.5]
        assert reparsed["metadata"]["worst_latency_ms"] == "Infinity"
        path = write_artifact_json(artifact, tmp_path)
        json.loads(path.read_text())

    def test_non_finite_cells_format_as_text(self):
        from repro.harness.reporting import format_table

        table = format_table(["a"], [[float("nan")], [float("inf")]])
        assert "nan" in table and "inf" in table

    def test_sanitizer_handles_nested_and_exotic_values(self):
        from repro.harness.reporting import sanitize_json_value

        value = {"tuple": (1, float("nan")), "path": Path("x"), 3: None}
        assert sanitize_json_value(value) == {"tuple": [1, "NaN"], "path": "x", "3": None}


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_EXPERIMENTS:
            assert name in out

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "nonsense"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_writes_json_and_tables(self, tmp_path, capsys):
        assert main(["run", "table2", "fig9b", "--json-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "YOLOv2" in out
        for name in ("table2", "fig9b"):
            payload = json.loads((tmp_path / f"{name}.json").read_text())
            assert payload["name"] == name
            assert payload["tables"][0]["rows"]

    def test_run_markdown(self, capsys):
        assert main(["run", "table1", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| component | configuration |" in out
        assert "| --- | --- |" in out
