"""Tests for the experiment harness and reporting utilities."""

from __future__ import annotations

import pytest

from repro.harness.reporting import format_markdown_table, format_table
from repro.harness.experiments import (
    figure1_accuracy_vs_tops,
    figure9b_detection_energy,
    figure9c_compute_memory,
    figure10b_tracking_energy,
    table1_soc_configuration,
    table2_workloads,
)


class TestReporting:
    def test_table_contains_headers_and_rows(self):
        table = format_table(["name", "value"], [["alpha", 1.25], ["beta", 0.5]])
        lines = table.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert lines[1].startswith("-")
        assert "alpha" in table and "1.25" in table

    def test_formats_booleans_and_small_numbers(self):
        table = format_table(["a", "b"], [[True, 0.00001], [False, 12345.0]])
        assert "yes" in table and "no" in table
        assert "1e-05" in table
        assert "1.23e+04" in table

    def test_zero_formatting(self):
        assert "0" in format_table(["x"], [[0.0]])

    def test_empty_rows_renders_header_only(self):
        table = format_table(["name", "value"], [])
        lines = table.splitlines()
        assert len(lines) == 2
        assert "name" in lines[0] and lines[1].startswith("-")

    def test_short_rows_are_padded(self):
        table = format_table(["a", "b", "c"], [["x"], ["y", 1, 2]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[2].rstrip() == "x"

    def test_rows_wider_than_header_extend_columns(self):
        table = format_table(["a"], [["x", "extra"]])
        assert "extra" in table

    def test_no_headers_no_rows(self):
        assert format_table([], []) == "\n"

    def test_markdown_table(self):
        table = format_markdown_table(["name", "value"], [["alpha", 1.25], [True, 0.0]])
        lines = table.splitlines()
        assert lines[0] == "| name | value |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| alpha | 1.25 |"
        assert lines[3] == "| yes | 0 |"


class TestStaticExperiments:
    def test_figure1_rows(self):
        rows = figure1_accuracy_vs_tops()
        names = [row[0] for row in rows]
        assert "YOLOv2" in names and "Haar" in names
        # Hand-crafted approaches fit the budget; full CNN detectors do not.
        by_name = {row[0]: row for row in rows}
        assert by_name["Haar"][4] is True
        assert by_name["YOLOv2"][4] is False

    def test_table1_rows(self):
        rows = table1_soc_configuration()
        assert len(rows) == 5

    def test_table2_rows(self):
        rows = table2_workloads()
        assert len(rows) == 4
        gops = {row[1]: row[2] for row in rows}
        assert gops["YOLOv2"] > gops["TinyYOLO"]
        assert gops["YOLOv2"] == pytest.approx(3423, rel=0.15)


class TestAnalyticEnergyExperiments:
    def test_figure9b_shape(self):
        result = figure9b_detection_energy(ew_values=(2, 4), num_frames=600)
        assert result.normalized_energy("YOLOv2") == pytest.approx(1.0)
        assert result.normalized_energy("EW-2") < 0.7
        assert result.normalized_energy("EW-4") < result.normalized_energy("EW-2")
        assert "EW-8@CPU" in result.breakdowns
        assert "TinyYOLO" in result.breakdowns
        headers = result.headers()
        rows = result.rows()
        assert all(len(row) == len(headers) for row in rows)

    def test_figure9c_rows(self):
        rows = figure9c_compute_memory(ew_values=(2, 4), num_frames=600)
        labels = [row[0] for row in rows]
        assert labels == ["YOLOv2", "EW-2", "EW-4"]
        ops = {row[0]: row[1] for row in rows}
        traffic = {row[0]: row[2] for row in rows}
        assert ops["YOLOv2"] > ops["EW-2"] > ops["EW-4"]
        assert traffic["YOLOv2"] > traffic["EW-2"] > traffic["EW-4"]

    def test_figure10b_shape(self):
        result = figure10b_tracking_energy(ew_values=(2, 4), num_frames=600,
                                           adaptive_inference_rate=0.3)
        assert result.normalized_energy("MDNet") == pytest.approx(1.0)
        assert result.normalized_energy("EW-2") < 1.0
        assert result.normalized_energy("EW-A") <= result.normalized_energy("EW-2") + 0.02
        assert result.breakdowns["EW-A"].inference_rate == pytest.approx(0.3, abs=0.01)
