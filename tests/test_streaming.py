"""Tests for the multi-stream scheduler (StreamMultiplexer)."""

from __future__ import annotations

import pytest

from repro.core.backends import tracking_backend_for
from repro.core.spec import PipelineSpec
from repro.core.streaming import StreamMultiplexer
from repro.core.types import FrameKind

from test_session import assert_results_identical


@pytest.fixture
def pipeline():
    return PipelineSpec(extrapolation_window=4).build(tracking_backend_for("mdnet"))


class TestSchedulingEquivalence:
    def test_interleaving_never_changes_per_stream_results(
        self, pipeline, tiny_tracking_dataset
    ):
        """Scheduling order affects latency, never output."""
        sequences = tiny_tracking_dataset.sequences
        mux = StreamMultiplexer(pipeline)
        results, _ = mux.run_streams(sequences)
        assert set(results) == {sequence.name for sequence in sequences}
        for sequence in sequences:
            isolated = PipelineSpec(extrapolation_window=4).build(
                tracking_backend_for("mdnet")
            ).run(sequence)
            assert_results_identical(isolated, results[sequence.name])

    def test_adaptive_streams_stay_isolated(self, tiny_tracking_dataset):
        """One stream's disagreement feedback must not move another's window."""
        spec = PipelineSpec(extrapolation_window="adaptive")
        pipeline = spec.build(tracking_backend_for("mdnet"))
        mux = StreamMultiplexer(pipeline)
        results, _ = mux.run_streams(tiny_tracking_dataset.sequences)
        for sequence in tiny_tracking_dataset.sequences:
            isolated = spec.build(tracking_backend_for("mdnet")).run(sequence)
            assert_results_identical(isolated, results[sequence.name])

    def test_incremental_submission(self, pipeline, tiny_tracking_dataset):
        """Frames can arrive round-robin (as live cameras would deliver them)."""
        sequences = tiny_tracking_dataset.sequences[:2]
        mux = StreamMultiplexer(pipeline)
        ids = [mux.add_stream(sequence) for sequence in sequences]
        num_frames = max(sequence.num_frames for sequence in sequences)
        for index in range(num_frames):
            for stream_id, sequence in zip(ids, sequences):
                if index < sequence.num_frames:
                    mux.submit(stream_id, sequence.frame(index))
            mux.pump()
        results = mux.finish()
        for stream_id, sequence in zip(ids, sequences):
            isolated = PipelineSpec(extrapolation_window=4).build(
                tracking_backend_for("mdnet")
            ).run(sequence)
            assert_results_identical(isolated, results[stream_id])


class TestScheduler:
    def test_iframes_are_batched(self, pipeline, tiny_tracking_dataset):
        mux = StreamMultiplexer(pipeline, max_inference_batch=4)
        _, report = mux.run_streams(tiny_tracking_dataset.sequences)
        assert report.inference_batches > 0
        # All four streams start in phase (frame 0 is always an I-frame), so
        # the scheduler gets at least one full-width batch.
        assert max(report.batch_sizes) == min(4, len(tiny_tracking_dataset))
        assert sum(report.batch_sizes) == report.inference_frames

    def test_batch_cap_respected(self, pipeline, tiny_tracking_dataset):
        mux = StreamMultiplexer(pipeline, max_inference_batch=2)
        _, report = mux.run_streams(tiny_tracking_dataset.sequences)
        assert max(report.batch_sizes) <= 2

    def test_e_burst_bounds_per_round_work(self, tiny_tracking_dataset):
        """With burst=1, one pump round cannot drain a deep E-queue."""
        spec = PipelineSpec(extrapolation_window=8)
        pipeline = spec.build(tracking_backend_for("mdnet"))
        mux = StreamMultiplexer(pipeline, e_frame_burst=1, max_inference_batch=1)
        sequence = tiny_tracking_dataset.sequences[0]
        stream_id = mux.add_stream(sequence)
        mux.feed_sequence(stream_id, sequence)
        processed = mux.pump()
        # One I-frame (frame 0) or one E-frame per round, never more.
        assert processed == 1
        assert mux.pending_frames == sequence.num_frames - 1

    def test_fairness_across_streams(self, pipeline, tiny_tracking_dataset):
        """Every stream makes progress long before any queue drains fully."""
        sequences = tiny_tracking_dataset.sequences
        mux = StreamMultiplexer(pipeline, e_frame_burst=2)
        ids = []
        for sequence in sequences:
            stream_id = mux.add_stream(sequence)
            mux.feed_sequence(stream_id, sequence)
            ids.append(stream_id)
        mux.pump()
        mux.pump()
        progressed = [mux.stats_for(stream_id).frames_processed for stream_id in ids]
        assert all(count > 0 for count in progressed)
        mux.finish()

    def test_failed_frame_is_requeued_for_retry(self, pipeline, tiny_tracking_dataset):
        """A submit failure must not silently drop the frame from the queue."""
        sequence = tiny_tracking_dataset.sequences[0]
        mux = StreamMultiplexer(pipeline)
        # Dimension-bound tracking stream: the first frame needs truth.
        stream_id = mux.add_stream(
            width=sequence.width, height=sequence.height, name="live"
        )
        mux.submit(stream_id, sequence.frame(0))  # no truth: will fail
        with pytest.raises(ValueError, match="no annotated objects"):
            mux.pump()
        assert mux.pending_frames == 1  # frame is back at the head
        # Replace the bad head with a good one and the stream recovers.
        mux._streams[stream_id].queue.clear()
        mux.submit(stream_id, sequence.frame(0), truth=sequence.truth_detections(0))
        mux.pump()
        assert mux.stats_for(stream_id).frames_processed == 1
        mux.finish()

    def test_validation(self, pipeline):
        with pytest.raises(ValueError):
            StreamMultiplexer(pipeline, e_frame_burst=0)
        with pytest.raises(ValueError):
            StreamMultiplexer(pipeline, max_inference_batch=0)
        mux = StreamMultiplexer(pipeline)
        with pytest.raises(KeyError, match="unknown stream"):
            mux.submit("nope", None)


class TestStats:
    def test_per_stream_stats_account_every_frame(self, pipeline, tiny_tracking_dataset):
        mux = StreamMultiplexer(pipeline)
        _, report = mux.run_streams(tiny_tracking_dataset.sequences)
        for stats in report.streams:
            assert stats.frames_submitted == stats.frames_processed
            assert stats.pending == 0
            assert (
                stats.inference_frames + stats.extrapolation_frames
                == stats.frames_processed
            )
            assert stats.max_queue_depth > 0
            assert stats.busy_s > 0.0
            assert stats.mean_service_latency_s > 0.0
            # EW-4 processes 1 I-frame per 4 frames.
            assert stats.inference_rate == pytest.approx(0.25, abs=0.1)

    def test_pump_driven_report_has_wall_time(self, pipeline, tiny_tracking_dataset):
        """Always-on loops drive pump() directly and never drain()."""
        mux = StreamMultiplexer(pipeline)
        sequence = tiny_tracking_dataset.sequences[0]
        stream_id = mux.add_stream(sequence)
        for index in range(8):
            mux.submit(stream_id, sequence.frame(index))
            mux.pump()
        report = mux.report()
        assert report.frames_processed == 8
        assert report.wall_s > 0.0
        assert report.aggregate_fps > 0.0
        mux.finish()

    def test_aggregate_report(self, pipeline, tiny_tracking_dataset):
        mux = StreamMultiplexer(pipeline)
        _, report = mux.run_streams(tiny_tracking_dataset.sequences)
        total = sum(len(sequence) for sequence in tiny_tracking_dataset.sequences)
        assert report.frames_processed == total
        assert report.inference_frames + report.extrapolation_frames == total
        assert report.wall_s > 0.0
        assert report.aggregate_fps > 0.0
        assert report.mean_batch_size >= 1.0

    def test_duplicate_stream_names_get_suffixes(self, pipeline, tiny_tracking_dataset):
        mux = StreamMultiplexer(pipeline)
        sequence = tiny_tracking_dataset.sequences[0]
        first = mux.add_stream(sequence)
        second = mux.add_stream(sequence)
        assert first == sequence.name
        assert second == f"{sequence.name}#1"
        with pytest.raises(ValueError, match="already exists"):
            mux.add_stream(sequence, name=first)
