"""Tests for the multi-stream scheduler (StreamMultiplexer)."""

from __future__ import annotations

import pytest

from repro.core.backends import tracking_backend_for
from repro.core.spec import PipelineSpec
from repro.core.streaming import StreamMultiplexer

from test_session import assert_results_identical


@pytest.fixture
def pipeline():
    return PipelineSpec(extrapolation_window=4).build(tracking_backend_for("mdnet"))


class TestSchedulingEquivalence:
    def test_interleaving_never_changes_per_stream_results(
        self, pipeline, tiny_tracking_dataset
    ):
        """Scheduling order affects latency, never output."""
        sequences = tiny_tracking_dataset.sequences
        mux = StreamMultiplexer(pipeline)
        results, _ = mux.run_streams(sequences)
        assert set(results) == {sequence.name for sequence in sequences}
        for sequence in sequences:
            isolated = PipelineSpec(extrapolation_window=4).build(
                tracking_backend_for("mdnet")
            ).run(sequence)
            assert_results_identical(isolated, results[sequence.name])

    def test_adaptive_streams_stay_isolated(self, tiny_tracking_dataset):
        """One stream's disagreement feedback must not move another's window."""
        spec = PipelineSpec(extrapolation_window="adaptive")
        pipeline = spec.build(tracking_backend_for("mdnet"))
        mux = StreamMultiplexer(pipeline)
        results, _ = mux.run_streams(tiny_tracking_dataset.sequences)
        for sequence in tiny_tracking_dataset.sequences:
            isolated = spec.build(tracking_backend_for("mdnet")).run(sequence)
            assert_results_identical(isolated, results[sequence.name])

    def test_incremental_submission(self, pipeline, tiny_tracking_dataset):
        """Frames can arrive round-robin (as live cameras would deliver them)."""
        sequences = tiny_tracking_dataset.sequences[:2]
        mux = StreamMultiplexer(pipeline)
        ids = [mux.add_stream(sequence) for sequence in sequences]
        num_frames = max(sequence.num_frames for sequence in sequences)
        for index in range(num_frames):
            for stream_id, sequence in zip(ids, sequences):
                if index < sequence.num_frames:
                    mux.submit(stream_id, sequence.frame(index))
            mux.pump()
        results = mux.finish()
        for stream_id, sequence in zip(ids, sequences):
            isolated = PipelineSpec(extrapolation_window=4).build(
                tracking_backend_for("mdnet")
            ).run(sequence)
            assert_results_identical(isolated, results[stream_id])


class TestScheduler:
    def test_iframes_are_batched(self, pipeline, tiny_tracking_dataset):
        mux = StreamMultiplexer(pipeline, max_inference_batch=4)
        _, report = mux.run_streams(tiny_tracking_dataset.sequences)
        assert report.inference_batches > 0
        # All four streams start in phase (frame 0 is always an I-frame), so
        # the scheduler gets at least one full-width batch.
        assert max(report.batch_sizes) == min(4, len(tiny_tracking_dataset))
        assert sum(report.batch_sizes) == report.inference_frames

    def test_batch_cap_respected(self, pipeline, tiny_tracking_dataset):
        mux = StreamMultiplexer(pipeline, max_inference_batch=2)
        _, report = mux.run_streams(tiny_tracking_dataset.sequences)
        assert max(report.batch_sizes) <= 2

    def test_e_burst_bounds_per_round_work(self, tiny_tracking_dataset):
        """With burst=1, one pump round cannot drain a deep E-queue."""
        spec = PipelineSpec(extrapolation_window=8)
        pipeline = spec.build(tracking_backend_for("mdnet"))
        mux = StreamMultiplexer(pipeline, e_frame_burst=1, max_inference_batch=1)
        sequence = tiny_tracking_dataset.sequences[0]
        stream_id = mux.add_stream(sequence)
        mux.feed_sequence(stream_id, sequence)
        processed = mux.pump()
        # One I-frame (frame 0) or one E-frame per round, never more.
        assert processed == 1
        assert mux.pending_frames == sequence.num_frames - 1

    def test_fairness_across_streams(self, pipeline, tiny_tracking_dataset):
        """Every stream makes progress long before any queue drains fully."""
        sequences = tiny_tracking_dataset.sequences
        mux = StreamMultiplexer(pipeline, e_frame_burst=2)
        ids = []
        for sequence in sequences:
            stream_id = mux.add_stream(sequence)
            mux.feed_sequence(stream_id, sequence)
            ids.append(stream_id)
        mux.pump()
        mux.pump()
        progressed = [mux.stats_for(stream_id).frames_processed for stream_id in ids]
        assert all(count > 0 for count in progressed)
        mux.finish()

    def test_failed_frame_is_requeued_for_retry(self, pipeline, tiny_tracking_dataset):
        """A submit failure must not silently drop the frame from the queue."""
        sequence = tiny_tracking_dataset.sequences[0]
        mux = StreamMultiplexer(pipeline)
        # Dimension-bound tracking stream: the first frame needs truth.
        stream_id = mux.add_stream(
            width=sequence.width, height=sequence.height, name="live"
        )
        mux.submit(stream_id, sequence.frame(0))  # no truth: will fail
        with pytest.raises(ValueError, match="no annotated objects"):
            mux.pump()
        assert mux.pending_frames == 1  # frame is back at the head
        # Replace the bad head with a good one and the stream recovers.
        mux._streams[stream_id].queue.clear()
        mux.submit(stream_id, sequence.frame(0), truth=sequence.truth_detections(0))
        mux.pump()
        assert mux.stats_for(stream_id).frames_processed == 1
        mux.finish()

    def test_validation(self, pipeline):
        with pytest.raises(ValueError):
            StreamMultiplexer(pipeline, e_frame_burst=0)
        with pytest.raises(ValueError):
            StreamMultiplexer(pipeline, max_inference_batch=0)
        mux = StreamMultiplexer(pipeline)
        with pytest.raises(KeyError, match="unknown stream"):
            mux.submit("nope", None)


class TestStats:
    def test_per_stream_stats_account_every_frame(self, pipeline, tiny_tracking_dataset):
        mux = StreamMultiplexer(pipeline)
        _, report = mux.run_streams(tiny_tracking_dataset.sequences)
        for stats in report.streams:
            assert stats.frames_submitted == stats.frames_processed
            assert stats.pending == 0
            assert (
                stats.inference_frames + stats.extrapolation_frames
                == stats.frames_processed
            )
            assert stats.max_queue_depth > 0
            assert stats.busy_s > 0.0
            assert stats.mean_service_latency_s > 0.0
            # EW-4 processes 1 I-frame per 4 frames.
            assert stats.inference_rate == pytest.approx(0.25, abs=0.1)

    def test_pump_driven_report_has_wall_time(self, pipeline, tiny_tracking_dataset):
        """Always-on loops drive pump() directly and never drain()."""
        mux = StreamMultiplexer(pipeline)
        sequence = tiny_tracking_dataset.sequences[0]
        stream_id = mux.add_stream(sequence)
        for index in range(8):
            mux.submit(stream_id, sequence.frame(index))
            mux.pump()
        report = mux.report()
        assert report.frames_processed == 8
        assert report.wall_s > 0.0
        assert report.aggregate_fps > 0.0
        mux.finish()

    def test_aggregate_report(self, pipeline, tiny_tracking_dataset):
        mux = StreamMultiplexer(pipeline)
        _, report = mux.run_streams(tiny_tracking_dataset.sequences)
        total = sum(len(sequence) for sequence in tiny_tracking_dataset.sequences)
        assert report.frames_processed == total
        assert report.inference_frames + report.extrapolation_frames == total
        assert report.wall_s > 0.0
        assert report.aggregate_fps > 0.0
        assert report.mean_batch_size >= 1.0

    def test_duplicate_stream_names_get_suffixes(self, pipeline, tiny_tracking_dataset):
        mux = StreamMultiplexer(pipeline)
        sequence = tiny_tracking_dataset.sequences[0]
        first = mux.add_stream(sequence)
        second = mux.add_stream(sequence)
        assert first == sequence.name
        assert second == f"{sequence.name}#1"
        with pytest.raises(ValueError, match="already exists"):
            mux.add_stream(sequence, name=first)


class TestEnergyPolicy:
    """The energy/deadline-aware scheduler and per-stream cost metering."""

    def _energy_mux(self, spec=None, **kwargs):
        from repro.nn.models import build_mdnet
        from repro.soc import VisionSoC

        spec = spec or PipelineSpec(extrapolation_window=4)
        pipeline = spec.build(tracking_backend_for("mdnet"))
        return StreamMultiplexer(
            pipeline, soc=VisionSoC(), network=build_mdnet(), **kwargs
        )

    def test_energy_policy_results_identical_to_fair(self, tiny_tracking_dataset):
        """Scheduling policy affects latency and energy, never outputs."""
        sequences = tiny_tracking_dataset.sequences
        spec = PipelineSpec(extrapolation_window=4)
        fair, _ = StreamMultiplexer(
            spec.build(tracking_backend_for("mdnet")), policy="fair"
        ).run_streams(sequences)
        energy, _ = StreamMultiplexer(
            spec.build(tracking_backend_for("mdnet")), policy="energy"
        ).run_streams(sequences)
        for name in fair:
            assert_results_identical(fair[name], energy[name])

    def test_energy_policy_defers_partial_batches(self, tiny_tracking_dataset):
        """Under backlog, the energy policy fills batches at least as well."""
        sequences = tiny_tracking_dataset.sequences
        spec = PipelineSpec(extrapolation_window=4)

        def mean_batch(policy):
            mux = StreamMultiplexer(
                spec.build(tracking_backend_for("mdnet")),
                policy=policy,
                max_inference_batch=len(sequences),
            )
            _, report = mux.run_streams(sequences)
            return report.mean_batch_size

        assert mean_batch("energy") >= mean_batch("fair")

    def test_deadline_forces_dispatch(self, tiny_tracking_dataset):
        """A lone I-head past its deadline is dispatched, batch full or not."""
        sequence = tiny_tracking_dataset.sequences[0]
        mux = self._energy_mux(policy="energy", deadline_frames=2, max_inference_batch=8)
        stream_id = mux.add_stream(sequence)
        mux.feed_sequence(stream_id, sequence)
        assert mux.drain() == sequence.num_frames

    def test_per_stream_energy_breakdowns(self, tiny_tracking_dataset):
        mux = self._energy_mux()
        results, report = mux.run_streams(tiny_tracking_dataset.sequences)
        assert set(report.stream_energy) == set(results)
        for name, breakdown in report.stream_energy.items():
            assert breakdown.num_frames == len(results[name])
            assert breakdown.total_energy_j > 0.0
            # EW-4 tracking: an I-frame every 4 frames.
            assert breakdown.inference_rate == pytest.approx(0.25, abs=0.1)
        # The aggregate is the exact shared-SoC figure: static power (NNX
        # idle, DRAM background, MC idle) settled once across all streams,
        # strictly below the per-stream-sum upper bound for several streams.
        upper_bound = sum(b.total_energy_j for b in report.stream_energy.values())
        assert report.aggregate_energy_upper_bound_j == pytest.approx(upper_bound)
        assert report.shared_energy is not None
        assert report.aggregate_energy_j == pytest.approx(
            report.shared_energy.total_energy_j
        )
        assert report.aggregate_energy_j < upper_bound
        assert report.aggregate_energy_per_frame_j > 0.0
        assert report.aggregate_power_w > 0.0
        assert report.queueing is not None and report.queueing.utilization > 0.0

    def test_single_stream_aggregate_equals_per_stream_sum(
        self, tiny_tracking_dataset
    ):
        """With one stream there is nothing to share: exact == upper bound."""
        mux = self._energy_mux()
        _, report = mux.run_streams(tiny_tracking_dataset.sequences[:1])
        assert report.shared_energy is not None
        assert report.aggregate_energy_j == pytest.approx(
            report.aggregate_energy_upper_bound_j
        )

    def test_per_stream_soc_config_prices_heterogeneous_cameras(
        self, tiny_tracking_dataset
    ):
        """Streams may meter against different capture settings (one SoC pool)."""
        sequences = tiny_tracking_dataset.sequences[:2]
        mux = self._energy_mux()
        # Same pixel stream, but the slow camera's modeled frame period is
        # twice as long, so its capture-bound wall clock (and therefore its
        # frontend energy) must come out higher.
        slow = mux.add_stream(sequences[0], name="slow", soc_config="1080p30")
        fast = mux.add_stream(sequences[1], name="fast", soc_config="1080p60")
        for sequence, stream_id in zip(sequences, (slow, fast)):
            mux.feed_sequence(stream_id, sequence)
        mux.finish()
        report = mux.report()
        assert (
            report.stream_energy["slow"].wall_time_s
            > report.stream_energy["fast"].wall_time_s
        )
        assert (
            report.stream_energy["slow"].frontend_energy_j
            > report.stream_energy["fast"].frontend_energy_j
        )
        assert report.shared_energy is not None

    def test_soc_config_requires_energy_model(self, pipeline):
        mux = StreamMultiplexer(pipeline)
        with pytest.raises(ValueError, match="needs an energy model"):
            mux.add_stream(width=64, height=64, name="cam", soc_config="720p30")

    def test_batched_iframes_amortise_weight_traffic(self, tiny_tracking_dataset):
        """Multi-stream batches must price below one-stream-at-a-time runs."""
        sequences = tiny_tracking_dataset.sequences
        batched = self._energy_mux(max_inference_batch=len(sequences))
        _, batched_report = batched.run_streams(sequences)
        solo_energy = {}
        for sequence in sequences:
            mux = self._energy_mux(max_inference_batch=1)
            _, report = mux.run_streams([sequence])
            solo_energy.update(
                {name: b.total_traffic_bytes for name, b in report.stream_energy.items()}
            )
        for name, breakdown in batched_report.stream_energy.items():
            assert breakdown.total_traffic_bytes < solo_energy[name]

    def test_no_meter_without_energy_model(self, pipeline, tiny_tracking_dataset):
        mux = StreamMultiplexer(pipeline)
        _, report = mux.run_streams(tiny_tracking_dataset.sequences[:1])
        assert report.stream_energy == {}
        assert report.aggregate_energy_j == 0.0
        assert report.aggregate_power_w == 0.0

    def test_validation(self, pipeline):
        with pytest.raises(ValueError, match="unknown policy"):
            StreamMultiplexer(pipeline, policy="greedy")
        with pytest.raises(ValueError, match="deadline_frames"):
            StreamMultiplexer(pipeline, policy="energy", deadline_frames=0)
        with pytest.raises(ValueError, match="soc and network"):
            from repro.soc import VisionSoC

            StreamMultiplexer(pipeline, soc=VisionSoC())

    def test_stalled_iframe_cannot_starve_behind_e_traffic(self, tiny_tracking_dataset):
        """A lone deferred I-head is dispatched once its round-age deadline hits,
        even while other streams keep every pump round busy with E-frames."""
        sequences = tiny_tracking_dataset.sequences[:2]
        mux = self._energy_mux(policy="energy", deadline_frames=3, max_inference_batch=8)
        starved = mux.add_stream(sequences[0], name="starved")
        busy = mux.add_stream(sequences[1], name="busy")
        # Warm both streams past frame 0 so the busy stream has E-heads.
        for index in range(2):
            mux.submit(starved, sequences[0].frame(index))
            mux.submit(busy, sequences[1].frame(index))
        mux.drain()
        # The starved stream now queues exactly one I-frame (EW-4 phase
        # puts frame 4 on an inference boundary takes submitting 2 more).
        for index in range(2, 5):
            mux.submit(starved, sequences[0].frame(index))
        mux.drain()
        assert mux.stats_for(starved).pending == 0
        # Lone I-head, batch never fills, busy stream keeps the pump going.
        mux.submit(starved, sequences[0].frame(5))
        waited = 0
        for index in range(2, sequences[1].num_frames):
            mux.submit(busy, sequences[1].frame(index))
            mux.pump()
            if mux.stats_for(starved).pending:
                waited += 1
        assert mux.stats_for(starved).pending == 0
        # ...and it did not wait for the queues to empty: it was dispatched
        # within deadline_frames scheduling rounds.
        assert waited <= 3

    def test_meterless_multiplexer_drains_session_telemetry(
        self, pipeline, tiny_tracking_dataset
    ):
        """Without an energy model the telemetry buffer must still be freed."""
        sequence = tiny_tracking_dataset.sequences[0]
        mux = StreamMultiplexer(pipeline)
        stream_id = mux.add_stream(sequence)
        mux.feed_sequence(stream_id, sequence)
        mux.drain()
        session = mux._streams[stream_id].session
        assert session._telemetry == []

    def test_deadline_breached_stream_boards_a_truncated_batch(
        self, tiny_tracking_dataset
    ):
        """When more I-heads are ready than max_inference_batch, an aged
        head must not lose its seat to deeper queues round after round."""
        sequences = tiny_tracking_dataset.sequences
        assert len(sequences) >= 3
        # Every frame is an I-frame: deep busy queues always contend.
        spec = PipelineSpec(extrapolation_window=4, expose_motion_vectors=False)
        mux = StreamMultiplexer(
            spec.build(tracking_backend_for("mdnet")),
            policy="energy",
            deadline_frames=3,
            max_inference_batch=2,
        )
        starved = mux.add_stream(sequences[0], name="starved")
        busy_ids = [
            mux.add_stream(sequences[i % len(sequences)], name=f"busy{i}")
            for i in range(1, 4)
        ]
        mux.submit(starved, sequences[0].frame(0))
        rounds_waited = None
        for round_index in range(12):
            for i, stream_id in enumerate(busy_ids):
                sequence = sequences[(i + 1) % len(sequences)]
                mux.submit(stream_id, sequence.frame(round_index % sequence.num_frames))
                mux.submit(stream_id, sequence.frame(round_index % sequence.num_frames))
            mux.pump()
            if rounds_waited is None and not mux.stats_for(starved).pending:
                rounds_waited = round_index + 1
        # Dispatched within ~deadline_frames rounds despite never having
        # the deepest queue.
        assert rounds_waited is not None and rounds_waited <= 4

    def test_extrapolation_host_reaches_stream_meters(self, tiny_tracking_dataset):
        """extrapolation_on_cpu=True must price E-frames on the CPU cluster."""
        from repro.nn.models import build_mdnet
        from repro.soc import VisionSoC

        sequences = tiny_tracking_dataset.sequences[:2]
        spec = PipelineSpec(extrapolation_window=4)

        def total_cpu_energy(on_cpu):
            mux = StreamMultiplexer(
                spec.build(tracking_backend_for("mdnet")),
                soc=VisionSoC(),
                network=build_mdnet(),
                extrapolation_on_cpu=on_cpu,
            )
            _, report = mux.run_streams(sequences)
            return sum(b.cpu_energy_j for b in report.stream_energy.values())

        assert total_cpu_energy(False) == 0.0
        assert total_cpu_energy(True) > 0.0


class TestShardedWorkers:
    """workers=N shards streams over worker processes; outputs never change."""

    def test_sharded_mux_matches_in_process(self, tiny_tracking_dataset):
        sequences = tiny_tracking_dataset.sequences
        spec = PipelineSpec(extrapolation_window=4)
        serial, _ = StreamMultiplexer(
            spec.build(tracking_backend_for("mdnet"))
        ).run_streams(sequences)
        sharded, report = StreamMultiplexer(
            spec.build(tracking_backend_for("mdnet")), workers=2
        ).run_streams(sequences)
        assert report.workers == 2
        assert report.transport == "shm"
        assert report.frames_processed == sum(len(s) for s in sequences)
        for name in serial:
            assert_results_identical(serial[name], sharded[name])

    def test_sharded_energy_metering_stays_exact(self, tiny_tracking_dataset):
        from repro.nn.models import build_mdnet
        from repro.soc import VisionSoC

        spec = PipelineSpec(extrapolation_window=4)
        mux = StreamMultiplexer(
            spec.build(tracking_backend_for("mdnet")),
            soc=VisionSoC(),
            network=build_mdnet(),
            workers=2,
        )
        results, report = mux.run_streams(tiny_tracking_dataset.sequences)
        assert set(report.stream_energy) == set(results)
        assert report.shared_energy is not None
        assert 0.0 < report.aggregate_energy_j < report.aggregate_energy_upper_bound_j

    def test_single_worker_resolves_in_process(self, pipeline):
        mux = StreamMultiplexer(pipeline, workers=1)
        assert mux.workers == 1
        assert mux.transport_mode == "inproc"
        mux.close()
