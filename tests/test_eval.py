"""Tests for the evaluation metrics (matching, detection AP, tracking success)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import BoundingBox
from repro.core.types import Detection, FrameKind, FrameResult, SequenceResult
from repro.eval.attributes import attribute_precision
from repro.eval.detection import average_precision, evaluate_detection, precision_curve
from repro.eval.matching import greedy_match, match_ious
from repro.eval.tracking import (
    evaluate_tracking,
    per_sequence_success,
    success_curve,
    success_rate,
)
from repro.video.attributes import VisualAttribute
from repro.video.datasets import Dataset
from repro.video.sequence import VideoSequence


# ----------------------------------------------------------------------
# Matching
# ----------------------------------------------------------------------
class TestGreedyMatch:
    def test_empty_inputs(self):
        assert greedy_match([], []) == []
        assert greedy_match([BoundingBox(0, 0, 5, 5)], []) == []

    def test_one_to_one(self):
        predictions = [BoundingBox(0, 0, 10, 10), BoundingBox(100, 100, 10, 10)]
        truths = [BoundingBox(1, 1, 10, 10), BoundingBox(99, 99, 10, 10)]
        matches = greedy_match(predictions, truths)
        assert len(matches) == 2
        matched_pairs = {(p, t) for p, t, _ in matches}
        assert matched_pairs == {(0, 0), (1, 1)}

    def test_each_truth_used_once(self):
        truths = [BoundingBox(0, 0, 10, 10)]
        predictions = [BoundingBox(0, 0, 10, 10), BoundingBox(1, 1, 10, 10)]
        matches = greedy_match(predictions, truths)
        assert len(matches) == 1
        assert matches[0][0] == 0  # the better-overlapping prediction wins

    def test_zero_iou_never_matched(self):
        matches = greedy_match([BoundingBox(0, 0, 5, 5)], [BoundingBox(50, 50, 5, 5)])
        assert matches == []

    def test_match_ious_keys(self):
        predictions = [BoundingBox(0, 0, 10, 10)]
        truths = [BoundingBox(0, 0, 10, 10)]
        assert match_ious(predictions, truths) == {0: pytest.approx(1.0)}


# ----------------------------------------------------------------------
# Synthetic fixtures for metric tests
# ----------------------------------------------------------------------
def _single_object_dataset(num_frames: int = 10) -> Dataset:
    frames = np.zeros((num_frames, 64, 96), dtype=np.uint8)
    truth = {0: [BoundingBox(10.0 + 2 * t, 10.0, 20, 20) for t in range(num_frames)]}
    sequence = VideoSequence(
        name="metric_seq",
        frames=frames,
        ground_truth=truth,
        attributes=frozenset({VisualAttribute.OCCLUSION}),
    )
    return Dataset(name="metric", sequences=[sequence])


def _perfect_results(dataset: Dataset) -> list:
    sequence = dataset.sequences[0]
    frames = []
    for index in range(sequence.num_frames):
        box = sequence.truth_for(0)[index]
        frames.append(
            FrameResult(index, FrameKind.INFERENCE, [Detection(box=box, object_id=0)])
        )
    return [SequenceResult(sequence.name, frames)]


def _offset_results(dataset: Dataset, offset: float) -> list:
    sequence = dataset.sequences[0]
    frames = []
    for index in range(sequence.num_frames):
        box = sequence.truth_for(0)[index].translate(offset, 0)
        frames.append(
            FrameResult(index, FrameKind.EXTRAPOLATION, [Detection(box=box, object_id=0)])
        )
    return [SequenceResult(sequence.name, frames)]


# ----------------------------------------------------------------------
# Detection metrics
# ----------------------------------------------------------------------
class TestDetectionMetrics:
    def test_perfect_predictions_have_ap_one(self):
        dataset = _single_object_dataset()
        results = _perfect_results(dataset)
        evaluation = evaluate_detection(results, dataset, 0.5)
        assert evaluation.average_precision == pytest.approx(1.0)
        assert evaluation.recall == pytest.approx(1.0)
        assert evaluation.false_positives == 0

    def test_offset_predictions_fail_high_thresholds(self):
        dataset = _single_object_dataset()
        results = _offset_results(dataset, offset=10.0)  # IoU = 1/3
        assert average_precision(results, dataset, 0.2) == pytest.approx(1.0)
        assert average_precision(results, dataset, 0.5) == pytest.approx(0.0)

    def test_false_positive_lowers_precision(self):
        dataset = _single_object_dataset(num_frames=2)
        results = _perfect_results(dataset)
        results[0].frames[0].detections.append(
            Detection(box=BoundingBox(60, 40, 10, 10), label="false_positive")
        )
        evaluation = evaluate_detection(results, dataset, 0.5)
        assert evaluation.true_positives == 2
        assert evaluation.false_positives == 1
        assert evaluation.average_precision == pytest.approx(2.0 / 3.0)

    def test_precision_curve_monotonically_decreases(self):
        dataset = _single_object_dataset()
        results = _offset_results(dataset, offset=4.0)
        curve = precision_curve(results, dataset)
        thresholds = sorted(curve.keys())
        values = [curve[t] for t in thresholds]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
        assert values[0] == pytest.approx(1.0)

    def test_empty_results_give_zero(self):
        dataset = _single_object_dataset(num_frames=2)
        empty = [
            SequenceResult(
                dataset.sequences[0].name,
                [FrameResult(i, FrameKind.INFERENCE, []) for i in range(2)],
            )
        ]
        assert average_precision(empty, dataset, 0.5) == 0.0

    def test_unknown_sequence_name_raises(self):
        dataset = _single_object_dataset(num_frames=2)
        bogus = [SequenceResult("missing", [FrameResult(0, FrameKind.INFERENCE, [])])]
        with pytest.raises(KeyError):
            average_precision(bogus, dataset, 0.5)


# ----------------------------------------------------------------------
# Tracking metrics
# ----------------------------------------------------------------------
class TestTrackingMetrics:
    def test_perfect_tracking_success_is_one(self):
        dataset = _single_object_dataset()
        results = _perfect_results(dataset)
        assert success_rate(results, dataset, 0.5) == pytest.approx(1.0)

    def test_offset_tracking_fails_at_high_threshold(self):
        dataset = _single_object_dataset()
        results = _offset_results(dataset, offset=10.0)
        assert success_rate(results, dataset, 0.3) == pytest.approx(1.0)
        assert success_rate(results, dataset, 0.5) == pytest.approx(0.0)

    def test_success_curve_decreasing(self):
        dataset = _single_object_dataset()
        results = _offset_results(dataset, offset=3.0)
        curve = success_curve(results, dataset)
        thresholds = sorted(curve.keys())
        values = [curve[t] for t in thresholds]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_absent_target_frames_are_skipped(self):
        frames = np.zeros((3, 64, 96), dtype=np.uint8)
        truth = {0: [BoundingBox(10, 10, 20, 20), None, BoundingBox(14, 10, 20, 20)]}
        sequence = VideoSequence(name="gap", frames=frames, ground_truth=truth)
        dataset = Dataset(name="gap_ds", sequences=[sequence])
        results = [
            SequenceResult(
                "gap",
                [
                    FrameResult(0, FrameKind.INFERENCE, [Detection(box=truth[0][0], object_id=0)]),
                    FrameResult(1, FrameKind.EXTRAPOLATION, [Detection(box=truth[0][0], object_id=0)]),
                    FrameResult(2, FrameKind.EXTRAPOLATION, [Detection(box=truth[0][2], object_id=0)]),
                ],
            )
        ]
        evaluation = evaluate_tracking(results, dataset, 0.5)
        assert evaluation.evaluated_frames == 2
        assert evaluation.success_rate == pytest.approx(1.0)

    def test_per_sequence_success_keys(self):
        dataset = _single_object_dataset()
        results = _perfect_results(dataset)
        per_sequence = per_sequence_success(results, dataset, 0.5)
        assert per_sequence == {"metric_seq": pytest.approx(1.0)}


# ----------------------------------------------------------------------
# Attribute breakdown
# ----------------------------------------------------------------------
class TestAttributeBreakdown:
    def test_breakdown_reports_only_present_attributes(self):
        dataset = _single_object_dataset()
        results = _perfect_results(dataset)
        breakdown = attribute_precision(results, dataset, 0.5)
        assert breakdown == {VisualAttribute.OCCLUSION: pytest.approx(1.0)}

    def test_breakdown_on_real_dataset(self, tiny_tracking_dataset):
        from repro.core import PipelineSpec, tracking_backend_for

        pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet"))
        results = pipeline.run_dataset(tiny_tracking_dataset)
        breakdown = attribute_precision(results, tiny_tracking_dataset, 0.5)
        assert breakdown
        assert all(0.0 <= value <= 1.0 for value in breakdown.values())
