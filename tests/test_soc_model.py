"""Tests for the SoC-level energy / performance model (Figs. 9b, 9c, 10b)."""

from __future__ import annotations

import pytest

from repro.core.types import FrameKind, FrameResult, SequenceResult
from repro.nn.models import build_mdnet, build_tiny_yolo, build_yolo_v2
from repro.soc.soc import FrameSchedule, VisionSoC


@pytest.fixture(scope="module")
def soc():
    return VisionSoC()


@pytest.fixture(scope="module")
def yolo():
    return build_yolo_v2()


@pytest.fixture(scope="module")
def mdnet():
    return build_mdnet()


class TestFrameSchedule:
    def test_constant_ew_counts(self):
        schedule = FrameSchedule.constant_ew(4, num_frames=100)
        assert schedule.inference_frames == 25
        assert schedule.extrapolation_frames == 75
        assert schedule.inference_rate == pytest.approx(0.25)

    def test_ew1_is_all_inference(self):
        schedule = FrameSchedule.constant_ew(1, num_frames=50)
        assert schedule.inference_frames == 50
        assert schedule.extrapolation_frames == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameSchedule(num_frames=0, inference_frames=0, extrapolation_frames=0)
        with pytest.raises(ValueError):
            FrameSchedule(num_frames=10, inference_frames=4, extrapolation_frames=4)
        with pytest.raises(ValueError):
            FrameSchedule.constant_ew(0)

    def test_from_results(self):
        frames = [
            FrameResult(0, FrameKind.INFERENCE, []),
            FrameResult(1, FrameKind.EXTRAPOLATION, []),
            FrameResult(2, FrameKind.EXTRAPOLATION, []),
            FrameResult(3, FrameKind.INFERENCE, []),
        ]
        results = [SequenceResult("a", frames), SequenceResult("b", frames)]
        schedule = FrameSchedule.from_results(results)
        assert schedule.num_frames == 8
        assert schedule.inference_frames == 4
        # True ROI counts, no phantom floor: empty scenes price zero MC work.
        assert schedule.rois_per_frame == 0.0

    def test_empty_scene_prices_no_motion_controller_work(self, soc, mdnet):
        """An all-empty E-frame schedule must not charge extrapolation cost."""
        empty = FrameSchedule(
            num_frames=100, inference_frames=10, extrapolation_frames=90,
            rois_per_frame=0.0,
        )
        tracked = FrameSchedule(
            num_frames=100, inference_frames=10, extrapolation_frames=90,
            rois_per_frame=1.0,
        )
        empty_breakdown = soc.evaluate(mdnet, empty)
        tracked_breakdown = soc.evaluate(mdnet, tracked)
        # 10 K fixed-point ops per tracked ROI, none for empty scenes.
        assert empty_breakdown.total_ops < tracked_breakdown.total_ops
        extrapolation_ops = tracked_breakdown.total_ops - empty_breakdown.total_ops
        assert extrapolation_ops == pytest.approx(90 * 10_000.0)
        # The per-ROI result write-back disappears too (16 bytes per ROI).
        write_back = (
            tracked_breakdown.total_traffic_bytes - empty_breakdown.total_traffic_bytes
        )
        assert write_back == 90 * 16

    def test_clock_gated_motion_controller_idle(self, mdnet):
        """A lowered idle power only discounts the non-extrapolating time."""
        from dataclasses import replace

        from repro.soc.config import MotionControllerConfig, SoCConfig

        gated = VisionSoC(
            replace(SoCConfig(), motion_controller=MotionControllerConfig(idle_power_w=0.0))
        )
        always_on = VisionSoC()
        schedule = FrameSchedule.constant_ew(4, num_frames=600)
        gated_breakdown = gated.evaluate(mdnet, schedule)
        baseline = always_on.evaluate(mdnet, schedule)
        saved = baseline.backend_energy_j - gated_breakdown.backend_energy_j
        # Almost the whole wall clock is idle for the MC, so the saving is
        # close to (but strictly below) idle power x wall time.
        assert 0.0 < saved < 0.0022 * baseline.wall_time_s
        assert saved == pytest.approx(0.0022 * baseline.wall_time_s, rel=0.01)


class TestDetectionScenario:
    """The headline detection results of Sec. 6.1."""

    def test_baseline_fps_near_17(self, soc, yolo):
        baseline = soc.evaluate_constant_ew(yolo, 1)
        assert 14.0 <= baseline.fps <= 22.0

    def test_ew2_doubles_fps_and_saves_energy(self, soc, yolo):
        baseline = soc.evaluate_constant_ew(yolo, 1)
        ew2 = soc.evaluate_constant_ew(yolo, 2)
        assert ew2.fps == pytest.approx(2 * baseline.fps, rel=0.05)
        saving = ew2.energy_saving_vs(baseline)
        assert 0.35 <= saving <= 0.60  # paper: 45%

    def test_ew4_reaches_real_time_with_large_saving(self, soc, yolo):
        baseline = soc.evaluate_constant_ew(yolo, 1)
        ew4 = soc.evaluate_constant_ew(yolo, 4)
        assert ew4.fps == pytest.approx(60.0, rel=0.01)
        saving = ew4.energy_saving_vs(baseline)
        assert 0.55 <= saving <= 0.80  # paper: 66%

    def test_energy_decreases_monotonically_with_ew(self, soc, yolo):
        energies = [
            soc.evaluate_constant_ew(yolo, window).energy_per_frame_j
            for window in (1, 2, 4, 8, 16, 32)
        ]
        assert all(a > b for a, b in zip(energies, energies[1:]))

    def test_diminishing_returns_beyond_ew8(self, soc, yolo):
        """Frontend + memory dominate at large EW, so savings flatten out."""
        baseline = soc.evaluate_constant_ew(yolo, 1)
        ew8 = soc.evaluate_constant_ew(yolo, 8).normalized_to(baseline)
        ew32 = soc.evaluate_constant_ew(yolo, 32).normalized_to(baseline)
        assert (ew8 - ew32) < 0.10

    def test_frontend_energy_constant_at_capped_fps(self, soc, yolo):
        ew4 = soc.evaluate_constant_ew(yolo, 4)
        ew32 = soc.evaluate_constant_ew(yolo, 32)
        assert ew4.frontend_energy_per_frame_j == pytest.approx(
            ew32.frontend_energy_per_frame_j, rel=0.01
        )

    def test_cpu_extrapolation_negates_most_of_the_benefit(self, soc, yolo):
        """EW-8@CPU costs about as much as EW-4 on the dedicated IP (Fig. 9b)."""
        ew4 = soc.evaluate_constant_ew(yolo, 4)
        ew8 = soc.evaluate_constant_ew(yolo, 8)
        ew8_cpu = soc.evaluate_constant_ew(yolo, 8, extrapolation_on_cpu=True)
        assert ew8_cpu.energy_per_frame_j > 1.3 * ew8.energy_per_frame_j
        assert ew8_cpu.energy_per_frame_j == pytest.approx(ew4.energy_per_frame_j, rel=0.25)

    def test_tiny_yolo_worse_than_ew32(self, soc, yolo):
        """Tiny YOLO burns more energy than EW-32 despite its truncated network."""
        tiny = soc.evaluate_constant_ew(build_tiny_yolo(), 1)
        ew32 = soc.evaluate_constant_ew(yolo, 32)
        assert tiny.energy_per_frame_j > 1.3 * ew32.energy_per_frame_j

    def test_iframe_and_eframe_traffic_match_paper_scale(self, soc, yolo):
        """Fig. 9c: I-frames ~646 MB, E-frames tens of MB."""
        baseline = soc.evaluate_constant_ew(yolo, 1)
        assert baseline.traffic_per_frame_bytes == pytest.approx(646e6, rel=0.20)
        ew32 = soc.evaluate_constant_ew(yolo, 32)
        eframe_traffic = (
            ew32.total_traffic_bytes
            - ew32.inference_rate * ew32.num_frames * baseline.traffic_per_frame_bytes
        ) / (ew32.num_frames * (1 - ew32.inference_rate))
        assert 15e6 <= eframe_traffic <= 35e6

    def test_ops_per_frame_scale_with_inference_rate(self, soc, yolo):
        baseline = soc.evaluate_constant_ew(yolo, 1)
        ew4 = soc.evaluate_constant_ew(yolo, 4)
        assert ew4.ops_per_frame == pytest.approx(baseline.ops_per_frame / 4, rel=0.01)


class TestTrackingScenario:
    """The headline tracking results of Sec. 6.2."""

    def test_baseline_mdnet_achieves_60fps(self, soc, mdnet):
        assert soc.evaluate_constant_ew(mdnet, 1).fps == pytest.approx(60.0, rel=0.01)

    def test_ew2_saves_backend_energy(self, soc, mdnet):
        baseline = soc.evaluate_constant_ew(mdnet, 1)
        ew2 = soc.evaluate_constant_ew(mdnet, 2)
        saving = ew2.energy_saving_vs(baseline)
        assert 0.15 <= saving <= 0.40  # paper: 21%
        backend_saving = 1.0 - (
            ew2.backend_energy_per_frame_j / baseline.backend_energy_per_frame_j
        )
        assert 0.4 <= backend_saving <= 0.6  # paper: ~50% backend saving

    def test_savings_saturate_at_large_ew(self, soc, mdnet):
        baseline = soc.evaluate_constant_ew(mdnet, 1)
        ew16 = soc.evaluate_constant_ew(mdnet, 16).normalized_to(baseline)
        ew32 = soc.evaluate_constant_ew(mdnet, 32).normalized_to(baseline)
        assert ew16 - ew32 < 0.05
        assert ew32 > 0.3  # frontend + memory put a floor under the energy

    def test_inference_rate_reported(self, soc, mdnet):
        ew4 = soc.evaluate_constant_ew(mdnet, 4)
        assert ew4.inference_rate == pytest.approx(0.25, abs=0.01)

    def test_evaluate_results_uses_actual_schedule(self, soc, mdnet):
        frames = [FrameResult(0, FrameKind.INFERENCE, [])] + [
            FrameResult(i, FrameKind.EXTRAPOLATION, []) for i in range(1, 10)
        ]
        results = [SequenceResult("seq", frames)]
        breakdown = soc.evaluate_results(mdnet, results)
        assert breakdown.inference_rate == pytest.approx(0.1)
        assert breakdown.num_frames == 10


class TestEnergyBreakdownArithmetic:
    def test_components_sum_to_total(self, soc, yolo):
        breakdown = soc.evaluate_constant_ew(yolo, 4)
        assert breakdown.total_energy_j == pytest.approx(
            breakdown.frontend_energy_j
            + breakdown.memory_energy_j
            + breakdown.backend_energy_j
            + breakdown.cpu_energy_j
        )
        per_frame_sum = (
            breakdown.frontend_energy_per_frame_j
            + breakdown.memory_energy_per_frame_j
            + breakdown.backend_energy_per_frame_j
        )
        assert per_frame_sum == pytest.approx(breakdown.energy_per_frame_j)

    def test_normalization_identity(self, soc, yolo):
        baseline = soc.evaluate_constant_ew(yolo, 1)
        assert baseline.normalized_to(baseline) == pytest.approx(1.0)
        assert baseline.energy_saving_vs(baseline) == pytest.approx(0.0)
