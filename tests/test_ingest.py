"""Tests for the ingestion core: protocol, reorder window, admission."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.backends import tracking_backend_for
from repro.core.geometry import BoundingBox
from repro.core.ingest import (
    MSG_FRAME,
    MSG_HELLO,
    AdmissionError,
    IngestConfig,
    IngestCore,
    ProtocolError,
    ReorderWindow,
    decode_frame,
    decode_json,
    encode_frame,
    encode_json,
    encode_message,
    read_message,
)
from repro.core.spec import PipelineSpec
from repro.core.streaming import StreamMultiplexer
from repro.core.types import Detection
from repro.nn.models import build_mdnet
from repro.soc.frame_cost import CapacityModel, StreamDemand, _md1_wait_s


def _frame(seed: int, shape=(24, 32)) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 255, size=shape, dtype=np.uint8)


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_roundtrip(self):
        frame = _frame(3)
        truth = [
            Detection(box=BoundingBox(4.5, 6.0, 10.0, 8.0), label="car", object_id=2)
        ]
        wire = encode_frame(7, 42, frame, truth)
        buffer = bytearray(wire)
        msg_type, body = read_message(buffer)
        assert msg_type == MSG_FRAME
        assert not buffer  # fully consumed
        handle, seq, decoded, decoded_truth = decode_frame(body)
        assert (handle, seq) == (7, 42)
        np.testing.assert_array_equal(decoded, frame)
        assert decoded.dtype == np.uint8  # never widened, never pickled
        assert decoded_truth[0].box == truth[0].box
        assert decoded_truth[0].object_id == 2

    def test_frame_without_truth(self):
        _h, _s, decoded, truth = decode_frame(
            bytearray(encode_frame(0, 0, _frame(1)))[5:]
        )
        np.testing.assert_array_equal(decoded, _frame(1))
        assert truth is None

    def test_json_roundtrip(self):
        buffer = bytearray(encode_json(MSG_HELLO, {"width": 32, "height": 24}))
        msg_type, body = read_message(buffer)
        assert msg_type == MSG_HELLO
        assert decode_json(body) == {"width": 32, "height": 24}

    def test_partial_messages_wait_for_more_bytes(self):
        wire = encode_frame(1, 2, _frame(5))
        buffer = bytearray()
        for offset in range(0, len(wire) - 1, 16):
            buffer.extend(wire[offset : offset + 16])
            if len(buffer) < len(wire):
                assert read_message(bytearray(buffer)) is None
        buffer = bytearray(wire)
        assert read_message(buffer) is not None

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ProtocolError, match="uint8"):
            encode_frame(0, 0, _frame(1).astype(np.float64))

    def test_rejects_truncated_frame_body(self):
        wire = encode_frame(0, 0, _frame(1))
        body = bytearray(wire)[5:]
        with pytest.raises(ProtocolError, match="length mismatch"):
            decode_frame(body[:-3])

    def test_rejects_bad_length(self):
        with pytest.raises(ProtocolError, match="bad message length"):
            read_message(bytearray(b"\x00\x00\x00\x00extra"))

    def test_decoded_frame_is_zero_copy_view(self):
        frame = _frame(9)
        body = bytearray(encode_frame(0, 0, frame))[5:]
        _h, _s, decoded, _t = decode_frame(body)
        assert decoded.base is not None  # a view, not a copy

    def test_message_framing_is_length_prefixed(self):
        wire = encode_message(MSG_HELLO, b"abc")
        assert wire[:4] == (4).to_bytes(4, "big")  # type byte + 3 body bytes


# ----------------------------------------------------------------------
# Reorder window
# ----------------------------------------------------------------------
class TestReorderWindow:
    def test_in_order_passthrough(self):
        window = ReorderWindow(4)
        released = []
        for seq in range(6):
            released.extend(window.push(seq, seq))
        assert released == [(s, s, False) for s in range(6)]
        assert window.gaps == 0 and window.reordered == 0

    def test_out_of_order_reassembly(self):
        window = ReorderWindow(4)
        released = []
        for seq in [0, 2, 1, 4, 3, 5]:
            released.extend(window.push(seq, seq))
        assert [r[0] for r in released] == [0, 1, 2, 3, 4, 5]
        assert all(not gap for _, _, gap in released)
        assert window.reordered > 0 and window.gaps == 0

    def test_duplicate_buffered_and_late_drops(self):
        window = ReorderWindow(4)
        window.push(0, 0)
        window.push(2, 2)
        window.push(2, 2)  # duplicate while buffered
        assert window.duplicates == 1
        window.push(1, 1)  # releases 1 and 2
        assert window.push(2, 2) == []  # late re-delivery after release
        assert window.late_drops == 1

    def test_gap_sealed_when_window_fills(self):
        window = ReorderWindow(3)
        assert window.push(0, 0) == [(0, 0, False)]
        released = []
        for seq in [2, 3, 4]:  # 1 never arrives; buffer hits capacity at 5
            released.extend(window.push(seq, seq))
        assert released == []
        released = window.push(5, 5)
        assert released[0] == (2, 2, True)  # gap sealed: 1 skipped
        assert [r[0] for r in released] == [2, 3, 4, 5]
        assert window.gaps == 1

    def test_flush_releases_stragglers_with_gap(self):
        window = ReorderWindow(8)
        window.push(0, 0)
        window.push(3, 3)
        window.push(5, 5)
        released = window.flush()
        assert released == [(3, 3, True), (5, 5, True)]
        assert window.gaps == 2
        assert window.buffered == 0

    def test_never_delivers_twice(self):
        window = ReorderWindow(2)
        delivered = []
        import random

        rng = random.Random(5)
        arrivals = [s for s in range(30) for _ in range(rng.randint(1, 2))]
        rng.shuffle(arrivals)
        for seq in arrivals:
            delivered.extend(r[0] for r in window.push(seq, seq))
        delivered.extend(r[0] for r in window.flush())
        assert len(delivered) == len(set(delivered))
        assert delivered == sorted(delivered)


# ----------------------------------------------------------------------
# Admission control: pinned to the QueueingEstimate math
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def capacity():
    spec = PipelineSpec(extrapolation_window=4)
    return CapacityModel(spec.vision_soc(), build_mdnet())


class TestCapacityModel:
    def test_service_time_mixes_i_and_e_frames(self, capacity):
        i_time = capacity.inference_latency_s()
        e_time = capacity.extrapolation_latency_s(1)
        assert capacity.frame_service_time_s(1) == pytest.approx(i_time)
        assert capacity.frame_service_time_s(4) == pytest.approx(
            (i_time + 3 * e_time) / 4
        )

    def test_projection_matches_md1_form(self, capacity):
        demand = StreamDemand(fps=30.0, window_size=4)
        estimate = capacity.projection([demand])
        service = capacity.frame_service_time_s(4)
        assert estimate.arrival_rate_hz == pytest.approx(30.0)
        assert estimate.service_time_s == pytest.approx(service)
        assert estimate.utilization == pytest.approx(30.0 * service)
        assert estimate.mean_wait_s == pytest.approx(
            _md1_wait_s(estimate.utilization, service)
        )

    def test_single_stream_boundary_exact(self, capacity):
        """Reject exactly at utilization == 1, admit just below."""
        service = capacity.frame_service_time_s(4)
        exactly_full = StreamDemand(fps=1.0 / service, window_size=4)
        assert capacity.projection([exactly_full]).utilization == pytest.approx(1.0)
        assert not capacity.admits([], exactly_full)
        assert math.isinf(capacity.projection([exactly_full]).mean_wait_s)
        just_below = StreamDemand(fps=0.999 / service, window_size=4)
        assert capacity.admits([], just_below)
        assert math.isfinite(capacity.projection([just_below]).mean_wait_s)

    def test_overload_boundary_across_streams(self, capacity):
        """The stream that pushes total utilization to 1 is the one rejected."""
        service = capacity.frame_service_time_s(4)
        per_stream = StreamDemand(fps=0.3 / service, window_size=4)  # rho = 0.3
        admitted = []
        assert capacity.admits(admitted, per_stream)
        admitted.append(per_stream)
        assert capacity.admits(admitted, per_stream)  # 0.6
        admitted.append(per_stream)
        assert capacity.admits(admitted, per_stream)  # 0.9
        admitted.append(per_stream)
        assert not capacity.admits(admitted, per_stream)  # 1.2 >= 1
        assert capacity.projection(admitted + [per_stream]).utilization >= 1.0

    def test_zero_demand_projection(self, capacity):
        estimate = capacity.projection([])
        assert estimate.utilization == 0.0
        assert estimate.mean_wait_s == 0.0

    def test_demand_validation(self):
        with pytest.raises(ValueError, match="fps"):
            StreamDemand(fps=0.0)
        with pytest.raises(ValueError, match="window_size"):
            StreamDemand(fps=30.0, window_size=0)


class TestIngestAdmission:
    def _core(self, capacity, **config_kwargs):
        spec = PipelineSpec(extrapolation_window=4)
        pipeline = spec.build(tracking_backend_for("mdnet"))
        mux = StreamMultiplexer(pipeline, isolate_failures=True)
        return IngestCore(
            mux, capacity=capacity, config=IngestConfig(**config_kwargs)
        )

    def test_rejects_at_capacity(self, capacity):
        core = self._core(capacity)
        service = capacity.frame_service_time_s(4)
        fps = 0.4 / service
        core.open_stream("a", width=32, height=24, fps=fps, window_size=4)
        core.open_stream("b", width=32, height=24, fps=fps, window_size=4)
        with pytest.raises(AdmissionError, match="utilization"):
            core.open_stream("c", width=32, height=24, fps=fps, window_size=4)
        assert core.stream_ids == ["a", "b"]
        core.finish()

    def test_closed_stream_frees_capacity(self, capacity):
        core = self._core(capacity)
        service = capacity.frame_service_time_s(4)
        fps = 0.6 / service
        core.open_stream("a", width=32, height=24, fps=fps, window_size=4)
        with pytest.raises(AdmissionError):
            core.open_stream("b", width=32, height=24, fps=fps, window_size=4)
        core.close_stream("a")
        core.open_stream("b", width=32, height=24, fps=fps, window_size=4)
        core.finish()

    def test_admission_needs_capacity_model(self):
        spec = PipelineSpec(extrapolation_window=4)
        pipeline = spec.build(tracking_backend_for("mdnet"))
        mux = StreamMultiplexer(pipeline)
        with pytest.raises(ValueError, match="CapacityModel"):
            IngestCore(mux, config=IngestConfig(admission=True))
        mux.close()

    def test_admission_can_be_disabled(self):
        spec = PipelineSpec(extrapolation_window=4)
        pipeline = spec.build(tracking_backend_for("mdnet"))
        mux = StreamMultiplexer(pipeline)
        core = IngestCore(mux, config=IngestConfig(admission=False))
        core.open_stream("a", width=32, height=24, fps=1e9)
        core.finish()


# ----------------------------------------------------------------------
# Overload policies
# ----------------------------------------------------------------------
class TestOverloadPolicies:
    def _core(self, policy: str, capacity_frames: int = 4, feed_depth: int = 1):
        spec = PipelineSpec(extrapolation_window=4)
        pipeline = spec.build(tracking_backend_for("mdnet"))
        mux = StreamMultiplexer(pipeline, isolate_failures=True)
        core = IngestCore(
            mux,
            config=IngestConfig(
                admission=False,
                queue_capacity=capacity_frames,
                overload_policy=policy,
                feed_depth=feed_depth,
                reorder_window=4,
            ),
        )
        return core

    def _sequence(self, frames=24):
        from repro.video.synthetic import SequenceConfig, SequenceGenerator

        return SequenceGenerator(
            SequenceConfig(
                name="cam", frame_width=64, frame_height=48,
                num_frames=frames, num_objects=1, seed=3,
            )
        ).generate()

    def test_drop_oldest_sheds_and_seals_gap(self):
        core = self._core("drop-oldest", capacity_frames=3, feed_depth=1)
        seq = self._sequence()
        core.open_stream("cam", width=seq.width, height=seq.height)
        # feed_depth=1 with no pumping: the ready queue backs up past 3.
        for index in range(12):
            core.push_frame(
                "cam", index, seq.frame(index), truth=seq.truth_detections(index)
            )
        faults = core.faults_for("cam")
        assert faults.overload_drops > 0
        assert faults.gaps >= faults.overload_drops
        result = core.close_stream("cam")
        # Dropped frames never produce results; survivors all do.
        assert len(result.frames) == 12 - faults.overload_drops
        # The telemetry records the drops as forced-I gap seals (runs of
        # consecutive drops collapse into one seal on the next survivor).
        records = core.take_records()
        gap_tagged = [
            r
            for r in records
            if r.telemetry is not None
            and "dropped-frame-gap" in r.telemetry.degradation
        ]
        assert len(gap_tagged) >= 1
        assert core.multiplexer.stats_for("cam").degraded_frames == len(gap_tagged)
        core.finish()

    def test_degrade_defers_inference_instead_of_dropping(self):
        core = self._core("degrade", capacity_frames=2, feed_depth=1)
        seq = self._sequence()
        core.open_stream("cam", width=seq.width, height=seq.height)
        # faults is the live counter object: it keeps updating through the
        # backlogged feed that close_stream() drives.
        faults = core.faults_for("cam")
        for index in range(12):
            core.push_frame(
                "cam", index, seq.frame(index), truth=seq.truth_detections(index)
            )
        result = core.close_stream("cam")
        assert faults.overload_drops == 0
        assert faults.degraded_submits > 0
        assert len(result.frames) == 12  # nothing shed
        records = core.take_records()
        degraded = [
            r
            for r in records
            if r.telemetry is not None and "queue-degrade" in r.telemetry.degradation
        ]
        assert len(degraded) == faults.degraded_submits
        core.finish()

    def test_degrade_widens_effective_window(self):
        """Deferred I-frames => fewer inferences than the unloaded run."""
        seq = self._sequence()
        loaded = self._core("degrade", capacity_frames=2, feed_depth=1)
        loaded.open_stream("cam", width=seq.width, height=seq.height)
        for index in range(24):
            loaded.push_frame(
                "cam", index, seq.frame(index), truth=seq.truth_detections(index)
            )
        loaded_result = loaded.close_stream("cam")
        loaded.finish()

        easy = self._core("degrade", capacity_frames=64, feed_depth=64)
        easy.open_stream("cam", width=seq.width, height=seq.height)
        for index in range(24):
            easy.push_frame(
                "cam", index, seq.frame(index), truth=seq.truth_detections(index)
            )
        easy_result = easy.close_stream("cam")
        easy.finish()

        assert loaded_result.inference_count <= easy_result.inference_count

    def test_telemetry_records_every_fault_event(self):
        core = self._core("drop-oldest", capacity_frames=8, feed_depth=8)
        seq = self._sequence()
        core.open_stream("cam", width=seq.width, height=seq.height)
        # Drop seq 2 entirely; deliver 5 twice; 7 before 6.
        arrivals = [0, 1, 3, 4, 5, 5, 7, 6, 8, 9]
        for s in arrivals:
            core.push_frame("cam", s, seq.frame(s), truth=seq.truth_detections(s))
        faults = core.faults_for("cam")
        result = core.close_stream("cam")
        assert len(result.frames) == 9  # 10 seqs, one (2) missing
        assert faults.duplicates == 1
        assert faults.gaps == 1
        assert faults.reordered > 0
        tags = [
            r.telemetry.degradation
            for r in core.take_records()
            if r.telemetry is not None and r.telemetry.degradation
        ]
        assert any("dropped-frame-gap" in tag for tag in tags)
        core.finish()
