"""Tests for the camera sensor model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isp.sensor import CameraSensor, SensorConfig, bayer_channel_map


class TestBayerLayout:
    def test_rggb_pattern(self):
        channel_map = bayer_channel_map(4, 4)
        assert channel_map[0, 0] == 0  # R
        assert channel_map[0, 1] == 1  # G
        assert channel_map[1, 0] == 1  # G
        assert channel_map[1, 1] == 2  # B

    def test_channel_fractions(self):
        channel_map = bayer_channel_map(64, 64)
        total = channel_map.size
        assert (channel_map == 0).sum() == total // 4
        assert (channel_map == 1).sum() == total // 2
        assert (channel_map == 2).sum() == total // 4


class TestSensorConfig:
    def test_energy_per_frame(self):
        config = SensorConfig()
        assert config.energy_per_frame_j() == pytest.approx(0.180 / 60.0)

    def test_pixels_per_frame(self):
        assert SensorConfig().pixels_per_frame == 1920 * 1080


class TestCapture:
    def test_capture_shape_and_range(self, small_sequence):
        sensor = CameraSensor(seed=1)
        raw = sensor.capture(small_sequence.frame(0), frame_index=0)
        assert raw.bayer.shape == small_sequence.frame(0).shape
        assert raw.bayer.min() >= 0.0
        assert raw.bayer.max() <= 255.0
        assert raw.width == small_sequence.width
        assert raw.height == small_sequence.height

    def test_capture_rejects_non_2d(self):
        sensor = CameraSensor()
        with pytest.raises(ValueError):
            sensor.capture(np.zeros((4, 4, 3)), 0)

    def test_noise_is_applied(self, small_sequence):
        noisy_sensor = CameraSensor(seed=2)
        clean_config = SensorConfig(read_noise=0.0, shot_noise_scale=0.0, dead_pixel_fraction=0.0)
        clean_sensor = CameraSensor(clean_config, seed=2)
        frame = small_sequence.frame(0)
        noisy = noisy_sensor.capture(frame, 0)
        clean = clean_sensor.capture(frame, 0)
        assert np.abs(noisy.bayer - clean.bayer).mean() > 0.1

    def test_dead_pixels_are_persistent(self, small_sequence):
        config = SensorConfig(dead_pixel_fraction=5e-3, read_noise=0.0, shot_noise_scale=0.0)
        sensor = CameraSensor(config, seed=3)
        bright = np.full_like(small_sequence.frame(0), 200, dtype=np.uint8)
        first = sensor.capture(bright, 0)
        second = sensor.capture(bright, 1)
        dead_first = set(zip(*np.where(first.bayer == 0.0)))
        dead_second = set(zip(*np.where(second.bayer == 0.0)))
        assert dead_first
        assert dead_first == dead_second
        rows, cols = sensor.dead_pixel_coordinates
        assert len(rows) == len(cols) > 0

    def test_frames_captured_counter(self, small_sequence):
        sensor = CameraSensor(seed=4)
        for index in range(3):
            sensor.capture(small_sequence.frame(index), index)
        assert sensor.frames_captured == 3

    def test_capture_is_deterministic_per_seed(self, small_sequence):
        a = CameraSensor(seed=9).capture(small_sequence.frame(0), 0)
        b = CameraSensor(seed=9).capture(small_sequence.frame(0), 0)
        assert np.array_equal(a.bayer, b.bayer)
