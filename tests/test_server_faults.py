"""Fault-injection tests for the TCP serving front end.

Every scenario here is an unhappy path: dropped frames, duplicated and
out-of-order arrivals, a client vanishing mid-stream, a consumer that
stops reading its acks, and a worker process dying under an active
connection.  The invariants: the server never deadlocks, frame
*processing* is never corrupted (the hypothesis property pins accepted
frames bit-identical to a serial session fed the surviving subsequence),
and every fault lands in telemetry or a fault counter.
"""

from __future__ import annotations

import random
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.backends import tracking_backend_for
from repro.core.executor import StreamFailedError
from repro.core.ingest import IngestConfig, IngestCore
from repro.core.server import ServeClient, ServerThread
from repro.core.spec import PipelineSpec
from repro.core.streaming import StreamMultiplexer
from repro.video.synthetic import SequenceConfig, SequenceGenerator

from test_session import assert_results_identical


def _sequence(frames: int = 20, seed: int = 7, name: str = "cam"):
    return SequenceGenerator(
        SequenceConfig(
            name=name, frame_width=64, frame_height=48,
            num_frames=frames, num_objects=1, seed=seed,
        )
    ).generate()


def _make_ingest(*, workers: int = 1, **config_kwargs) -> IngestCore:
    spec = PipelineSpec(extrapolation_window=4)
    pipeline = spec.build(tracking_backend_for("mdnet"))
    mux = StreamMultiplexer(pipeline, workers=workers, isolate_failures=True)
    config_kwargs.setdefault("admission", False)
    config_kwargs.setdefault("reorder_window", 4)
    return IngestCore(mux, config=IngestConfig(**config_kwargs))


def _stream_all(client: ServeClient, handle: int, seq_obj, seqs) -> None:
    for seq in seqs:
        client.send_frame(
            handle, seq, seq_obj.frame(seq), truth=seq_obj.truth_detections(seq)
        )


class TestServerFaults:
    def test_dropped_frames_seal_gaps(self):
        seq_obj = _sequence(20)
        dropped = {3, 9}
        with ServerThread(_make_ingest()) as server:
            with ServeClient("127.0.0.1", server.port) as client:
                client.hello(
                    handle=1, stream="cam", width=seq_obj.width, height=seq_obj.height
                )
                _stream_all(
                    client, 1, seq_obj, [s for s in range(20) if s not in dropped]
                )
                summary = client.bye(1)
        assert summary["status"] == "ok"
        assert summary["frames"] == 18
        assert summary["faults"]["gaps"] == len(dropped)
        assert summary["faults"]["overload_drops"] == 0
        report = server.shutdown()
        assert report.frames_processed == 18

    def test_duplicates_and_out_of_order_arrivals(self):
        seq_obj = _sequence(16)
        # 3 duplicated while buffered; 5 and 10 re-delivered after release;
        # (3,2), (7,6) and (12,11) swapped in flight.
        arrivals = [0, 1, 3, 3, 2, 4, 5, 5, 7, 6, 8, 9, 10, 10, 12, 11, 13, 14, 15]
        with ServerThread(_make_ingest()) as server:
            with ServeClient("127.0.0.1", server.port) as client:
                client.hello(
                    handle=1, stream="cam", width=seq_obj.width, height=seq_obj.height
                )
                _stream_all(client, 1, seq_obj, arrivals)
                summary = client.bye(1)
                # RESULT acks observed so far arrived in pipeline order.
                indices = [r["frame_index"] for r in client.results]
                assert indices == sorted(indices)
                # Every acked frame carries the source seq it came from.
                for record in client.results:
                    assert record["seq"] == record["frame_index"]
        assert summary["status"] == "ok"
        assert summary["frames"] == 16  # all 16 distinct seqs survive
        assert summary["faults"]["duplicates"] == 1  # dup of a buffered frame
        assert summary["faults"]["late_drops"] == 2  # re-delivery after release
        assert summary["faults"]["reordered"] > 0
        assert summary["faults"]["gaps"] == 0
        server.shutdown()

    def test_midstream_disconnect_settles_stream(self):
        seq_obj = _sequence(20)
        with ServerThread(_make_ingest()) as server:
            rude = ServeClient("127.0.0.1", server.port)
            rude.hello(
                handle=1, stream="rude", width=seq_obj.width, height=seq_obj.height
            )
            _stream_all(rude, 1, seq_obj, range(10))
            rude.close()  # vanish mid-stream: no BYE

            with ServeClient("127.0.0.1", server.port) as polite:
                polite.hello(
                    handle=1, stream="polite",
                    width=seq_obj.width, height=seq_obj.height,
                )
                # The disconnect settles 'rude' like an implicit BYE; wait
                # until the server has reaped it.
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    stats = polite.stats()
                    if "rude" not in stats["streams"]:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("disconnected stream was never settled")
                assert stats["failures"] == {}
                _stream_all(polite, 1, seq_obj, range(20))
                summary = polite.bye(1)
        assert summary["status"] == "ok"
        assert summary["frames"] == 20
        report = server.shutdown()
        # The rude client's accepted frames were still processed in full.
        assert report.frames_processed == 30

    def test_slow_consumer_sheds_acks_not_frames(self):
        seq_obj = _sequence(60, seed=9)
        with ServerThread(_make_ingest(), outbox_depth=2) as server:
            with ServeClient("127.0.0.1", server.port) as client:
                client.hello(
                    handle=1, stream="cam", width=seq_obj.width, height=seq_obj.height
                )
                # Never poll while streaming: the tiny outbox overflows as
                # the pump bursts records faster than the writer drains.
                _stream_all(client, 1, seq_obj, range(60))
                deadline = time.monotonic() + 30.0
                while (
                    server.server.total_result_drops == 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                summary = client.bye(1)
        # Processing was never backpressured by the unread acks...
        assert summary["status"] == "ok"
        assert summary["frames"] == 60
        # ...the shed acks were counted, not silently lost.
        assert server.server.total_result_drops > 0
        report = server.shutdown()
        assert report.frames_processed == 60

    def test_worker_death_during_active_connection(self):
        seq_obj = _sequence(20)
        ingest = _make_ingest(workers=2)
        executor = ingest.multiplexer._executor
        with ServerThread(ingest) as server:
            with ServeClient("127.0.0.1", server.port) as client:
                client.hello(
                    handle=1, stream="doomed",
                    width=seq_obj.width, height=seq_obj.height,
                )
                client.hello(
                    handle=2, stream="survivor",
                    width=seq_obj.width, height=seq_obj.height,
                )
                doomed_shard = executor.shard_of("doomed")
                assert doomed_shard is not executor.shard_of("survivor")
                _stream_all(client, 1, seq_obj, range(4))
                _stream_all(client, 2, seq_obj, range(4))

                doomed_shard.process.kill()
                doomed_shard.process.join(timeout=10.0)

                # Keep feeding the dead stream until the failure surfaces.
                deadline = time.monotonic() + 30.0
                seq = 4
                while not client.errors and time.monotonic() < deadline:
                    client.send_frame(
                        1, seq, seq_obj.frame(seq % 20),
                        truth=seq_obj.truth_detections(seq % 20),
                    )
                    seq += 1
                    client.poll(timeout=0.05)
                assert client.errors, "worker death never reported to the client"
                assert "died unexpectedly" in client.errors[0]["reason"]

                # The sibling stream on the healthy shard still completes.
                _stream_all(client, 2, seq_obj, range(4, 20))
                summary = client.bye(2)
        assert summary["status"] == "ok"
        assert summary["frames"] == 20
        assert "doomed" in ingest.multiplexer.stream_failures
        report = server.shutdown()
        assert report is not None  # graceful drain despite the dead worker

    def test_bye_on_failed_stream_raises_promptly(self):
        # A tracking stream poisoned mid-flight (no truth on the first
        # I-frame) is torn down server-side; a later BYE on that handle must
        # surface the MSG_ERROR as StreamFailedError, not block for a
        # BYE_OK that will never come.
        seq_obj = _sequence(8)
        with ServerThread(_make_ingest()) as server:
            with ServeClient("127.0.0.1", server.port) as client:
                client.hello(
                    handle=1, stream="cam", width=seq_obj.width, height=seq_obj.height
                )
                # Keep pushing truthless frames until the poisoned session's
                # failure surfaces as MSG_ERROR (the server tears the stream
                # down and pops the handle).
                deadline = time.monotonic() + 30.0
                seq = 0
                while not client.errors and time.monotonic() < deadline:
                    client.send_frame(1, seq % 8, seq_obj.frame(seq % 8))
                    seq += 1
                    client.poll(timeout=0.05)
                assert client.errors, "stream failure never reported"
                started = time.monotonic()
                with pytest.raises(StreamFailedError, match="no stream"):
                    client.bye(1, timeout=30.0)
                assert time.monotonic() - started < 15.0
                # An outright unknown handle fails fast the same way.
                with pytest.raises(StreamFailedError, match="no stream"):
                    client.bye(99, timeout=30.0)
        server.shutdown()


class TestAcceptedSubsequenceProperty:
    """Accepted frames are bit-identical to a serial session fed the same
    surviving subsequence, with an I-frame forced at every gap."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_frames=st.integers(min_value=5, max_value=14),
        drops=st.sets(st.integers(min_value=0, max_value=13), max_size=3),
        chaos_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_accepted_frames_match_serial(self, num_frames, drops, chaos_seed):
        rng = random.Random(chaos_seed)
        survivors = [s for s in range(num_frames) if s not in drops]
        # Jittered arrival order (bounded displacement) plus duplicates.
        arrivals = sorted(survivors, key=lambda s: s + rng.uniform(-1.8, 1.8))
        for seq in survivors:
            if rng.random() < 0.25:
                position = rng.randint(arrivals.index(seq), len(arrivals))
                arrivals.insert(position, seq)

        seq_obj = _sequence(frames=num_frames, seed=13)
        spec = PipelineSpec(extrapolation_window=4)
        mux = StreamMultiplexer(
            spec.build(tracking_backend_for("mdnet")), isolate_failures=True
        )
        core = IngestCore(
            mux,
            config=IngestConfig(
                admission=False, reorder_window=3,
                queue_capacity=256, feed_depth=256,
            ),
        )
        core.open_stream("cam", width=seq_obj.width, height=seq_obj.height)
        accepted = core._stream("cam").accepted_seqs  # live list
        for seq in arrivals:
            core.push_frame(
                "cam", seq, seq_obj.frame(seq), truth=seq_obj.truth_detections(seq)
            )
            core.pump()
        streamed = core.close_stream("cam")
        core.finish()

        # No overload configured: exactly the reorder survivors got in.
        assert accepted == survivors

        # Serial reference: same stream name (backends seed off it), same
        # subsequence, I-frame forced wherever the source seq is not
        # contiguous (the sealed gaps).
        session = spec.build(tracking_backend_for("mdnet")).open_session(
            seq_obj.width, seq_obj.height, name="cam"
        )
        for position, seq in enumerate(accepted):
            forced = (
                seq != (accepted[position - 1] + 1 if position else 0)
            )
            session.submit(
                seq_obj.frame(seq),
                truth=seq_obj.truth_detections(seq),
                force_inference=forced,
            )
        serial = session.finish()
        assert_results_identical(serial, streamed)
