"""Tests for the fixed-point frame representation and its kernel fast path.

The acceptance property of the fixed-point work: float-valued luma produced
by the ISP's quantized stages always lies on a power-of-two lattice, so
block matching rides the exact integer SAD kernel end to end — the float64
gather path is reserved for genuinely fractional frames fed in from
outside.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.isp.denoise import TemporalDenoiseConfig, TemporalDenoiseStage
from repro.isp.framebuffer import DEFAULT_FRAME_FORMAT, FixedPointFormat
from repro.isp.pipeline import ISPConfig, ISPPipeline
from repro.isp.sensor import CameraSensor
from repro.isp.stages import GammaCorrection, WhiteBalance, rgb_to_luma
from repro.motion.kernels import SadKernel, fixed_point_scale


class TestFixedPointFormat:
    def test_q84_lattice_round_trip(self):
        fmt = FixedPointFormat(int_bits=8, frac_bits=4)
        assert fmt.scale == 16
        assert fmt.max_value == pytest.approx(255.9375)
        values = np.array([0.0, 0.03, 100.07, 255.9, 300.0, -3.0])
        quantized = fmt.quantize(values)
        # Quantizing is idempotent and saturating.
        assert np.array_equal(fmt.quantize(quantized), quantized)
        assert quantized.min() >= 0.0
        assert quantized.max() <= fmt.max_value
        # Every value is an exact multiple of the lattice step.
        assert np.array_equal(quantized * fmt.scale, np.rint(quantized * fmt.scale))

    def test_raw_codes_pack_and_unpack(self):
        fmt = DEFAULT_FRAME_FORMAT
        assert fmt.storage_dtype == np.uint16  # 12-bit codes
        values = np.array([0.0, 1.5, 255.9375])
        raw = fmt.to_raw(values)
        assert raw.dtype == np.uint16
        assert np.array_equal(fmt.from_raw(raw), values)

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(int_bits=0)
        with pytest.raises(ValueError):
            FixedPointFormat(frac_bits=-1)


class TestKernelScaleDetection:
    def test_integer_frames_scale_one(self):
        frame = np.zeros((8, 8), dtype=np.uint8)
        assert fixed_point_scale(frame, frame) == 1

    def test_q84_lattice_detected(self):
        frame = np.arange(64, dtype=np.float64).reshape(8, 8) / 16.0
        assert fixed_point_scale(frame) == 16

    def test_fine_lattice_detected_at_8_bits(self):
        frame = np.full((8, 8), 1.0 / 256.0)
        assert fixed_point_scale(frame) == 256

    def test_fractional_frames_rejected(self):
        assert fixed_point_scale(np.full((8, 8), 1.0 / 3.0)) is None

    def test_mixed_lattice_and_integer_frames(self):
        lattice = np.full((8, 8), 2.5)
        integers = np.zeros((8, 8))
        assert fixed_point_scale(lattice, integers) == 16

    def test_mixed_lattice_and_integer_dtype_frames(self):
        """uint8 frames lie on every lattice — the pair must stay exact."""
        lattice = np.full((8, 8), 2.5)
        integers = np.zeros((8, 8), dtype=np.uint8)
        assert fixed_point_scale(lattice, integers) == 16
        kernel = SadKernel(lattice, integers, 8, 2)
        assert kernel.exact_integer and kernel.scale == 16

    def test_huge_integer_dtype_frames_rejected(self):
        lattice = np.full((8, 8), 2.5)
        huge = np.full((8, 8), 2**30, dtype=np.int64)
        assert fixed_point_scale(lattice, huge) is None

    def test_kernel_sad_matches_float_mode_on_lattice(self):
        rng = np.random.default_rng(0)
        current = np.round(rng.uniform(0, 255, (32, 32)) * 16) / 16
        previous = np.round(rng.uniform(0, 255, (32, 32)) * 16) / 16
        fast = SadKernel(current, previous, 16, 4)
        slow = SadKernel(current, previous, 16, 4, exact_integer=False)
        assert fast.exact_integer and fast.scale == 16
        dy = rng.integers(-4, 5, (2, 2))
        dx = rng.integers(-4, 5, (2, 2))
        assert np.array_equal(fast.sad_per_block(dy, dx), slow.sad_per_block(dy, dx))


class TestQuantizedStages:
    def test_stage_outputs_lie_on_lattice(self):
        fmt = DEFAULT_FRAME_FORMAT
        rng = np.random.default_rng(1)
        rgb = rng.uniform(0, 255, (16, 16, 3))
        for stage in (WhiteBalance(output_format=fmt), GammaCorrection(0.8, output_format=fmt)):
            out = stage.process(rgb)
            assert np.array_equal(out, fmt.quantize(out))
        luma = rgb_to_luma(rgb, output_format=fmt)
        assert np.array_equal(luma, fmt.quantize(luma))

    def test_no_format_keeps_float_output(self):
        rng = np.random.default_rng(2)
        rgb = rng.uniform(0, 255, (16, 16, 3))
        luma = rgb_to_luma(rgb)
        assert not np.array_equal(luma, DEFAULT_FRAME_FORMAT.quantize(luma))


class TestPipelineRidesIntegerKernel:
    def test_denoise_float_matching_uses_fixed_point_lattice(self):
        """quantize_matching=False no longer falls onto the float64 gather."""
        rng = np.random.default_rng(3)
        stage = TemporalDenoiseStage(TemporalDenoiseConfig(quantize_matching=False))
        stage.process(rng.uniform(0, 255, (64, 96)))
        stage.process(rng.uniform(0, 255, (64, 96)))
        assert stage._matcher.last_kernel_exact
        assert stage._matcher.last_kernel_scale == DEFAULT_FRAME_FORMAT.scale

    def test_denoise_legacy_float_domain_still_available(self):
        rng = np.random.default_rng(4)
        stage = TemporalDenoiseStage(
            TemporalDenoiseConfig(quantize_matching=False, matching_format=None)
        )
        stage.process(rng.uniform(0, 255, (64, 96)))
        stage.process(rng.uniform(0, 255, (64, 96)))
        assert not stage._matcher.last_kernel_exact

    def test_raw_path_motion_estimation_is_exact_integer(self):
        rng = np.random.default_rng(5)
        sensor = CameraSensor(seed=1)
        isp = ISPPipeline()
        scene = rng.uniform(0, 255, (64, 96))
        isp.process(sensor.capture(scene, 0))
        result = isp.process(sensor.capture(scene, 1))
        assert result.motion_field is not None
        assert isp.denoise_stage._matcher.last_kernel_exact
        entry = isp.frame_buffer.latest()
        assert entry.pixel_format == DEFAULT_FRAME_FORMAT
        fmt = entry.pixel_format
        assert np.array_equal(entry.pixels, fmt.quantize(entry.pixels))

    def test_luma_path_quantizes_committed_frames(self):
        rng = np.random.default_rng(6)
        isp = ISPPipeline()
        isp.process_luma(rng.uniform(0, 255, (64, 96)), 0)
        isp.process_luma(rng.uniform(0, 255, (64, 96)), 1)
        entry = isp.frame_buffer.latest()
        fmt = entry.pixel_format
        assert fmt == DEFAULT_FRAME_FORMAT
        assert np.array_equal(entry.pixels, fmt.quantize(entry.pixels))
        assert isp.denoise_stage._matcher.last_kernel_exact

    def test_format_none_restores_legacy_datapath(self):
        rng = np.random.default_rng(7)
        isp = ISPPipeline(ISPConfig(frame_format=None))
        frame = rng.uniform(0, 255, (64, 96))
        result = isp.process_luma(frame, 0)
        assert isp.frame_buffer.latest().pixel_format is None
        assert np.array_equal(result.luma, frame)
