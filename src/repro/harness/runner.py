"""Experiment registry and the shared sweep runner.

This module turns the per-figure functions of :mod:`repro.harness.experiments`
into a real experiment subsystem:

* :class:`SweepRunner` executes pipeline sweeps.  It fans sequence execution
  out over worker shards (via ``EuphratesPipeline.run_dataset``'s
  ``max_workers``, i.e. the shared
  :class:`~repro.core.executor.ShardedExecutor` serving the live
  multiplexer too) and memoizes each swept pipeline configuration — figures
  that share sweep points (10a/10c/12 on the tracking sweep, 11a/11b on the
  block-16 TSS points) reuse one :class:`~repro.core.types.DatasetRunResult`
  instead of recomputing it.
* :class:`ExperimentSpec` + :func:`register` form a registry mapping stable
  names (``fig9a`` … ``table2``) to builder functions; the CLI
  (``python -m repro.harness``) and the benchmark suite both resolve
  experiments through it.
* :class:`ExperimentContext` carries everything a builder needs — the shared
  runner, lazily-built datasets, the seed — and memoizes finished artifacts so
  one experiment can consume another's measurements (Fig. 10b reads the EW-A
  inference rate measured by Fig. 10a).
* :class:`ExperimentArtifact` is the structured result: named tables
  (headers + rows) plus metadata, convertible to JSON via
  :mod:`repro.harness.reporting`.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.backends import detection_backend_for, tracking_backend_for
from ..core.spec import PipelineSpec
from ..core.types import DatasetRunResult
from ..video.datasets import Dataset, build_detection_dataset, build_tracking_dataset


# ----------------------------------------------------------------------
# Structured results
# ----------------------------------------------------------------------
@dataclass
class ResultTable:
    """One labelled table of an experiment artifact."""

    title: str
    headers: List[str]
    rows: List[List[object]]


@dataclass
class ExperimentArtifact:
    """Structured output of one registered experiment."""

    name: str
    title: str
    kind: str  # "figure" or "table"
    tables: List[ResultTable] = field(default_factory=list)
    #: Free-form scalar measurements (inference rates, dataset sizes, ...).
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_table(
        self,
        headers: Sequence[str],
        rows: Sequence[Sequence[object]],
        title: str = "",
    ) -> None:
        self.tables.append(
            ResultTable(
                title=title or self.title,
                headers=list(headers),
                rows=[list(row) for row in rows],
            )
        )


# ----------------------------------------------------------------------
# Sweep runner with per-configuration caching
# ----------------------------------------------------------------------
#: Cache key identifying one pipeline configuration over one dataset:
#: (dataset_key, task, backend, seed) + PipelineSpec.cache_key().
SweepPoint = Tuple[object, ...]


class SweepRunner:
    """Runs pipeline sweeps with process parallelism and result caching.

    One runner instance is shared across a whole CLI invocation (or the whole
    benchmark session): any two experiments that ask for the same
    (dataset, backend, :class:`~repro.core.spec.PipelineSpec`, seed)
    configuration share a single pipeline execution.  Pipelines are
    constructed fresh per cache miss, so a cached result is identical to
    what an isolated run would have produced.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        transport: Optional[str] = None,
    ) -> None:
        self.max_workers = max_workers
        #: Frame transport for sharded runs (``None`` = the pipeline's
        #: configured default; ``"pickle"`` selects the legacy process pool).
        self.transport = transport
        self.cache_hits = 0
        self.cache_misses = 0
        self._cache: Dict[SweepPoint, DatasetRunResult] = {}
        # Strong references keep id()-keyed datasets alive so a recycled id
        # can never alias two different datasets.
        self._datasets: Dict[int, Dataset] = {}

    def dataset_key(self, dataset: Dataset) -> str:
        """A stable identity for a dataset object within this runner."""
        self._datasets[id(dataset)] = dataset
        name = getattr(dataset, "name", dataset.__class__.__name__)
        return f"{name}@{id(dataset):x}"

    def run(
        self,
        task: str,
        backend: str,
        dataset: Dataset,
        window: Union[int, str, None] = None,
        *,
        spec: Optional[PipelineSpec] = None,
        block_size: Optional[int] = None,
        search_range: Optional[int] = None,
        exhaustive_search: Optional[bool] = None,
        search_policy: Optional[str] = None,
        seed: int = 1,
    ) -> DatasetRunResult:
        """Run (or reuse) one pipeline configuration over ``dataset``.

        The configuration is a :class:`~repro.core.spec.PipelineSpec`:
        pass one via ``spec``, build one implicitly from the loose keywords,
        or combine both — any explicitly-passed keyword (``window``,
        ``block_size``, ...) overrides the corresponding ``spec`` field, so
        a sweep can thread one base spec through and vary a single
        dimension per call.  The spec's
        :meth:`~repro.core.spec.PipelineSpec.cache_key` is the memoization
        key, so e.g. ``search_policy`` participates in it and
        policy-comparison experiments measure genuinely separate runs even
        though every policy returns bit-identical motion fields.
        """
        base = spec if spec is not None else PipelineSpec()
        overrides: Dict[str, object] = {}
        if window is not None:
            overrides["extrapolation_window"] = window
        elif spec is None:
            raise ValueError("run() needs a window (or a full PipelineSpec)")
        if block_size is not None:
            overrides["block_size"] = block_size
        if search_range is not None:
            overrides["search_range"] = search_range
        if exhaustive_search is not None:
            overrides["exhaustive_search"] = exhaustive_search
        if search_policy is not None:
            overrides["search_policy"] = search_policy
        spec = replace(base, **overrides) if overrides else base
        point: SweepPoint = (
            self.dataset_key(dataset),
            task,
            backend,
            seed,
        ) + spec.cache_key()
        cached = self._cache.get(point)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        if task == "detection":
            inference_backend = detection_backend_for(backend, seed=seed)
        elif task == "tracking":
            inference_backend = tracking_backend_for(backend, seed=seed)
        else:
            raise ValueError(f"unknown task '{task}' (expected 'detection' or 'tracking')")
        pipeline = spec.build(inference_backend)
        result = pipeline.run_dataset_result(
            dataset, max_workers=self.max_workers, transport=self.transport
        )
        self._cache[point] = result
        return result


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: a stable name plus an artifact builder."""

    name: str
    title: str
    kind: str  # "figure" or "table"
    build: Callable[["ExperimentContext"], ExperimentArtifact]
    description: str = ""


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(
    name: str, title: str, kind: str = "figure", description: str = ""
) -> Callable[[Callable[["ExperimentContext"], ExperimentArtifact]], Callable]:
    """Decorator registering an artifact builder under ``name``."""

    def decorator(build: Callable[["ExperimentContext"], ExperimentArtifact]) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"experiment '{name}' registered twice")
        _REGISTRY[name] = ExperimentSpec(
            name=name, title=title, kind=kind, build=build, description=description
        )
        return build

    return decorator


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment; unknown names get a suggestion."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        close = difflib.get_close_matches(name, _REGISTRY, n=1)
        hint = f" (did you mean '{close[0]}'?)" if close else ""
        raise KeyError(f"unknown experiment '{name}'{hint}") from None


def list_experiments() -> List[ExperimentSpec]:
    """All registered experiments in registration (paper) order."""
    _ensure_registered()
    return list(_REGISTRY.values())


def _ensure_registered() -> None:
    # The registry entries live in repro.harness.experiments; importing the
    # module populates _REGISTRY exactly once.
    from . import experiments  # noqa: F401


# ----------------------------------------------------------------------
# Execution context
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DatasetSpec:
    """Sizes of the synthetic stand-in datasets used for a harness run.

    The defaults mirror ``benchmarks/conftest.py`` so the CLI reproduces the
    numbers the benchmark suite prints (and EXPERIMENTS.md records).
    """

    otb_sequences: int = 8
    vot_sequences: int = 3
    tracking_frames: int = 36
    tracking_seed: int = 100
    small_otb_sequences: int = 5
    small_tracking_frames: int = 30
    small_tracking_seed: int = 500
    detection_sequences: int = 3
    detection_frames: int = 32
    detection_seed: int = 7264

    @classmethod
    def smoke(cls) -> "DatasetSpec":
        """A near-minimal profile for CI smoke runs.

        Tracking and detection keep two sequences each: with one sequence
        ``run_dataset`` falls back to the serial path (so ``--workers 2``
        would be a no-op), and the first tracking sequence carries the empty
        attribute bundle (so the Fig. 12 smoke table would be empty).
        """
        return cls(
            otb_sequences=2,
            vot_sequences=0,
            tracking_frames=12,
            small_otb_sequences=1,
            small_tracking_frames=12,
            detection_sequences=2,
            detection_frames=12,
        )


class ExperimentContext:
    """Shared state for one harness run: runner, datasets, seed, artifacts."""

    def __init__(
        self,
        runner: Optional[SweepRunner] = None,
        datasets: Optional[DatasetSpec] = None,
        seed: int = 1,
        search_policy: Optional[str] = None,
        base_spec: Optional[PipelineSpec] = None,
    ) -> None:
        self.runner = runner or SweepRunner()
        self.datasets = datasets or DatasetSpec()
        self.seed = seed
        #: The base pipeline configuration experiments start their sweeps
        #: from (the CLI builds it from the spec flags); each experiment
        #: overrides only the dimensions it sweeps.
        if base_spec is None:
            base_spec = PipelineSpec()
        if search_policy is not None:
            base_spec = replace(base_spec, search_policy=search_policy)
        self.base_spec = base_spec
        self._dataset_cache: Dict[str, Dataset] = {}
        self._artifacts: Dict[str, ExperimentArtifact] = {}
        self._vision_soc = None

    @property
    def search_policy(self) -> str:
        """ES candidate-scan policy of :attr:`base_spec` (Fig. 11b sweeps)."""
        return self.base_spec.search_policy

    @property
    def vision_soc(self):
        """The modeled SoC named by the base spec's ``--soc-config``.

        Shared across experiments so analytic and measured energy figures
        price frames on the same hardware model.
        """
        if self._vision_soc is None:
            self._vision_soc = self.base_spec.vision_soc()
        return self._vision_soc

    # -- datasets (built lazily, shared between experiments) -----------
    @property
    def tracking_dataset(self) -> Dataset:
        if "tracking" not in self._dataset_cache:
            spec = self.datasets
            self._dataset_cache["tracking"] = build_tracking_dataset(
                otb_sequences=spec.otb_sequences,
                vot_sequences=spec.vot_sequences,
                frames_per_sequence=spec.tracking_frames,
                seed=spec.tracking_seed,
            )
        return self._dataset_cache["tracking"]

    @property
    def small_tracking_dataset(self) -> Dataset:
        if "small_tracking" not in self._dataset_cache:
            spec = self.datasets
            self._dataset_cache["small_tracking"] = build_tracking_dataset(
                otb_sequences=spec.small_otb_sequences,
                vot_sequences=0,
                frames_per_sequence=spec.small_tracking_frames,
                seed=spec.small_tracking_seed,
            )
        return self._dataset_cache["small_tracking"]

    @property
    def detection_dataset(self) -> Dataset:
        if "detection" not in self._dataset_cache:
            spec = self.datasets
            self._dataset_cache["detection"] = build_detection_dataset(
                num_sequences=spec.detection_sequences,
                frames_per_sequence=spec.detection_frames,
                seed=spec.detection_seed,
            )
        return self._dataset_cache["detection"]

    # -- artifacts ------------------------------------------------------
    def artifact(self, name: str) -> ExperimentArtifact:
        """Build (or reuse) the artifact of the experiment called ``name``.

        Memoization makes cross-experiment dependencies order-independent:
        Fig. 10b can ask for Fig. 10a's artifact whether or not it already
        ran, and ``run-all`` still builds everything exactly once.
        """
        if name not in self._artifacts:
            spec = get_experiment(name)
            self._artifacts[name] = spec.build(self)
        return self._artifacts[name]
