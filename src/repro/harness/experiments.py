"""Experiment runners that regenerate every table and figure of the paper.

Each function is self-contained: it builds (or accepts) a dataset, runs the
relevant pipelines / SoC evaluations, and returns a result object whose
``rows()`` mirror the table or data series in the paper.  The benchmark
suite (``benchmarks/``) calls these functions and asserts the qualitative
shape of the results; EXPERIMENTS.md records paper-vs-measured values.

Every pipeline-driven figure accepts an optional shared
:class:`~repro.harness.runner.SweepRunner`; passing one de-duplicates sweep
points across figures (10a/10c/12 share most of theirs) and distributes
sequence execution over worker processes.  The registry entries at the bottom
of this module expose each figure/table to ``python -m repro.harness``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.spec import PipelineSpec

from ..eval.attributes import attribute_precision
from ..eval.detection import precision_curve
from ..eval.tracking import per_sequence_success, success_curve, success_rate
from ..nn.models import (
    FIG1_REFERENCE_DETECTORS,
    MOBILE_TOPS_BUDGET,
    build_mdnet,
    build_tiny_yolo,
    build_yolo_v2,
)
from ..soc.config import SoCConfig
from ..soc.soc import EnergyBreakdown, FrameSchedule, VisionSoC
from ..video.attributes import VisualAttribute
from ..video.datasets import (
    Dataset,
    build_detection_dataset,
    build_tracking_dataset,
)
from .runner import (
    ExperimentArtifact,
    ExperimentContext,
    SweepRunner,
    register,
)


# Default EW sweep used throughout the paper's figures.
DEFAULT_EW_SWEEP: Tuple[int, ...] = (2, 4, 8, 16, 32)


# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------
@dataclass
class PrecisionCurveResult:
    """Accuracy-vs-IoU-threshold curves for a set of configurations."""

    title: str
    curves: Dict[str, Dict[float, float]] = field(default_factory=dict)
    inference_rates: Dict[str, float] = field(default_factory=dict)

    def at(self, label: str, threshold: float = 0.5) -> float:
        """Accuracy of one configuration at a specific IoU threshold."""
        curve = self.curves[label]
        key = min(curve.keys(), key=lambda t: abs(t - threshold))
        return curve[key]

    def rows(self) -> List[Sequence[object]]:
        thresholds = sorted(next(iter(self.curves.values())).keys()) if self.curves else []
        rows = []
        for label, curve in self.curves.items():
            rows.append([label] + [round(curve[t], 3) for t in thresholds])
        return rows

    def headers(self) -> List[str]:
        thresholds = sorted(next(iter(self.curves.values())).keys()) if self.curves else []
        return ["config"] + [f"IoU>{t:.1f}" for t in thresholds]


@dataclass
class EnergyExperimentResult:
    """Energy / FPS / traffic comparison across configurations."""

    title: str
    baseline_label: str
    breakdowns: Dict[str, EnergyBreakdown] = field(default_factory=dict)

    @property
    def baseline(self) -> EnergyBreakdown:
        return self.breakdowns[self.baseline_label]

    def normalized_energy(self, label: str) -> float:
        return self.breakdowns[label].normalized_to(self.baseline)

    def rows(self) -> List[Sequence[object]]:
        rows = []
        for label, result in self.breakdowns.items():
            rows.append(
                [
                    label,
                    round(result.normalized_to(self.baseline), 3),
                    round(result.fps, 1),
                    round(result.inference_rate, 3),
                    round(result.frontend_energy_per_frame_j * 1e3, 2),
                    round(result.memory_energy_per_frame_j * 1e3, 2),
                    round(result.backend_energy_per_frame_j * 1e3, 2),
                    round(result.ops_per_frame / 1e9, 2),
                    round(result.traffic_per_frame_bytes / 1e6, 1),
                ]
            )
        return rows

    @staticmethod
    def headers() -> List[str]:
        return [
            "config",
            "norm_energy",
            "fps",
            "inference_rate",
            "frontend_mJ/frame",
            "memory_mJ/frame",
            "backend_mJ/frame",
            "GOPs/frame",
            "traffic_MB/frame",
        ]


@dataclass
class ScalarSweepResult:
    """A labelled mapping of sweep points to scalar accuracy values."""

    title: str
    values: Dict[str, Dict[object, float]] = field(default_factory=dict)

    def rows(self) -> List[Sequence[object]]:
        rows = []
        for label, series in self.values.items():
            for point, value in series.items():
                rows.append([label, point, round(value, 4)])
        return rows

    @staticmethod
    def headers() -> List[str]:
        return ["config", "point", "value"]


# ----------------------------------------------------------------------
# Fig. 1 and the configuration tables
# ----------------------------------------------------------------------
def figure1_accuracy_vs_tops() -> List[Tuple[str, float, float, bool, bool]]:
    """Fig. 1: accuracy vs compute for detection approaches at 480p/60 FPS.

    Returns rows of ``(name, TOPS, accuracy %, is_cnn, fits 1 W budget)``.
    """
    rows = []
    for reference in FIG1_REFERENCE_DETECTORS:
        rows.append(
            (
                reference.name,
                reference.tops_at_480p60,
                reference.accuracy_percent,
                reference.is_cnn,
                reference.tops_at_480p60 <= MOBILE_TOPS_BUDGET,
            )
        )
    return rows


def table1_soc_configuration(config: Optional[SoCConfig] = None) -> List[Tuple[str, str]]:
    """Table 1: the modeled vision SoC."""
    return (config or SoCConfig()).table1_rows()


def table2_workloads(
    detection_frames: int = 7264,
    otb_frames: int = 59040,
    vot_frames: int = 10213,
) -> List[Tuple[str, str, float, str, int]]:
    """Table 2: benchmark summary (domain, network, GOPS at 60 FPS, dataset)."""
    yolo = build_yolo_v2()
    tiny = build_tiny_yolo()
    mdnet = build_mdnet()
    return [
        ("Object Detection", tiny.name, tiny.gops_at_fps(60.0), "In-house-like video sequences", detection_frames),
        ("Object Detection", yolo.name, yolo.gops_at_fps(60.0), "In-house-like video sequences", detection_frames),
        ("Object Tracking", mdnet.name, mdnet.gops_at_fps(60.0), "OTB-100-like", otb_frames),
        ("Object Tracking", mdnet.name, mdnet.gops_at_fps(60.0), "VOT-2014-like", vot_frames),
    ]


# ----------------------------------------------------------------------
# Fig. 9: object detection
# ----------------------------------------------------------------------
def figure9a_detection_precision(
    dataset: Optional[Dataset] = None,
    ew_values: Sequence[int] = DEFAULT_EW_SWEEP,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
    spec: Optional[PipelineSpec] = None,
) -> PrecisionCurveResult:
    """Fig. 9a: detection AP vs IoU threshold for YOLOv2, EW-N, Tiny YOLO."""
    dataset = dataset or build_detection_dataset()
    runner = runner or SweepRunner()
    spec = spec or PipelineSpec()
    result = PrecisionCurveResult(title="Fig. 9a: average precision vs IoU threshold")

    def run(label: str, backend_name: str, window: Union[int, str]) -> None:
        run_result = runner.run("detection", backend_name, dataset, window, spec=spec, seed=seed)
        result.curves[label] = precision_curve(run_result.sequences, dataset)
        result.inference_rates[label] = run_result.inference_rate

    run("YOLOv2", "yolov2", 1)
    for window in ew_values:
        run(f"EW-{window}", "yolov2", window)
    run("TinyYOLO", "tinyyolo", 1)
    return result


def figure9b_detection_energy(
    ew_values: Sequence[int] = DEFAULT_EW_SWEEP,
    num_frames: int = 7264,
    rois_per_frame: float = 6.0,
    soc: Optional[VisionSoC] = None,
) -> EnergyExperimentResult:
    """Fig. 9b: normalized SoC energy and FPS for the detection scenario.

    Includes the baseline YOLOv2, the EW sweep, the EW-8@CPU configuration
    (software-hosted extrapolation) and the Tiny YOLO comparison.
    """
    soc = soc or VisionSoC()
    yolo = build_yolo_v2()
    tiny = build_tiny_yolo()
    result = EnergyExperimentResult(
        title="Fig. 9b: detection energy and FPS", baseline_label="YOLOv2"
    )
    result.breakdowns["YOLOv2"] = soc.evaluate_constant_ew(
        yolo, 1, num_frames=num_frames, rois_per_frame=rois_per_frame
    )
    for window in ew_values:
        result.breakdowns[f"EW-{window}"] = soc.evaluate_constant_ew(
            yolo, window, num_frames=num_frames, rois_per_frame=rois_per_frame
        )
    result.breakdowns["EW-8@CPU"] = soc.evaluate_constant_ew(
        yolo,
        8,
        num_frames=num_frames,
        rois_per_frame=rois_per_frame,
        extrapolation_on_cpu=True,
        label="EW-8@CPU",
    )
    result.breakdowns["TinyYOLO"] = soc.evaluate_constant_ew(
        tiny, 1, num_frames=num_frames, rois_per_frame=rois_per_frame, label="TinyYOLO"
    )
    return result


def fold_energy_breakdown(
    soc: VisionSoC,
    network,
    results,
    *,
    extrapolation_on_cpu: bool = False,
    label: str,
) -> EnergyBreakdown:
    """Fold recorded per-frame telemetry into an :class:`EnergyBreakdown`.

    This is the *measured* energy path: instead of collapsing a run into an
    aggregate :class:`~repro.soc.soc.FrameSchedule`, every frame's recorded
    :class:`~repro.core.types.FrameTelemetry` event (true frame kind, true
    ROI count) is priced through the same
    :class:`~repro.soc.frame_cost.CostMeter` core the analytic path uses.
    Events are priced at the SoC's nominal capture setting so measured and
    analytic tables are directly comparable — what is measured is the
    schedule and the ROI counts, not the synthetic frames' tiny geometry.
    """
    meter = soc.open_meter(
        network,
        extrapolation_on_cpu=extrapolation_on_cpu,
        assume_nominal_capture=True,
        label=label,
    )
    recorded = 0
    for result in results:
        recorded += meter.record_all(result.telemetry)
    if recorded == 0:
        raise ValueError(
            f"no telemetry recorded for '{label}' (results predate the "
            "per-frame telemetry API?)"
        )
    return meter.breakdown(label)


def figure9b_detection_energy_measured(
    dataset: Optional[Dataset] = None,
    ew_values: Sequence[int] = DEFAULT_EW_SWEEP,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
    spec: Optional[PipelineSpec] = None,
    soc: Optional[VisionSoC] = None,
) -> EnergyExperimentResult:
    """Fig. 9b, measured mode: detection energy from recorded event streams.

    Runs the actual Euphrates pipeline per configuration and prices every
    processed frame, so the I/E schedule and ROI counts are measurements
    rather than the constant-EW closed form.  Shares sweep points with
    Fig. 9a through the runner cache.  The spec's ``extrapolation_host``
    picks the E-frame pricing host for every row (the dedicated EW-8@CPU
    row always prices on the CPU, mirroring the analytic figure).
    """
    dataset = dataset or build_detection_dataset()
    runner = runner or SweepRunner()
    spec = spec or PipelineSpec()
    soc = soc or VisionSoC()
    yolo = build_yolo_v2()
    tiny = build_tiny_yolo()
    host_on_cpu = spec.extrapolation_on_cpu
    result = EnergyExperimentResult(
        title="Fig. 9b (measured): detection energy and FPS from per-frame telemetry",
        baseline_label="YOLOv2",
    )

    def measure(label, backend_name, network, window, on_cpu=host_on_cpu):
        run_result = runner.run("detection", backend_name, dataset, window, spec=spec, seed=seed)
        result.breakdowns[label] = fold_energy_breakdown(
            soc, network, run_result.sequences,
            extrapolation_on_cpu=on_cpu, label=label,
        )

    measure("YOLOv2", "yolov2", yolo, 1)
    for window in ew_values:
        measure(f"EW-{window}", "yolov2", yolo, window)
    measure("EW-8@CPU", "yolov2", yolo, 8, on_cpu=True)
    measure("TinyYOLO", "tinyyolo", tiny, 1)
    return result


def figure10b_tracking_energy_measured(
    dataset: Optional[Dataset] = None,
    ew_values: Sequence[int] = DEFAULT_EW_SWEEP,
    include_adaptive: bool = True,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
    spec: Optional[PipelineSpec] = None,
    soc: Optional[VisionSoC] = None,
) -> EnergyExperimentResult:
    """Fig. 10b, measured mode: tracking energy from recorded event streams.

    The EW-A bar is the headline here: instead of assuming an adaptive
    inference rate, the adaptive controller's actual per-frame I/E
    decisions are priced event by event.
    """
    dataset = dataset or build_tracking_dataset()
    runner = runner or SweepRunner()
    spec = spec or PipelineSpec()
    soc = soc or VisionSoC()
    mdnet = build_mdnet()
    result = EnergyExperimentResult(
        title="Fig. 10b (measured): tracking energy and inference rate "
        "from per-frame telemetry",
        baseline_label="MDNet",
    )

    def measure(label, window):
        run_result = runner.run("tracking", "mdnet", dataset, window, spec=spec, seed=seed)
        result.breakdowns[label] = fold_energy_breakdown(
            soc, mdnet, run_result.sequences,
            extrapolation_on_cpu=spec.extrapolation_on_cpu, label=label,
        )

    measure("MDNet", 1)
    for window in ew_values:
        measure(f"EW-{window}", window)
    if include_adaptive:
        measure("EW-A", "adaptive")
    return result


def figure9c_compute_memory(
    ew_values: Sequence[int] = DEFAULT_EW_SWEEP,
    num_frames: int = 7264,
    rois_per_frame: float = 6.0,
    soc: Optional[VisionSoC] = None,
) -> List[Tuple[str, float, float]]:
    """Fig. 9c: average ops/frame (GOP) and memory traffic/frame (MB)."""
    energy = figure9b_detection_energy(
        ew_values=ew_values, num_frames=num_frames, rois_per_frame=rois_per_frame, soc=soc
    )
    rows = []
    for label in ["YOLOv2"] + [f"EW-{w}" for w in ew_values]:
        breakdown = energy.breakdowns[label]
        rows.append(
            (
                label,
                breakdown.ops_per_frame / 1e9,
                breakdown.traffic_per_frame_bytes / 1e6,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 10: visual tracking
# ----------------------------------------------------------------------
def figure10a_tracking_success(
    dataset: Optional[Dataset] = None,
    ew_values: Sequence[int] = DEFAULT_EW_SWEEP,
    include_adaptive: bool = True,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
    spec: Optional[PipelineSpec] = None,
) -> PrecisionCurveResult:
    """Fig. 10a: tracking success rate vs IoU threshold (MDNet, EW-N, EW-A)."""
    dataset = dataset or build_tracking_dataset()
    runner = runner or SweepRunner()
    spec = spec or PipelineSpec()
    result = PrecisionCurveResult(title="Fig. 10a: success rate vs IoU threshold")

    def run(label: str, window: Union[int, str]) -> None:
        run_result = runner.run("tracking", "mdnet", dataset, window, spec=spec, seed=seed)
        result.curves[label] = success_curve(run_result.sequences, dataset)
        result.inference_rates[label] = run_result.inference_rate

    run("MDNet", 1)
    for window in ew_values:
        run(f"EW-{window}", window)
    if include_adaptive:
        run("EW-A", "adaptive")
    return result


def figure10b_tracking_energy(
    ew_values: Sequence[int] = DEFAULT_EW_SWEEP,
    num_frames: int = 69253,
    adaptive_inference_rate: Optional[float] = None,
    soc: Optional[VisionSoC] = None,
) -> EnergyExperimentResult:
    """Fig. 10b: normalized energy and inference rate for tracking.

    ``adaptive_inference_rate`` should come from an actual EW-A run (e.g. the
    ``inference_rates["EW-A"]`` field of :func:`figure10a_tracking_success`);
    when omitted, the EW-A bar uses the paper-like value of ~0.28.
    """
    soc = soc or VisionSoC()
    mdnet = build_mdnet()
    result = EnergyExperimentResult(
        title="Fig. 10b: tracking energy and inference rate", baseline_label="MDNet"
    )
    result.breakdowns["MDNet"] = soc.evaluate_constant_ew(mdnet, 1, num_frames=num_frames)
    for window in ew_values:
        result.breakdowns[f"EW-{window}"] = soc.evaluate_constant_ew(
            mdnet, window, num_frames=num_frames
        )
    rate = adaptive_inference_rate if adaptive_inference_rate is not None else 0.28
    inference_frames = max(1, int(round(rate * num_frames)))
    adaptive_schedule = FrameSchedule(
        num_frames=num_frames,
        inference_frames=inference_frames,
        extrapolation_frames=num_frames - inference_frames,
        rois_per_frame=1.0,
    )
    result.breakdowns["EW-A"] = soc.evaluate(mdnet, adaptive_schedule, label="EW-A")
    return result


def figure10c_per_sequence_success(
    dataset: Optional[Dataset] = None,
    configurations: Sequence[Union[int, str]] = (2, 4, "adaptive"),
    iou_threshold: float = 0.5,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
    spec: Optional[PipelineSpec] = None,
) -> ScalarSweepResult:
    """Fig. 10c: per-sequence success rate for EW-2, EW-4 and EW-A."""
    dataset = dataset or build_tracking_dataset()
    runner = runner or SweepRunner()
    spec = spec or PipelineSpec()
    result = ScalarSweepResult(title="Fig. 10c: per-sequence success rate")
    for window in configurations:
        label = "EW-A" if isinstance(window, str) else f"EW-{window}"
        run_result = runner.run("tracking", "mdnet", dataset, window, spec=spec, seed=seed)
        per_sequence = per_sequence_success(run_result.sequences, dataset, iou_threshold)
        result.values[label] = dict(sorted(per_sequence.items()))
    return result


# ----------------------------------------------------------------------
# Fig. 11: motion-estimation sensitivity
# ----------------------------------------------------------------------
def figure11a_macroblock_sensitivity(
    dataset: Optional[Dataset] = None,
    block_sizes: Sequence[int] = (4, 8, 16, 32, 64, 128),
    ew_values: Sequence[int] = (2, 8, 32),
    iou_threshold: float = 0.5,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
    spec: Optional[PipelineSpec] = None,
) -> ScalarSweepResult:
    """Fig. 11a: tracking success rate vs macroblock size for several EWs."""
    dataset = dataset or build_tracking_dataset(otb_sequences=8, vot_sequences=0)
    runner = runner or SweepRunner()
    spec = spec or PipelineSpec()
    result = ScalarSweepResult(title="Fig. 11a: success rate vs macroblock size")
    for window in ew_values:
        series: Dict[object, float] = {}
        for block_size in block_sizes:
            run_result = runner.run(
                "tracking",
                "mdnet",
                dataset,
                window,
                spec=replace(spec, block_size=block_size),
                seed=seed,
            )
            series[block_size] = success_rate(run_result.sequences, dataset, iou_threshold)
        result.values[f"EW-{window}"] = series
    return result


def figure11b_es_vs_tss(
    dataset: Optional[Dataset] = None,
    ew_values: Sequence[int] = (2, 8, 32),
    thresholds: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
    search_policy: Optional[str] = None,
    spec: Optional[PipelineSpec] = None,
) -> Dict[str, List[Tuple[float, float, float]]]:
    """Fig. 11b: success rate with exhaustive search vs three-step search.

    Returns, per EW configuration, a list of ``(iou_threshold, es, tss)``
    points — the scatter data of the figure.  ``search_policy`` picks the ES
    candidate-scan policy; because every policy is result-identical the
    scatter does not depend on it, only the work spent producing it does.
    """
    dataset = dataset or build_tracking_dataset(otb_sequences=8, vot_sequences=0)
    runner = runner or SweepRunner()
    spec = spec or PipelineSpec()
    if search_policy is not None:
        spec = replace(spec, search_policy=search_policy)
    scatter: Dict[str, List[Tuple[float, float, float]]] = {}
    for window in ew_values:
        es_run = runner.run(
            "tracking",
            "mdnet",
            dataset,
            window,
            spec=replace(spec, exhaustive_search=True),
            seed=seed,
        )
        tss_run = runner.run(
            "tracking",
            "mdnet",
            dataset,
            window,
            spec=replace(spec, exhaustive_search=False),
            seed=seed,
        )
        es_curve = success_curve(es_run.sequences, dataset, thresholds)
        tss_curve = success_curve(tss_run.sequences, dataset, thresholds)
        scatter[f"EW-{window}"] = [
            (float(t), es_curve[float(t)], tss_curve[float(t)]) for t in thresholds
        ]
    return scatter


def search_policy_comparison(
    height: int = 192,
    width: int = 256,
    block_size: int = 16,
    search_range: int = 7,
    kernel_backend: str = "numpy",
    seed: int = 0,
) -> List[Tuple[str, float, int, bool, str]]:
    """Compare ES candidate-scan policies on one synthetic frame pair.

    Returns rows of ``(policy, evaluated_candidate_fraction, operation
    count, identical_to_full, active_kernel_backend)`` — the work each
    policy spends to produce the motion field the full scan would, a direct
    bit-identity check, and the SAD kernel backend that actually ran
    (``numba`` degrades to ``numpy`` when Numba is absent, and the artifact
    must record what happened).  Deterministic (op counts, not wall time),
    so experiment artifacts and CI smoke runs can assert on it.
    """
    from ..motion.block_matching import (
        BlockMatcher,
        BlockMatchingConfig,
        SearchPolicy,
        SearchStrategy,
    )
    from .perf import synthetic_luma_sequence

    frames = synthetic_luma_sequence(height, width, 2, seed=seed)
    rows: List[Tuple[str, float, int, bool, str]] = []
    reference = None
    for policy in (
        SearchPolicy.FULL,
        SearchPolicy.SPIRAL,
        SearchPolicy.PRUNED,
        SearchPolicy.HISTOGRAM,
    ):
        matcher = BlockMatcher(
            BlockMatchingConfig(
                block_size=block_size,
                search_range=search_range,
                strategy=SearchStrategy.EXHAUSTIVE,
                search_policy=policy,
                kernel_backend=kernel_backend,
            )
        )
        field = matcher.estimate(frames[1], frames[0])
        if reference is None:
            reference = field
        identical = bool(
            np.array_equal(field.vectors, reference.vectors)
            and np.array_equal(field.sad, reference.sad)
        )
        stats = matcher.last_search_stats
        rows.append(
            (
                policy.value,
                stats.evaluated_fraction,
                matcher.last_operation_count,
                identical,
                matcher.last_kernel_backend,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 12: visual-attribute sensitivity
# ----------------------------------------------------------------------
def figure12_attribute_sensitivity(
    dataset: Optional[Dataset] = None,
    extrapolation_window: int = 2,
    iou_threshold: float = 0.5,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
    spec: Optional[PipelineSpec] = None,
) -> Dict[str, Dict[VisualAttribute, float]]:
    """Fig. 12: per-attribute accuracy, baseline MDNet vs Euphrates EW-2."""
    dataset = dataset or build_tracking_dataset()
    runner = runner or SweepRunner()
    spec = spec or PipelineSpec()
    output: Dict[str, Dict[VisualAttribute, float]] = {}

    baseline_run = runner.run("tracking", "mdnet", dataset, 1, spec=spec, seed=seed)
    output["MDNet"] = attribute_precision(baseline_run.sequences, dataset, iou_threshold)

    euphrates_run = runner.run(
        "tracking", "mdnet", dataset, extrapolation_window, spec=spec, seed=seed
    )
    output[f"EW-{extrapolation_window}"] = attribute_precision(
        euphrates_run.sequences, dataset, iou_threshold
    )
    return output


# ----------------------------------------------------------------------
# Registry entries: one per paper figure/table, all built on the shared
# runner so run-all executes each sweep point at most once.
# ----------------------------------------------------------------------
def _dataset_metadata(dataset: Dataset) -> Dict[str, object]:
    return {
        "dataset": dataset.name,
        "num_sequences": len(dataset),
        "total_frames": dataset.total_frames,
    }


@register("fig1", "Fig. 1: accuracy vs compute for detection at 480p/60 FPS", kind="figure")
def _fig1(context: ExperimentContext) -> ExperimentArtifact:
    artifact = ExperimentArtifact(
        name="fig1", title="Fig. 1: accuracy vs compute for detection at 480p/60 FPS", kind="figure"
    )
    artifact.add_table(
        ["approach", "TOPS@480p60", "accuracy_%", "is_cnn", "fits_1W_budget"],
        figure1_accuracy_vs_tops(),
    )
    return artifact


@register("table1", "Table 1: modeled vision SoC configuration", kind="table")
def _table1(context: ExperimentContext) -> ExperimentArtifact:
    artifact = ExperimentArtifact(
        name="table1", title="Table 1: modeled vision SoC configuration", kind="table"
    )
    artifact.add_table(["component", "configuration"], table1_soc_configuration())
    return artifact


@register("table2", "Table 2: benchmark workloads", kind="table")
def _table2(context: ExperimentContext) -> ExperimentArtifact:
    artifact = ExperimentArtifact(name="table2", title="Table 2: benchmark workloads", kind="table")
    artifact.add_table(
        ["domain", "network", "GOPS@60fps", "dataset", "frames"],
        [[d, n, round(g, 1), ds, f] for d, n, g, ds, f in table2_workloads()],
    )
    return artifact


@register("fig9a", "Fig. 9a: detection average precision vs IoU threshold", kind="figure")
def _fig9a(context: ExperimentContext) -> ExperimentArtifact:
    result = figure9a_detection_precision(
        dataset=context.detection_dataset,
        seed=context.seed,
        runner=context.runner,
        spec=context.base_spec,
    )
    artifact = ExperimentArtifact(name="fig9a", title=result.title, kind="figure")
    artifact.add_table(result.headers(), result.rows())
    artifact.metadata["inference_rates"] = {
        label: round(rate, 4) for label, rate in result.inference_rates.items()
    }
    artifact.metadata.update(_dataset_metadata(context.detection_dataset))
    artifact.metadata["seed"] = context.seed
    return artifact


@register("fig9b", "Fig. 9b: detection energy and FPS", kind="figure")
def _fig9b(context: ExperimentContext) -> ExperimentArtifact:
    result = figure9b_detection_energy(soc=context.vision_soc)
    artifact = ExperimentArtifact(name="fig9b", title=result.title, kind="figure")
    artifact.add_table(result.headers(), result.rows())
    return artifact


def _measured_vs_analytic_metadata(
    measured: EnergyExperimentResult, analytic: EnergyExperimentResult
) -> Dict[str, object]:
    """Per-configuration % delta of measured vs analytic per-frame energy."""
    deltas = {}
    for label, breakdown in measured.breakdowns.items():
        reference = analytic.breakdowns.get(label)
        if reference is None:
            continue
        deltas[label] = round(
            100.0 * (breakdown.energy_per_frame_j / reference.energy_per_frame_j - 1.0),
            2,
        )
    return {"vs_analytic_pct": deltas}


@register(
    "fig9b_measured",
    "Fig. 9b (measured): detection energy from per-frame telemetry",
    kind="figure",
)
def _fig9b_measured(context: ExperimentContext) -> ExperimentArtifact:
    result = figure9b_detection_energy_measured(
        dataset=context.detection_dataset,
        seed=context.seed,
        runner=context.runner,
        spec=context.base_spec,
        soc=context.vision_soc,
    )
    artifact = ExperimentArtifact(name="fig9b_measured", title=result.title, kind="figure")
    artifact.add_table(result.headers(), result.rows())
    artifact.metadata.update(
        _measured_vs_analytic_metadata(
            result, figure9b_detection_energy(soc=context.vision_soc)
        )
    )
    artifact.metadata.update(_dataset_metadata(context.detection_dataset))
    artifact.metadata["seed"] = context.seed
    return artifact


@register("fig9c", "Fig. 9c: compute and memory traffic per frame", kind="figure")
def _fig9c(context: ExperimentContext) -> ExperimentArtifact:
    artifact = ExperimentArtifact(
        name="fig9c", title="Fig. 9c: compute and memory traffic per frame", kind="figure"
    )
    artifact.add_table(
        ["config", "GOPs/frame", "traffic_MB/frame"],
        [[label, round(ops, 2), round(traffic, 1)] for label, ops, traffic in figure9c_compute_memory()],
    )
    return artifact


@register("fig10a", "Fig. 10a: tracking success rate vs IoU threshold", kind="figure")
def _fig10a(context: ExperimentContext) -> ExperimentArtifact:
    result = figure10a_tracking_success(
        dataset=context.tracking_dataset,
        seed=context.seed,
        runner=context.runner,
        spec=context.base_spec,
    )
    artifact = ExperimentArtifact(name="fig10a", title=result.title, kind="figure")
    artifact.add_table(result.headers(), result.rows())
    artifact.metadata["inference_rates"] = {
        label: round(rate, 4) for label, rate in result.inference_rates.items()
    }
    artifact.metadata.update(_dataset_metadata(context.tracking_dataset))
    artifact.metadata["seed"] = context.seed
    return artifact


@register("fig10b", "Fig. 10b: tracking energy and inference rate", kind="figure")
def _fig10b(context: ExperimentContext) -> ExperimentArtifact:
    # The EW-A bar is driven by the inference rate actually measured in the
    # Fig. 10a sweep (memoized, so run-all still runs that sweep only once).
    measured = context.artifact("fig10a").metadata.get("inference_rates", {})
    result = figure10b_tracking_energy(
        adaptive_inference_rate=measured.get("EW-A"), soc=context.vision_soc
    )
    artifact = ExperimentArtifact(name="fig10b", title=result.title, kind="figure")
    artifact.add_table(result.headers(), result.rows())
    if "EW-A" in measured:
        artifact.metadata["adaptive_inference_rate"] = measured["EW-A"]
    return artifact


@register(
    "fig10b_measured",
    "Fig. 10b (measured): tracking energy from per-frame telemetry",
    kind="figure",
)
def _fig10b_measured(context: ExperimentContext) -> ExperimentArtifact:
    result = figure10b_tracking_energy_measured(
        dataset=context.tracking_dataset,
        seed=context.seed,
        runner=context.runner,
        spec=context.base_spec,
        soc=context.vision_soc,
    )
    artifact = ExperimentArtifact(
        name="fig10b_measured", title=result.title, kind="figure"
    )
    artifact.add_table(result.headers(), result.rows())
    rates = context.artifact("fig10a").metadata.get("inference_rates", {})
    artifact.metadata.update(
        _measured_vs_analytic_metadata(
            result,
            figure10b_tracking_energy(
                adaptive_inference_rate=rates.get("EW-A"), soc=context.vision_soc
            ),
        )
    )
    artifact.metadata.update(_dataset_metadata(context.tracking_dataset))
    artifact.metadata["seed"] = context.seed
    return artifact


@register("fig10c", "Fig. 10c: per-sequence tracking success rate", kind="figure")
def _fig10c(context: ExperimentContext) -> ExperimentArtifact:
    result = figure10c_per_sequence_success(
        dataset=context.tracking_dataset,
        seed=context.seed,
        runner=context.runner,
        spec=context.base_spec,
    )
    artifact = ExperimentArtifact(name="fig10c", title=result.title, kind="figure")
    artifact.add_table(result.headers(), result.rows())
    artifact.metadata.update(_dataset_metadata(context.tracking_dataset))
    artifact.metadata["seed"] = context.seed
    return artifact


@register("fig11a", "Fig. 11a: success rate vs macroblock size", kind="figure")
def _fig11a(context: ExperimentContext) -> ExperimentArtifact:
    result = figure11a_macroblock_sensitivity(
        dataset=context.small_tracking_dataset,
        seed=context.seed,
        runner=context.runner,
        spec=context.base_spec,
    )
    artifact = ExperimentArtifact(name="fig11a", title=result.title, kind="figure")
    artifact.add_table(result.headers(), result.rows())
    artifact.metadata.update(_dataset_metadata(context.small_tracking_dataset))
    artifact.metadata["seed"] = context.seed
    return artifact


@register("fig11b", "Fig. 11b: exhaustive search vs three-step search", kind="figure")
def _fig11b(context: ExperimentContext) -> ExperimentArtifact:
    scatter = figure11b_es_vs_tss(
        dataset=context.small_tracking_dataset,
        seed=context.seed,
        runner=context.runner,
        spec=context.base_spec,
    )
    artifact = ExperimentArtifact(
        name="fig11b", title="Fig. 11b: exhaustive search vs three-step search", kind="figure"
    )
    artifact.add_table(
        ["config", "iou_threshold", "ES", "TSS"],
        [
            [label, threshold, round(es, 4), round(tss, 4)]
            for label, points in scatter.items()
            for threshold, es, tss in points
        ],
    )
    kernel_backend = context.base_spec.kernel_backend
    artifact.add_table(
        [
            "search_policy",
            "evaluated_fraction",
            "operation_count",
            "identical_to_full",
            "kernel_backend",
        ],
        [
            [policy, round(fraction, 4), ops, identical, backend]
            for policy, fraction, ops, identical, backend in search_policy_comparison(
                kernel_backend=kernel_backend
            )
        ],
        title="ES candidate-scan policies: work spent for the identical result",
    )
    artifact.metadata.update(_dataset_metadata(context.small_tracking_dataset))
    artifact.metadata["seed"] = context.seed
    artifact.metadata["search_policy"] = context.search_policy
    artifact.metadata["kernel_backend"] = kernel_backend
    return artifact


@register("fig12", "Fig. 12: accuracy sensitivity to visual attributes", kind="figure")
def _fig12(context: ExperimentContext) -> ExperimentArtifact:
    breakdown = figure12_attribute_sensitivity(
        dataset=context.tracking_dataset,
        seed=context.seed,
        runner=context.runner,
        spec=context.base_spec,
    )
    baseline = breakdown["MDNet"]
    euphrates = breakdown["EW-2"]
    artifact = ExperimentArtifact(
        name="fig12", title="Fig. 12: accuracy sensitivity to visual attributes", kind="figure"
    )
    artifact.add_table(
        ["attribute", "MDNet", "EW-2", "loss"],
        [
            [
                attribute.display_name,
                round(baseline[attribute], 4),
                round(euphrates.get(attribute, 0.0), 4),
                round(baseline[attribute] - euphrates.get(attribute, 0.0), 4),
            ]
            for attribute in baseline
        ],
    )
    artifact.metadata.update(_dataset_metadata(context.tracking_dataset))
    artifact.metadata["seed"] = context.seed
    return artifact
