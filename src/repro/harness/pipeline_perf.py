"""End-to-end frame-path measurement: full-session fps + per-stage breakdown.

Where :mod:`repro.harness.perf` times the motion-estimation kernels in
isolation, this module times the *whole* per-frame path — ISP stages, motion
search, denoise blend, extrapolation and backend inference — by submitting
synthetic camera frames through a real :class:`~repro.core.session.EuphratesSession`.
Two consumers share the machinery:

* ``benchmarks/run_pipeline_bench.py`` appends dated ``pipeline`` entries to
  the ``BENCH_motion.json`` trajectory (end-to-end fps at 720p/1080p for
  I-heavy and E-heavy schedules, plus floor-guarded health ratios);
* ``python -m repro.harness profile`` prints the per-stage wall-clock
  breakdown table assembled from the ``FrameTelemetry`` stage timings.

Frames come from the deterministic :class:`~repro.video.synthetic.SequenceGenerator`
(seeded, analytically annotated), so simulated backends have ground truth and
the I/E schedule is exactly the one a live camera would produce.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.backends import tracking_backend_for
from ..core.profiler import STAGE_NAMES, StageProfiler
from ..core.types import FrameKind
from ..core.spec import PipelineSpec
from ..video.synthetic import SequenceConfig, SequenceGenerator
from .perf import RESOLUTIONS

#: Schedule name -> constant extrapolation window.  ``i_heavy`` runs
#: inference on every frame (conventional SoC); ``e_heavy`` amortises one
#: inference over seven extrapolations (the paper's aggressive setting).
SCHEDULES: Dict[str, int] = {"i_heavy": 1, "e_heavy": 8}

#: Frames excluded from timing at the start of every session: the first
#: I-frame (backend warm-up, allocator growth) and the first E-frame (scratch
#: buffers and denoise state come up cold).
WARMUP_FRAMES = 2


def make_sequence(height: int, width: int, num_frames: int, seed: int = 0):
    """A deterministic single-object synthetic camera clip at ``height`` x ``width``."""
    return SequenceGenerator(
        SequenceConfig(
            name=f"pipebench_{height}p",
            frame_width=width,
            frame_height=height,
            num_frames=num_frames,
            num_objects=1,
            seed=seed,
        )
    ).generate()


@dataclass
class ScheduleTiming:
    """Wall-clock result of one (resolution, schedule) session run."""

    window: int
    frames_timed: int
    #: Mean seconds per frame over all timed frames (I and E together).
    s_per_frame: float
    #: Mean seconds per timed E-frame (0.0 when the schedule has none).
    e_s_per_frame: float
    #: Mean seconds per timed I-frame (0.0 when the schedule has none).
    i_s_per_frame: float
    #: Per-stage aggregation of the session's ``FrameTelemetry`` timings.
    profiler: StageProfiler = field(default_factory=StageProfiler)

    @property
    def fps(self) -> float:
        return 1.0 / self.s_per_frame if self.s_per_frame > 0 else 0.0

    @property
    def e_fps(self) -> float:
        return 1.0 / self.e_s_per_frame if self.e_s_per_frame > 0 else 0.0


def run_session_timed(
    spec: PipelineSpec,
    sequence,
    *,
    seed: int = 0,
    warmup_frames: int = WARMUP_FRAMES,
) -> ScheduleTiming:
    """Submit every frame of ``sequence`` through a fresh session, timed.

    The first ``warmup_frames`` submissions are excluded from the statistics
    (first-call costs: backend warm-up, scratch-buffer allocation, code-path
    warming); everything after is the steady state the bench reports.
    """
    backend = tracking_backend_for("mdnet", seed=seed)
    pipeline = spec.build(backend)
    session = pipeline.open_session(source=sequence)

    submit_s: List[float] = []
    for _, frame in sequence.iter_frames():
        start = time.perf_counter()
        session.submit(frame)
        submit_s.append(time.perf_counter() - start)

    telemetry = session.take_telemetry()
    session.finish()
    profiler = StageProfiler()
    timed_s: List[float] = []
    e_s: List[float] = []
    i_s: List[float] = []
    for index, record in enumerate(telemetry):
        if index < warmup_frames:
            continue
        profiler.observe(record)
        timed_s.append(submit_s[index])
        if record.kind is FrameKind.EXTRAPOLATION:
            e_s.append(submit_s[index])
        else:
            i_s.append(submit_s[index])

    window = spec.extrapolation_window
    return ScheduleTiming(
        window=int(window) if not isinstance(window, str) else -1,
        frames_timed=len(timed_s),
        s_per_frame=sum(timed_s) / len(timed_s) if timed_s else 0.0,
        e_s_per_frame=sum(e_s) / len(e_s) if e_s else 0.0,
        i_s_per_frame=sum(i_s) / len(i_s) if i_s else 0.0,
        profiler=profiler,
    )


def measure_eframe_alloc_mb(
    spec: PipelineSpec, sequence, *, seed: int = 0, warmup_frames: int = 4
) -> float:
    """Peak heap churn (MB) of one steady-state E-frame ``submit()``.

    Runs a session under :mod:`tracemalloc` (numpy registers its buffer
    allocations with it), warms the scratch buffers over ``warmup_frames``
    submissions, then reports the worst peak-minus-baseline delta across the
    remaining E-frames.  This is the number the allocation-free-steady-state
    floor (``max_pipeline_alloc_mb_per_eframe_720p``) guards.
    """
    backend = tracking_backend_for("mdnet", seed=seed)
    pipeline = spec.build(backend)
    session = pipeline.open_session(source=sequence)

    frames = list(sequence.iter_frames())
    worst_mb = 0.0
    tracemalloc.start()
    try:
        for index, (_, frame) in enumerate(frames):
            is_e_frame = session.next_frame_kind() is FrameKind.EXTRAPOLATION
            before, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            session.submit(frame)
            _, peak = tracemalloc.get_traced_memory()
            if index >= warmup_frames and is_e_frame:
                worst_mb = max(worst_mb, (peak - before) / 1e6)
            session.take_results()
            session.take_telemetry()
    finally:
        tracemalloc.stop()
    session.finish()
    return worst_mb


def benchmark_pipeline(
    spec: PipelineSpec,
    resolutions: Optional[Dict[str, Tuple[int, int]]] = None,
    num_frames: int = 18,
    seed: int = 0,
    schedules: Optional[Dict[str, int]] = None,
    measure_alloc: bool = True,
) -> dict:
    """Time full sessions at each resolution under each I/E schedule."""
    resolutions = resolutions or RESOLUTIONS
    schedules = schedules or SCHEDULES

    results = []
    for label, (height, width) in resolutions.items():
        sequence = make_sequence(height, width, num_frames, seed=seed)
        entry: Dict[str, object] = {
            "resolution": label,
            "height": height,
            "width": width,
            "frames": num_frames,
        }
        for schedule_name, window in schedules.items():
            timing = run_session_timed(spec.with_window(window), sequence, seed=seed)
            entry[schedule_name] = {
                "window": window,
                "frames_timed": timing.frames_timed,
                "s_per_frame": timing.s_per_frame,
                "fps": timing.fps,
                "e_s_per_frame": timing.e_s_per_frame,
                "e_fps": timing.e_fps,
                "i_s_per_frame": timing.i_s_per_frame,
                "stage_s_per_frame": timing.profiler.mean_seconds(),
            }
        if measure_alloc:
            alloc_sequence = make_sequence(
                height, width, min(num_frames, 10), seed=seed
            )
            entry["e_frame_alloc_mb"] = measure_eframe_alloc_mb(
                spec.with_window(SCHEDULES["e_heavy"]), alloc_sequence, seed=seed
            )
        results.append(entry)

    return {
        "benchmark": "pipeline",
        "spec": spec.to_cli_args(),
        "kernel_backend": spec.kernel_backend,
        "results": results,
    }


# ----------------------------------------------------------------------
# Per-stage profile table (the ``profile`` subcommand)
# ----------------------------------------------------------------------
def profile_report(
    spec: PipelineSpec,
    resolutions: Optional[Dict[str, Tuple[int, int]]] = None,
    num_frames: int = 18,
    seed: int = 0,
    schedules: Optional[Dict[str, int]] = None,
) -> dict:
    """Per-stage wall-clock breakdown at each resolution, I- vs E-frames."""
    resolutions = resolutions or RESOLUTIONS
    schedules = schedules or SCHEDULES

    sections = []
    for label, (height, width) in resolutions.items():
        sequence = make_sequence(height, width, num_frames, seed=seed)
        for schedule_name, window in schedules.items():
            timing = run_session_timed(spec.with_window(window), sequence, seed=seed)
            for kind in ("I", "E"):
                summary = timing.profiler.summary(kind)
                if not summary.frames:
                    continue
                sections.append(
                    {
                        "resolution": label,
                        "schedule": schedule_name,
                        "window": window,
                        "kind": kind,
                        "frames": summary.frames,
                        "mean_total_s": summary.mean_total_s,
                        "fps": summary.fps,
                        "stages": summary.rows(),
                    }
                )
    return {"spec": spec.to_cli_args(), "sections": sections}


def format_profile_table(report: dict) -> str:
    """Render :func:`profile_report` output as an aligned text table."""
    lines: List[str] = []
    for section in report["sections"]:
        lines.append(
            "{resolution} {schedule} (EW={window}) {kind}-frames: "
            "{frames} frames, {ms:.2f} ms/frame ({fps:.2f} fps)".format(
                resolution=section["resolution"],
                schedule=section["schedule"],
                window=section["window"],
                kind=section["kind"],
                frames=section["frames"],
                ms=section["mean_total_s"] * 1e3,
                fps=section["fps"],
            )
        )
        lines.append(f"  {'stage':<16} {'ms/frame':>10} {'share':>8}")
        for row in section["stages"]:
            lines.append(
                f"  {row['stage']:<16} {row['mean_s'] * 1e3:>10.3f} "
                f"{row['share'] * 100:>7.1f}%"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


__all__ = [
    "SCHEDULES",
    "STAGE_NAMES",
    "ScheduleTiming",
    "benchmark_pipeline",
    "format_profile_table",
    "make_sequence",
    "measure_eframe_alloc_mb",
    "profile_report",
    "run_session_timed",
]
