"""Plain-text table formatting for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a list of rows as an aligned ASCII table.

    Numbers are formatted with a sensible number of significant digits; all
    other values fall back to ``str``.
    """
    rendered_rows: List[List[str]] = [[_format_cell(cell) for cell in row] for row in rows]
    all_rows = [list(map(str, headers))] + rendered_rows
    widths = [max(len(row[i]) for row in all_rows) for i in range(len(headers))]

    def render(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    separator = "  ".join("-" * width for width in widths)
    lines = [render(all_rows[0]), separator]
    lines.extend(render(row) for row in rendered_rows)
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
