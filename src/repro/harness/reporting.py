"""Table formatting and structured-result emitters for experiment results.

Three output formats share one cell-formatting rule set:

* :func:`format_table` — aligned ASCII tables for terminal / pytest output.
* :func:`format_markdown_table` — GitHub-flavoured markdown (EXPERIMENTS.md).
* :func:`artifact_to_dict` / :func:`artifact_from_dict` — lossless JSON
  round-trip of an :class:`~repro.harness.runner.ExperimentArtifact`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Sequence

if TYPE_CHECKING:
    from .runner import ExperimentArtifact


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a list of rows as an aligned ASCII table.

    Numbers are formatted with a sensible number of significant digits; all
    other values fall back to ``str``.  Rows shorter than the header are
    padded with empty cells; extra cells beyond the header are kept (the
    header row is padded instead), so ragged input never raises.
    """
    header_row, rendered_rows, num_columns = _normalize(headers, rows)
    all_rows = [header_row] + rendered_rows
    widths = [max(len(row[i]) for row in all_rows) for i in range(num_columns)]

    def render(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    separator = "  ".join("-" * width for width in widths)
    lines = [render(all_rows[0]), separator]
    lines.extend(render(row) for row in all_rows[1:])
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    header_row, rendered_rows, num_columns = _normalize(headers, rows)
    lines = ["| " + " | ".join(header_row) + " |"]
    lines.append("|" + "|".join(" --- " for _ in range(num_columns)) + "|")
    for row in rendered_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _normalize(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> "tuple[List[str], List[List[str]], int]":
    """Shared cell rendering + ragged-row padding for both table formats."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    header_row = list(map(str, headers))
    num_columns = max([len(header_row)] + [len(row) for row in rendered_rows])

    def pad(row: List[str]) -> List[str]:
        return row + [""] * (num_columns - len(row))

    return pad(header_row), [pad(row) for row in rendered_rows], num_columns


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


# ----------------------------------------------------------------------
# JSON emitters
# ----------------------------------------------------------------------
def sanitize_json_value(value: object) -> object:
    """Make a value strict-JSON safe (recursively).

    ``json.dumps`` happily emits the non-standard ``NaN``/``Infinity``
    literals, which strict parsers (and most other languages) reject.
    Artifacts can legitimately carry non-finite measurements — a
    zero-duration run has infinite fps, a 0/0 rate is NaN — so non-finite
    floats are spelled as the strings ``"NaN"`` / ``"Infinity"`` /
    ``"-Infinity"`` instead of corrupting the document.  Tuples become
    lists; unknown objects fall back to ``str``.
    """
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value == float("inf"):
            return "Infinity"
        if value == float("-inf"):
            return "-Infinity"
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(key): sanitize_json_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_json_value(item) for item in value]
    return str(value)


def artifact_to_dict(artifact: "ExperimentArtifact") -> dict:
    """Convert an artifact to a strict-JSON-serializable dict.

    Cell values and metadata pass through :func:`sanitize_json_value`, so
    the result round-trips through any JSON parser even when a table holds
    NaN/inf measurements.
    """
    return {
        "name": artifact.name,
        "title": artifact.title,
        "kind": artifact.kind,
        "tables": [
            {
                "title": table.title,
                "headers": [str(header) for header in table.headers],
                "rows": [[sanitize_json_value(cell) for cell in row] for row in table.rows],
            }
            for table in artifact.tables
        ],
        "metadata": sanitize_json_value(dict(artifact.metadata)),
    }


def artifact_from_dict(payload: dict) -> "ExperimentArtifact":
    """Rebuild an artifact from :func:`artifact_to_dict` output."""
    from .runner import ExperimentArtifact, ResultTable

    return ExperimentArtifact(
        name=payload["name"],
        title=payload["title"],
        kind=payload["kind"],
        tables=[
            ResultTable(
                title=table["title"],
                headers=list(table["headers"]),
                rows=[list(row) for row in table["rows"]],
            )
            for table in payload.get("tables", [])
        ],
        metadata=dict(payload.get("metadata", {})),
    )


def write_artifact_json(artifact: "ExperimentArtifact", directory: str | Path) -> Path:
    """Write ``<directory>/<name>.json`` and return the path.

    The JSON is emitted with sorted keys and a trailing newline so repeated
    runs of the same configuration produce byte-identical files.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{artifact.name}.json"
    path.write_text(
        json.dumps(artifact_to_dict(artifact), indent=2, sort_keys=True, allow_nan=False)
        + "\n",
        encoding="utf-8",
    )
    return path


def format_artifact(artifact: "ExperimentArtifact", markdown: bool = False) -> str:
    """Render every table of an artifact as text (ASCII or markdown).

    Per-table titles are only printed when they add information beyond the
    artifact title (the caller is expected to print that as the heading).
    """
    emit = format_markdown_table if markdown else format_table
    blocks = []
    for table in artifact.tables:
        rendered = emit(table.headers, table.rows)
        if table.title and table.title != artifact.title:
            rendered = f"{table.title}\n\n{rendered}"
        blocks.append(rendered)
    if not artifact.tables:
        blocks.append("(no tabular data)")
    return "\n\n".join(blocks)
