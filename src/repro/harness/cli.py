"""``python -m repro.harness`` — regenerate the paper's figures and tables.

Examples::

    # Everything, serial, ASCII tables:
    PYTHONPATH=src python -m repro.harness run-all

    # One figure as markdown (what EXPERIMENTS.md records), JSON on the side:
    PYTHONPATH=src python -m repro.harness run fig10a --markdown --json-dir out/

    # Analytic vs measured energy (the latter priced from per-frame
    # telemetry recorded by actual pipeline runs), on a 720p30 SoC:
    PYTHONPATH=src python -m repro.harness run fig9b fig9b_measured --soc-config 720p30

    # Process-parallel sweep on a multi-core box:
    PYTHONPATH=src python -m repro.harness run-all --workers 8

    # CI smoke profile (1 sequence per dataset):
    PYTHONPATH=src python -m repro.harness run-all --smoke --workers 2

All results are deterministic for a given (seed, dataset profile):
``--workers 1`` takes exactly the sequential code path, and constant-window
results are identical at any worker count (adaptive-window runs chain
controller state across sequences only in the serial path; see
``EuphratesPipeline.run_dataset``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..core.spec import PipelineSpec
from .reporting import format_artifact, write_artifact_json
from .runner import (
    DatasetSpec,
    ExperimentContext,
    ExperimentSpec,
    SweepRunner,
    get_experiment,
    list_experiments,
)


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sequence execution (default: 1, serial)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="backend seed for every sweep (default: 1)"
    )
    parser.add_argument(
        "--json-dir",
        metavar="DIR",
        default=None,
        help="also write one <experiment>.json per artifact into DIR",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit markdown tables instead of aligned ASCII",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="near-minimal 2-sequence datasets (CI smoke profile) instead of the full benchmark sizes",
    )
    # The base pipeline configuration (block size, search range/policy, ...)
    # is one shared PipelineSpec; experiments override only the dimensions
    # they sweep (which is why there is no --window flag here).
    PipelineSpec.add_cli_options(parser, include_window=False)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the Euphrates paper's figures and tables.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list every registered experiment")

    run_parser = subparsers.add_parser("run", help="run one or more experiments by name")
    run_parser.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    _add_run_options(run_parser)

    run_all_parser = subparsers.add_parser("run-all", help="run every registered experiment")
    _add_run_options(run_all_parser)

    return parser


def _make_context(args: argparse.Namespace) -> ExperimentContext:
    workers = args.workers if args.workers and args.workers > 1 else None
    datasets = DatasetSpec.smoke() if args.smoke else DatasetSpec()
    return ExperimentContext(
        runner=SweepRunner(max_workers=workers),
        datasets=datasets,
        seed=args.seed,
        base_spec=PipelineSpec.from_cli_args(args),
    )


def _run(specs: Sequence[ExperimentSpec], args: argparse.Namespace) -> int:
    context = _make_context(args)
    for index, spec in enumerate(specs):
        artifact = context.artifact(spec.name)
        if index:
            print()
        if args.markdown:
            print(f"### {artifact.title}\n")
            print(format_artifact(artifact, markdown=True))
        else:
            print(f"== {artifact.name}: {artifact.title} ==\n")
            print(format_artifact(artifact))
        if args.json_dir:
            path = write_artifact_json(artifact, args.json_dir)
            print(f"[wrote {path}]", file=sys.stderr)
    runner = context.runner
    print(
        f"[{len(specs)} experiment(s); sweep cache: {runner.cache_misses} pipeline run(s), "
        f"{runner.cache_hits} reused; workers: {args.workers}]",
        file=sys.stderr,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for spec in list_experiments():
            print(f"{spec.name:8s} {spec.title}")
        return 0
    if args.command == "run":
        # Resolve names before running anything so a KeyError from inside an
        # experiment builder is never mistaken for a bad experiment name.
        try:
            specs = [get_experiment(name) for name in args.experiments]
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        return _run(specs, args)
    if args.command == "run-all":
        return _run(list_experiments(), args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
