"""``python -m repro.harness`` — regenerate the paper's figures and tables.

Examples::

    # Everything, serial, ASCII tables:
    PYTHONPATH=src python -m repro.harness run-all

    # One figure as markdown (what EXPERIMENTS.md records), JSON on the side:
    PYTHONPATH=src python -m repro.harness run fig10a --markdown --json-dir out/

    # Analytic vs measured energy (the latter priced from per-frame
    # telemetry recorded by actual pipeline runs), on a 720p30 SoC:
    PYTHONPATH=src python -m repro.harness run fig9b fig9b_measured --soc-config 720p30

    # Process-parallel sweep on a multi-core box:
    PYTHONPATH=src python -m repro.harness run-all --workers 8

    # CI smoke profile (1 sequence per dataset):
    PYTHONPATH=src python -m repro.harness run-all --smoke --workers 2

All results are deterministic for a given (seed, dataset profile):
``--workers 1`` takes exactly the sequential code path, and constant-window
results are identical at any worker count (adaptive-window runs chain
controller state across sequences only in the serial path; see
``EuphratesPipeline.run_dataset``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..core.spec import PipelineSpec
from .reporting import format_artifact, write_artifact_json
from .runner import (
    DatasetSpec,
    ExperimentContext,
    ExperimentSpec,
    SweepRunner,
    get_experiment,
    list_experiments,
)


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sequence execution (default: 1, serial)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="backend seed for every sweep (default: 1)"
    )
    parser.add_argument(
        "--json-dir",
        metavar="DIR",
        default=None,
        help="also write one <experiment>.json per artifact into DIR",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit markdown tables instead of aligned ASCII",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="near-minimal 2-sequence datasets (CI smoke profile) instead of the full benchmark sizes",
    )
    # The base pipeline configuration (block size, search range/policy, ...)
    # is one shared PipelineSpec; experiments override only the dimensions
    # they sweep (which is why there is no --window flag here).
    PipelineSpec.add_cli_options(parser, include_window=False)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the Euphrates paper's figures and tables.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list every registered experiment")

    run_parser = subparsers.add_parser("run", help="run one or more experiments by name")
    run_parser.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    _add_run_options(run_parser)

    run_all_parser = subparsers.add_parser("run-all", help="run every registered experiment")
    _add_run_options(run_all_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve the pipeline over TCP (asyncio ingestion front end)",
        description="Host the length-prefixed frame protocol of "
        "repro.core.server on a TCP port: clients HELLO with a declared "
        "fps/window demand (admitted against the CapacityModel M/D/1 "
        "budget), stream uint8 frames, and BYE for their results.  "
        "Ctrl-C drains gracefully and prints the shared-SoC energy "
        "aggregate.",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=7625, help="TCP port (0 picks a free one)"
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker shards serving the streams (default: 1, in-process)",
    )
    serve_parser.add_argument(
        "--queue-capacity",
        type=int,
        default=32,
        help="per-stream bounded ready-queue depth (default: 32)",
    )
    serve_parser.add_argument(
        "--overload-policy",
        choices=["drop-oldest", "degrade"],
        default="degrade",
        help="what a full ready queue does (default: degrade)",
    )
    serve_parser.add_argument(
        "--reorder-window",
        type=int,
        default=8,
        help="out-of-order arrivals buffered before a gap is sealed (default: 8)",
    )
    serve_parser.add_argument(
        "--no-admission",
        action="store_true",
        help="accept every HELLO instead of enforcing the capacity budget",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=1, help="backend seed (default: 1)"
    )
    PipelineSpec.add_cli_options(serve_parser)

    return parser


def cmd_serve(args: argparse.Namespace) -> int:
    """Host the TCP serving front end until interrupted, then drain."""
    from ..core.backends import tracking_backend_for
    from ..core.ingest import IngestConfig, IngestCore
    from ..core.server import ServerThread
    from ..core.streaming import StreamMultiplexer
    from ..nn.models import build_mdnet
    from ..soc.frame_cost import CapacityModel

    spec = PipelineSpec.from_cli_args(args)
    soc = spec.vision_soc()
    network = build_mdnet()
    multiplexer = StreamMultiplexer(
        spec.build(tracking_backend_for("mdnet", seed=args.seed)),
        soc=soc,
        network=network,
        extrapolation_on_cpu=spec.extrapolation_on_cpu,
        workers=args.workers,
        transport=spec.transport,
        isolate_failures=True,
    )
    ingest = IngestCore(
        multiplexer,
        capacity=CapacityModel(
            soc, network, extrapolation_on_cpu=spec.extrapolation_on_cpu
        ),
        config=IngestConfig(
            queue_capacity=args.queue_capacity,
            overload_policy=args.overload_policy,
            reorder_window=args.reorder_window,
            admission=not args.no_admission,
        ),
    )
    server = ServerThread(ingest, host=args.host, port=args.port).start()
    print(
        f"serving {spec.describe()} on {args.host}:{server.port} "
        f"({args.workers} worker(s), {args.overload_policy} overload policy, "
        f"admission {'off' if args.no_admission else 'on'}); Ctrl-C to drain"
    )
    try:
        import time as _time

        while True:
            _time.sleep(1.0)
    except KeyboardInterrupt:
        print("draining...", file=sys.stderr)
    report = server.shutdown()
    if report is not None:
        print(
            f"served {report.frames_processed} frames "
            f"({report.inference_frames} I / {report.extrapolation_frames} E) "
            f"across {len(report.streams)} stream(s); "
            f"modeled energy {report.aggregate_energy_j:.3f} J "
            f"({report.aggregate_energy_per_frame_j * 1e3:.2f} mJ/frame, "
            "exact shared-SoC aggregate)"
        )
    return 0


def _make_context(args: argparse.Namespace) -> ExperimentContext:
    workers = args.workers if args.workers and args.workers > 1 else None
    datasets = DatasetSpec.smoke() if args.smoke else DatasetSpec()
    return ExperimentContext(
        runner=SweepRunner(max_workers=workers),
        datasets=datasets,
        seed=args.seed,
        base_spec=PipelineSpec.from_cli_args(args),
    )


def _run(specs: Sequence[ExperimentSpec], args: argparse.Namespace) -> int:
    context = _make_context(args)
    for index, spec in enumerate(specs):
        artifact = context.artifact(spec.name)
        if index:
            print()
        if args.markdown:
            print(f"### {artifact.title}\n")
            print(format_artifact(artifact, markdown=True))
        else:
            print(f"== {artifact.name}: {artifact.title} ==\n")
            print(format_artifact(artifact))
        if args.json_dir:
            path = write_artifact_json(artifact, args.json_dir)
            print(f"[wrote {path}]", file=sys.stderr)
    runner = context.runner
    print(
        f"[{len(specs)} experiment(s); sweep cache: {runner.cache_misses} pipeline run(s), "
        f"{runner.cache_hits} reused; workers: {args.workers}]",
        file=sys.stderr,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for spec in list_experiments():
            print(f"{spec.name:8s} {spec.title}")
        return 0
    if args.command == "run":
        # Resolve names before running anything so a KeyError from inside an
        # experiment builder is never mistaken for a bad experiment name.
        try:
            specs = [get_experiment(name) for name in args.experiments]
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        return _run(specs, args)
    if args.command == "run-all":
        return _run(list_experiments(), args)
    if args.command == "serve":
        return cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
