"""``python -m repro.harness`` — regenerate the paper's figures and tables.

Examples::

    # Everything, serial, ASCII tables:
    PYTHONPATH=src python -m repro.harness run-all

    # One figure as markdown (what EXPERIMENTS.md records), JSON on the side:
    PYTHONPATH=src python -m repro.harness run fig10a --markdown --json-dir out/

    # Analytic vs measured energy (the latter priced from per-frame
    # telemetry recorded by actual pipeline runs), on a 720p30 SoC:
    PYTHONPATH=src python -m repro.harness run fig9b fig9b_measured --soc-config 720p30

    # Process-parallel sweep on a multi-core box:
    PYTHONPATH=src python -m repro.harness run-all --workers 8

    # CI smoke profile (1 sequence per dataset):
    PYTHONPATH=src python -m repro.harness run-all --smoke --workers 2

All results are deterministic for a given (seed, dataset profile):
``--workers 1`` takes exactly the sequential code path, and constant-window
results are identical at any worker count (adaptive-window runs chain
controller state across sequences only in the serial path; see
``EuphratesPipeline.run_dataset``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..core.spec import PipelineSpec
from .reporting import format_artifact, write_artifact_json
from .runner import (
    DatasetSpec,
    ExperimentContext,
    ExperimentSpec,
    SweepRunner,
    get_experiment,
    list_experiments,
)


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sequence execution (default: 1, serial)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="backend seed for every sweep (default: 1)"
    )
    parser.add_argument(
        "--json-dir",
        metavar="DIR",
        default=None,
        help="also write one <experiment>.json per artifact into DIR",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit markdown tables instead of aligned ASCII",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="near-minimal 2-sequence datasets (CI smoke profile) instead of the full benchmark sizes",
    )
    # The base pipeline configuration (block size, search range/policy, ...)
    # is one shared PipelineSpec; experiments override only the dimensions
    # they sweep (which is why there is no --window flag here).
    PipelineSpec.add_cli_options(parser, include_window=False)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the Euphrates paper's figures and tables.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list every registered experiment")
    list_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable listing: experiments, searchable spec "
        "dimensions, tune spaces/presets, tuned spec presets",
    )

    run_parser = subparsers.add_parser("run", help="run one or more experiments by name")
    run_parser.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    _add_run_options(run_parser)

    run_all_parser = subparsers.add_parser("run-all", help="run every registered experiment")
    _add_run_options(run_all_parser)

    tune_parser = subparsers.add_parser(
        "tune",
        help="design-space autotune: Pareto frontier search over the cost core",
        description="Explore PipelineSpec x SoC-config design points with the "
        "shared sweep runner, score each on (tracking accuracy, modeled "
        "energy/frame, throughput) through the unified CostMeter pricing "
        "core, and print the measured Pareto frontier.  Every evaluated "
        "point is journaled to the --store JSONL as soon as it finishes; "
        "killing a sweep and re-running with --resume evaluates only the "
        "missing points (zero repeated evaluations).  Spec flags below set "
        "the baseline configuration the frontier is anchored to.",
    )
    tune_parser.add_argument(
        "--space",
        default="ci",
        metavar="NAME|FILE",
        help="search space: a built-in name (ci, full) or a JSON "
        "{dimension: [values]} file (default: ci)",
    )
    tune_parser.add_argument(
        "--preset",
        choices=["ci", "full"],
        default="ci",
        help="dataset fidelity every point is measured at (default: ci)",
    )
    tune_parser.add_argument(
        "--strategy",
        choices=["auto", "grid", "random", "halving"],
        default="auto",
        help="search strategy (default: auto = grid when the space fits "
        "the budget, random otherwise)",
    )
    tune_parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="cap on fresh evaluations this invocation (store hits are free)",
    )
    tune_parser.add_argument(
        "--resume",
        action="store_true",
        help="continue the sweep journaled in --store instead of refusing "
        "to overwrite it",
    )
    tune_parser.add_argument(
        "--store",
        default="out/tune/store.jsonl",
        metavar="PATH",
        help="JSONL journal of evaluated points (default: out/tune/store.jsonl)",
    )
    tune_parser.add_argument(
        "--frontier-out",
        default=None,
        metavar="PATH",
        help="also write the frontier artifact as JSON to PATH",
    )
    tune_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sequence execution (default: 1, serial)",
    )
    tune_parser.add_argument(
        "--seed", type=int, default=1, help="backend seed for every point (default: 1)"
    )
    tune_parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit markdown tables instead of aligned ASCII",
    )
    PipelineSpec.add_cli_options(tune_parser, include_window=False)

    profile_parser = subparsers.add_parser(
        "profile",
        help="per-stage wall-clock breakdown of the frame path",
        description="Submit synthetic camera frames through a real "
        "EuphratesSession and print where each frame's wall-clock time "
        "goes (ISP stages, motion search, denoise blend, extrapolation, "
        "backend inference), split by resolution, I/E schedule and frame "
        "kind.  Timings come from the FrameTelemetry stage clocks the "
        "session stamps on every frame; they are observe-only and never "
        "feed the energy model.",
    )
    profile_parser.add_argument(
        "--resolution",
        action="append",
        choices=["720p", "1080p"],
        default=None,
        metavar="RES",
        help="resolution(s) to profile (repeatable; default: both)",
    )
    profile_parser.add_argument(
        "--frames",
        type=int,
        default=18,
        metavar="N",
        help="frames per (resolution, schedule) session (default: 18)",
    )
    profile_parser.add_argument(
        "--seed", type=int, default=0, help="sequence/backend seed (default: 0)"
    )
    PipelineSpec.add_cli_options(profile_parser, include_window=False)

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve the pipeline over TCP (asyncio ingestion front end)",
        description="Host the length-prefixed frame protocol of "
        "repro.core.server on a TCP port: clients HELLO with a declared "
        "fps/window demand (admitted against the CapacityModel M/D/1 "
        "budget), stream uint8 frames, and BYE for their results.  "
        "Ctrl-C drains gracefully and prints the shared-SoC energy "
        "aggregate.",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=7625, help="TCP port (0 picks a free one)"
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker shards serving the streams (default: 1, in-process)",
    )
    serve_parser.add_argument(
        "--queue-capacity",
        type=int,
        default=32,
        help="per-stream bounded ready-queue depth (default: 32)",
    )
    serve_parser.add_argument(
        "--overload-policy",
        choices=["drop-oldest", "degrade"],
        default="degrade",
        help="what a full ready queue does (default: degrade)",
    )
    serve_parser.add_argument(
        "--reorder-window",
        type=int,
        default=8,
        help="out-of-order arrivals buffered before a gap is sealed (default: 8)",
    )
    serve_parser.add_argument(
        "--no-admission",
        action="store_true",
        help="accept every HELLO instead of enforcing the capacity budget",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=1, help="backend seed (default: 1)"
    )
    PipelineSpec.add_cli_options(serve_parser)

    return parser


def cmd_profile(args: argparse.Namespace) -> int:
    """Print the per-stage wall-clock breakdown of the frame path."""
    from .perf import RESOLUTIONS
    from .pipeline_perf import format_profile_table, profile_report

    if args.resolution:
        resolutions = {name: RESOLUTIONS[name] for name in dict.fromkeys(args.resolution)}
    else:
        resolutions = None
    spec = PipelineSpec.from_cli_args(args)
    print(f"profiling {spec.describe()} ({args.frames} frames per schedule)\n")
    report = profile_report(
        spec, resolutions=resolutions, num_frames=args.frames, seed=args.seed
    )
    print(format_profile_table(report))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Host the TCP serving front end until interrupted, then drain."""
    from ..core.backends import tracking_backend_for
    from ..core.ingest import IngestConfig, IngestCore
    from ..core.server import ServerThread
    from ..core.streaming import StreamMultiplexer
    from ..nn.models import build_mdnet
    from ..soc.frame_cost import CapacityModel

    spec = PipelineSpec.from_cli_args(args)
    soc = spec.vision_soc()
    network = build_mdnet()
    multiplexer = StreamMultiplexer(
        spec.build(tracking_backend_for("mdnet", seed=args.seed)),
        soc=soc,
        network=network,
        extrapolation_on_cpu=spec.extrapolation_on_cpu,
        workers=args.workers,
        transport=spec.transport,
        isolate_failures=True,
    )
    ingest = IngestCore(
        multiplexer,
        capacity=CapacityModel(
            soc, network, extrapolation_on_cpu=spec.extrapolation_on_cpu
        ),
        config=IngestConfig(
            queue_capacity=args.queue_capacity,
            overload_policy=args.overload_policy,
            reorder_window=args.reorder_window,
            admission=not args.no_admission,
        ),
    )
    server = ServerThread(ingest, host=args.host, port=args.port).start()
    print(
        f"serving {spec.describe()} on {args.host}:{server.port} "
        f"({args.workers} worker(s), {args.overload_policy} overload policy, "
        f"admission {'off' if args.no_admission else 'on'}); Ctrl-C to drain"
    )
    try:
        import time as _time

        while True:
            _time.sleep(1.0)
    except KeyboardInterrupt:
        print("draining...", file=sys.stderr)
    report = server.shutdown()
    if report is not None:
        print(
            f"served {report.frames_processed} frames "
            f"({report.inference_frames} I / {report.extrapolation_frames} E) "
            f"across {len(report.streams)} stream(s); "
            f"modeled energy {report.aggregate_energy_j:.3f} J "
            f"({report.aggregate_energy_per_frame_j * 1e3:.2f} mJ/frame, "
            "exact shared-SoC aggregate)"
        )
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    """Run (or resume) a design-space autotune and print the frontier."""
    import json
    from pathlib import Path

    from .reporting import artifact_to_dict
    from .tune import TuneError, run_tune

    workers = args.workers if args.workers and args.workers > 1 else None

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    try:
        report = run_tune(
            args.space,
            preset=args.preset,
            strategy=args.strategy,
            budget=args.budget,
            seed=args.seed,
            store_path=args.store,
            resume=args.resume,
            max_workers=workers,
            base_spec=PipelineSpec.from_cli_args(args),
            log=log,
        )
    except TuneError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Finished points are already journaled in --store; only the point
        # in flight is lost.  The exit code mirrors a SIGINT-terminated
        # process so scripted sweeps can distinguish "interrupted" from
        # "failed".
        print(
            f"\ninterrupted; evaluated points are journaled in {args.store} — "
            "re-run with --resume to continue without repeating them",
            file=sys.stderr,
        )
        return 130
    artifact = report.artifact
    if args.markdown:
        print(f"### {artifact.title}\n")
        print(format_artifact(artifact, markdown=True))
    else:
        print(f"== {artifact.name}: {artifact.title} ==\n")
        print(format_artifact(artifact))
    best = artifact.metadata.get("best_at_baseline_accuracy")
    if best:
        saving = best.get("energy_saving_vs_baseline_pct")
        saving_note = f" ({saving:+.1f}% energy vs baseline)" if saving is not None else ""
        print(
            f"\nbest at >= baseline accuracy: {best['describe']} — "
            f"{best['energy_per_frame_mj']} mJ/frame at accuracy "
            f"{best['accuracy']}{saving_note}"
        )
    if args.frontier_out:
        path = Path(args.frontier_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                artifact_to_dict(artifact), indent=2, sort_keys=True, allow_nan=False
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"[wrote {path}]", file=sys.stderr)
    print(
        f"[{report.evaluated} evaluated, {report.reused} reused from store; "
        f"frontier: {len(report.frontier)} non-dominated point(s)]",
        file=sys.stderr,
    )
    return 0


def cmd_list_json() -> int:
    """Machine-readable ``list --json``: experiments + tuner surface."""
    import json

    from ..soc.config import TUNED_SPEC_PRESETS
    from .tune import STRATEGIES, TUNE_PRESETS, TUNE_SPACES, searchable_dimensions

    listing = {
        "experiments": [
            {
                "name": spec.name,
                "title": spec.title,
                "kind": spec.kind,
                "description": spec.description,
            }
            for spec in list_experiments()
        ],
        "spec_dimensions": searchable_dimensions(),
        "spec_presets": {
            name: dict(kwargs) for name, kwargs in sorted(TUNED_SPEC_PRESETS.items())
        },
        "tune": {
            "spaces": TUNE_SPACES,
            "presets": {name: fidelity.to_dict() for name, fidelity in TUNE_PRESETS.items()},
            "strategies": list(STRATEGIES),
        },
    }
    print(json.dumps(listing, indent=2, sort_keys=True))
    return 0


def _make_context(args: argparse.Namespace) -> ExperimentContext:
    workers = args.workers if args.workers and args.workers > 1 else None
    datasets = DatasetSpec.smoke() if args.smoke else DatasetSpec()
    return ExperimentContext(
        runner=SweepRunner(max_workers=workers),
        datasets=datasets,
        seed=args.seed,
        base_spec=PipelineSpec.from_cli_args(args),
    )


def _run(specs: Sequence[ExperimentSpec], args: argparse.Namespace) -> int:
    context = _make_context(args)
    for index, spec in enumerate(specs):
        artifact = context.artifact(spec.name)
        if index:
            print()
        if args.markdown:
            print(f"### {artifact.title}\n")
            print(format_artifact(artifact, markdown=True))
        else:
            print(f"== {artifact.name}: {artifact.title} ==\n")
            print(format_artifact(artifact))
        if args.json_dir:
            path = write_artifact_json(artifact, args.json_dir)
            print(f"[wrote {path}]", file=sys.stderr)
    runner = context.runner
    print(
        f"[{len(specs)} experiment(s); sweep cache: {runner.cache_misses} pipeline run(s), "
        f"{runner.cache_hits} reused; workers: {args.workers}]",
        file=sys.stderr,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        if args.json:
            return cmd_list_json()
        for spec in list_experiments():
            print(f"{spec.name:8s} {spec.title}")
        return 0
    if args.command == "run":
        # Resolve names before running anything so a KeyError from inside an
        # experiment builder is never mistaken for a bad experiment name.
        try:
            specs = [get_experiment(name) for name in args.experiments]
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        return _run(specs, args)
    if args.command == "run-all":
        return _run(list_experiments(), args)
    if args.command == "tune":
        return cmd_tune(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "serve":
        return cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
