"""Design-space autotuner: Pareto frontier search over the unified cost core.

Euphrates' central claim is a *co-design* result — the right point in the
SoC-config x extrapolation-window x algorithm space, not any single
component.  This module closes that loop: a search driver that explores
:class:`~repro.core.spec.PipelineSpec` points (window policy, search
strategy/policy, block size, fixed-point format, kernel backend, SoC capture
preset, extrapolation host), scores each point with the **same** machinery
every figure uses — the :class:`~repro.harness.runner.SweepRunner` for the
vision run, :func:`~repro.harness.experiments.fold_energy_breakdown` /
``open_meter`` for energy — and emits the measured accuracy-vs-energy-vs-
throughput Pareto frontier (Fig. 1, but measured).

Design points:

* **Resumable, disk-persisted sweeps.**  Every evaluated point is appended
  to a JSONL :class:`TuneStore` keyed by
  ``spec.cache_key()`` + task/backend/seed + dataset fidelity, flushed per
  result.  Killing the process mid-sweep loses at most the point in
  flight; re-running with ``resume=True`` replays the store and evaluates
  only what is missing (zero repeated evaluations — tested).
* **Pluggable strategies.**  ``grid`` exhausts small spaces; ``random``
  draws a seeded sample for large ones; ``halving`` runs successive
  halving with dataset-size fidelity rungs (cheap short sequences first,
  survivors re-measured at full fidelity).  ``auto`` picks grid when the
  space fits the budget, random otherwise.
* **One pricing core.**  A point's vision outputs are independent of its
  ``soc_config``/``extrapolation_host``, so the pipeline runs once under a
  normalized spec (shared through the runner cache across all SoC variants)
  and each variant is priced separately through ``open_meter`` — exactly
  the analytic-vs-measured contract of :mod:`repro.soc.frame_cost`.

Surface: ``python -m repro.harness tune`` (see :mod:`repro.harness.cli`),
or :func:`run_tune` directly.  Best-found configurations ship as named
presets in :data:`repro.soc.config.TUNED_SPEC_PRESETS` /
``PipelineSpec.from_preset``.
"""

from __future__ import annotations

import itertools
import json
import math
import random
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.spec import EXTRAPOLATION_HOSTS, PipelineSpec, normalize_window
from ..eval.tracking import success_rate
from ..motion.block_matching import SearchPolicy
from ..motion.kernels import KERNEL_BACKENDS, numba_available
from ..nn.models import build_mdnet
from ..video.datasets import build_tracking_dataset
from .experiments import fold_energy_breakdown
from .runner import ExperimentArtifact, SweepRunner

#: Accuracy is scored at the IoU threshold the paper quotes.
ACCURACY_IOU_THRESHOLD = 0.5

#: Spec fields the tuner may sweep.  Execution knobs (``workers``,
#: ``transport``) are excluded by construction: they never change outputs
#: *or* modeled cost, so searching them would only produce duplicate points.
SEARCHABLE_FIELDS: Tuple[str, ...] = (
    "extrapolation_window",
    "block_size",
    "search_range",
    "exhaustive_search",
    "search_policy",
    "kernel_backend",
    "frame_format",
    "sub_roi_grid",
    "expose_motion_vectors",
    "soc_config",
    "extrapolation_host",
)

#: Strategies :func:`run_tune` accepts.
STRATEGIES = ("auto", "grid", "random", "halving")


class TuneError(RuntimeError):
    """A tuner misconfiguration (bad space, stale store, unknown preset)."""


# ----------------------------------------------------------------------
# Search spaces
# ----------------------------------------------------------------------
#: Built-in search spaces: dimension name -> candidate values.  The listed
#: values are machine-independent; the one machine-specific candidate,
#: ``kernel_backend="numba"``, is filtered out by :func:`load_space` on
#: boxes without the ``[accel]`` extra (where it would only duplicate the
#: numpy point via the graceful-degradation fallback), so accel machines
#: search the compiled configs and resumed sweeps on the same box re-derive
#: the identical candidate list.
TUNE_SPACES: Dict[str, Dict[str, List[object]]] = {
    # Small co-design space for CI and quick local runs: window policy x
    # capture preset (the two axes with the steepest energy gradients) x
    # kernel backend where a compiled one exists.
    "ci": {
        "extrapolation_window": [1, 2, 4, 8, "adaptive"],
        "soc_config": ["default", "720p30"],
        "kernel_backend": ["numpy", "numba"],
    },
    # The full co-design space of the paper's sensitivity studies.
    "full": {
        "extrapolation_window": [1, 2, 4, 8, 16, 32, "adaptive"],
        "block_size": [8, 16, 32],
        "exhaustive_search": [False, True],
        "search_policy": ["pruned", "histogram"],
        "frame_format": ["q8.4", "q8.8", "float"],
        "kernel_backend": ["numpy"],
        "soc_config": ["default", "1080p30", "720p60", "720p30"],
        "extrapolation_host": ["mc", "cpu"],
    },
}


def load_space(space: Union[str, Dict[str, List[object]]]) -> Tuple[str, Dict[str, List[object]]]:
    """Resolve a space argument: a built-in name, a JSON file path, or a dict.

    Returns ``(label, dimensions)``.  Every dimension must be a searchable
    spec field with a non-empty value list.
    """
    if isinstance(space, dict):
        label, dimensions = "custom", space
    elif space in TUNE_SPACES:
        label, dimensions = space, TUNE_SPACES[space]
    else:
        path = Path(space)
        if not path.exists():
            names = ", ".join(sorted(TUNE_SPACES))
            raise TuneError(
                f"unknown search space '{space}' (expected one of: {names}, "
                "or a path to a JSON space file)"
            )
        try:
            dimensions = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise TuneError(f"malformed space file '{space}': {error}") from None
        label = path.stem
    if not isinstance(dimensions, dict) or not dimensions:
        raise TuneError("a search space must be a non-empty {dimension: values} mapping")
    validated: Dict[str, List[object]] = {}
    for name, values in dimensions.items():
        if name not in SEARCHABLE_FIELDS:
            raise TuneError(
                f"'{name}' is not a searchable spec dimension "
                f"(expected one of: {', '.join(SEARCHABLE_FIELDS)})"
            )
        if not isinstance(values, (list, tuple)) or not values:
            raise TuneError(f"dimension '{name}' needs a non-empty list of values")
        if name == "sub_roi_grid":
            values = [tuple(int(v) for v in value) for value in values]
        if name == "kernel_backend" and not numba_available():
            # Without the [accel] extra a "numba" point degrades to numpy at
            # build time and would only duplicate the numpy point's work;
            # drop it so the candidate list matches what the box can run.
            values = [v for v in values if v != "numba"] or ["numpy"]
        validated[name] = list(values)
    return label, validated


def _redundant_combo(combo: Dict[str, object]) -> bool:
    """Skip combinations that cannot produce a new point.

    * a non-default ES candidate-scan policy under TSS (the policy only
      applies to exhaustive search; every policy is result-identical, so
      these combos would duplicate the TSS point at extra cost);
    * a CPU extrapolation host at EW-1 (no E-frames exist to price there).
    """
    if not combo.get("exhaustive_search", False):
        if combo.get("search_policy", "pruned") != "pruned":
            return True
    if combo.get("extrapolation_host", "mc") == "cpu":
        if normalize_window(combo.get("extrapolation_window", 2)) == 1:
            return True
    return False


def enumerate_candidates(
    dimensions: Dict[str, List[object]], base_spec: Optional[PipelineSpec] = None
) -> List[PipelineSpec]:
    """The deduplicated candidate specs of a search space, in a stable order.

    The cartesian product is taken in sorted-dimension order (so the
    sequence is independent of dict insertion order), redundant combos are
    filtered, and the base spec (the seed configuration every frontier is
    anchored to) is always candidate zero.
    """
    base = base_spec if base_spec is not None else PipelineSpec()
    names = sorted(dimensions)
    candidates: List[PipelineSpec] = [base]
    seen = {base.cache_key()}
    for values in itertools.product(*(dimensions[name] for name in names)):
        combo = dict(zip(names, values))
        if _redundant_combo(combo):
            continue
        spec = replace(base, **combo)
        key = spec.cache_key()
        if key in seen:
            continue
        seen.add(key)
        candidates.append(spec)
    return candidates


def searchable_dimensions() -> Dict[str, Dict[str, object]]:
    """Machine-readable description of every searchable spec dimension.

    Exposed through ``python -m repro.harness list --json`` so external
    scripts (and the tuner's own space validation) can enumerate the
    search space without importing repo internals.
    """
    from ..soc.config import SOC_CAPTURE_PRESETS

    defaults = PipelineSpec()
    choices: Dict[str, Optional[List[object]]] = {
        "extrapolation_window": None,  # any int >= 1, or "adaptive"
        "block_size": None,
        "search_range": None,
        "exhaustive_search": [False, True],
        "search_policy": [policy.value for policy in SearchPolicy],
        "kernel_backend": list(KERNEL_BACKENDS),
        "frame_format": None,  # any qM.F spelling, or "float"
        "sub_roi_grid": None,
        "expose_motion_vectors": [False, True],
        "soc_config": sorted(SOC_CAPTURE_PRESETS),  # or WxH@FPS
        "extrapolation_host": list(EXTRAPOLATION_HOSTS),
    }
    listing: Dict[str, Dict[str, object]] = {}
    for spec_field in fields(PipelineSpec):
        if spec_field.name not in SEARCHABLE_FIELDS:
            continue
        default = getattr(defaults, spec_field.name)
        if isinstance(default, tuple):
            default = list(default)
        listing[spec_field.name] = {
            "default": default,
            "choices": choices[spec_field.name],
        }
    return listing


# ----------------------------------------------------------------------
# Fidelity (dataset size) presets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TuneFidelity:
    """Dataset size one evaluation runs at (part of every store key)."""

    sequences: int = 8
    frames: int = 36
    dataset_seed: int = 100

    def to_dict(self) -> Dict[str, int]:
        return {
            "sequences": self.sequences,
            "frames": self.frames,
            "dataset_seed": self.dataset_seed,
        }

    def with_frames(self, frames: int) -> "TuneFidelity":
        return replace(self, frames=frames)


#: Dataset-size presets (mirroring the harness ``--smoke``/full profiles).
TUNE_PRESETS: Dict[str, TuneFidelity] = {
    "ci": TuneFidelity(sequences=2, frames=12, dataset_seed=100),
    "full": TuneFidelity(sequences=8, frames=36, dataset_seed=100),
}


# ----------------------------------------------------------------------
# Results and the disk store
# ----------------------------------------------------------------------
@dataclass
class TuneResult:
    """One evaluated design point: configuration + measured objectives."""

    key: str
    spec_args: List[str]
    describe: str
    fidelity: Dict[str, int]
    accuracy: float
    energy_per_frame_mj: float
    fps: float
    latency_ms: float
    inference_rate: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "spec": list(self.spec_args),
            "describe": self.describe,
            "fidelity": dict(self.fidelity),
            "metrics": {
                "accuracy": self.accuracy,
                "energy_per_frame_mj": self.energy_per_frame_mj,
                "fps": self.fps,
                "latency_ms": self.latency_ms,
                "inference_rate": self.inference_rate,
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TuneResult":
        metrics = payload["metrics"]
        return cls(
            key=payload["key"],
            spec_args=list(payload["spec"]),
            describe=payload["describe"],
            fidelity=dict(payload["fidelity"]),
            accuracy=float(metrics["accuracy"]),
            energy_per_frame_mj=float(metrics["energy_per_frame_mj"]),
            fps=float(metrics["fps"]),
            latency_ms=float(metrics["latency_ms"]),
            inference_rate=float(metrics["inference_rate"]),
        )


def point_key(
    spec: PipelineSpec,
    fidelity: TuneFidelity,
    seed: int,
    task: str = "tracking",
    backend: str = "mdnet",
) -> str:
    """The stable store key of one (configuration, dataset, seed) point.

    Built from ``spec.cache_key()`` — the same canonical identity the
    in-memory sweep cache uses — plus everything else that determines the
    measurement, so a store entry is valid across processes and machines.
    """
    cache_key = [list(part) if isinstance(part, tuple) else part for part in spec.cache_key()]
    payload = [task, backend, int(seed), fidelity.to_dict(), cache_key]
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TuneStore:
    """Append-only JSONL store of evaluated design points.

    Each line is one :class:`TuneResult`; results are flushed as soon as
    they are measured, so an interrupted sweep loses at most the point in
    flight.  ``load()`` replays the file (later lines win, so a re-measured
    point supersedes its predecessor), after which membership checks make
    resume skip every already-evaluated point.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._results: Dict[str, TuneResult] = {}

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def get(self, key: str) -> Optional[TuneResult]:
        return self._results.get(key)

    def results(self) -> List[TuneResult]:
        return list(self._results.values())

    def load(self) -> int:
        """Replay the on-disk journal; returns the number of lines read."""
        if not self.path.exists():
            return 0
        lines = 0
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                result = TuneResult.from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError) as error:
                raise TuneError(
                    f"corrupt tune store line in {self.path}: {error}"
                ) from None
            self._results[result.key] = result
            lines += 1
        return lines

    def add(self, result: TuneResult) -> None:
        """Record a fresh evaluation (journaled to disk immediately)."""
        self._results[result.key] = result
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as journal:
            journal.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
            journal.flush()


# ----------------------------------------------------------------------
# Evaluation: one design point -> (accuracy, energy, throughput)
# ----------------------------------------------------------------------
class TuneEvaluator:
    """Scores design points on the shared runner + cost-meter core.

    The vision run is executed under a *pricing-normalized* spec
    (``soc_config``/``extrapolation_host`` reset to defaults) because those
    knobs never change pipeline outputs — so every SoC variant of the same
    algorithm shares one pipeline execution through the runner cache — and
    the point's actual SoC model then prices the recorded telemetry.
    """

    def __init__(self, runner: Optional[SweepRunner] = None, seed: int = 1) -> None:
        self.runner = runner or SweepRunner()
        self.seed = seed
        self._network = build_mdnet()
        self._datasets: Dict[TuneFidelity, object] = {}

    def dataset(self, fidelity: TuneFidelity):
        if fidelity not in self._datasets:
            self._datasets[fidelity] = build_tracking_dataset(
                otb_sequences=fidelity.sequences,
                vot_sequences=0,
                frames_per_sequence=fidelity.frames,
                seed=fidelity.dataset_seed,
            )
        return self._datasets[fidelity]

    def evaluate(self, spec: PipelineSpec, fidelity: TuneFidelity) -> TuneResult:
        dataset = self.dataset(fidelity)
        run_spec = replace(spec, soc_config="default", extrapolation_host="mc")
        run = self.runner.run(
            "tracking", "mdnet", dataset, spec=run_spec, seed=self.seed
        )
        accuracy = success_rate(run.sequences, dataset, ACCURACY_IOU_THRESHOLD)
        breakdown = fold_energy_breakdown(
            spec.vision_soc(),
            self._network,
            run.sequences,
            extrapolation_on_cpu=spec.extrapolation_on_cpu,
            label=spec.describe(),
        )
        fps = breakdown.fps
        return TuneResult(
            key=point_key(spec, fidelity, self.seed),
            spec_args=spec.to_cli_args(),
            describe=spec.describe(),
            fidelity=fidelity.to_dict(),
            accuracy=accuracy,
            energy_per_frame_mj=breakdown.energy_per_frame_j * 1e3,
            fps=fps,
            latency_ms=(1000.0 / fps) if fps > 0 else math.inf,
            inference_rate=breakdown.inference_rate,
        )


# ----------------------------------------------------------------------
# Pareto machinery (maximize accuracy & fps, minimize energy)
# ----------------------------------------------------------------------
def _objectives(result: TuneResult) -> Tuple[float, float, float]:
    """Objective vector, uniformly *maximized* (energy enters negated)."""
    return (result.accuracy, -result.energy_per_frame_mj, result.fps)


def dominates(a: TuneResult, b: TuneResult) -> bool:
    """True when ``a`` is at least as good as ``b`` everywhere, better once."""
    obj_a, obj_b = _objectives(a), _objectives(b)
    return all(x >= y for x, y in zip(obj_a, obj_b)) and any(
        x > y for x, y in zip(obj_a, obj_b)
    )


def pareto_frontier(results: Sequence[TuneResult]) -> List[TuneResult]:
    """The non-dominated subset, sorted by descending accuracy.

    Duplicate objective vectors keep their first representative, so a
    frontier never lists the same trade-off twice.
    """
    frontier: List[TuneResult] = []
    seen_objectives = set()
    for candidate in results:
        objectives = _objectives(candidate)
        if objectives in seen_objectives:
            continue
        if any(dominates(other, candidate) for other in results):
            continue
        seen_objectives.add(objectives)
        frontier.append(candidate)
    frontier.sort(key=lambda r: (-r.accuracy, r.energy_per_frame_mj))
    return frontier


def nondominated_rank(results: Sequence[TuneResult]) -> Dict[str, int]:
    """NSGA-style fronts: rank 0 = the frontier, rank 1 = next peel, ..."""
    remaining = list(results)
    ranks: Dict[str, int] = {}
    rank = 0
    while remaining:
        front = pareto_frontier(remaining)
        front_keys = {r.key for r in front}
        for result in front:
            ranks[result.key] = rank
        remaining = [r for r in remaining if r.key not in front_keys]
        rank += 1
    return ranks


# ----------------------------------------------------------------------
# The search driver
# ----------------------------------------------------------------------
@dataclass
class TuneReport:
    """Everything one tuning invocation produced."""

    artifact: ExperimentArtifact
    frontier: List[TuneResult] = field(default_factory=list)
    evaluated: int = 0
    reused: int = 0
    skipped_budget: int = 0


def _halving_rungs(fidelity: TuneFidelity, min_frames: int = 6) -> List[TuneFidelity]:
    """Fidelity ladder for successive halving: quarter -> half -> full frames."""
    rungs: List[TuneFidelity] = []
    for divisor in (4, 2, 1):
        frames = max(min_frames, fidelity.frames // divisor)
        rung = fidelity.with_frames(frames)
        if not rungs or rungs[-1] != rung:
            rungs.append(rung)
    return rungs


class _BudgetExhausted(Exception):
    """Internal control flow: the evaluation budget ran out."""


def run_tune(
    space: Union[str, Dict[str, List[object]]] = "ci",
    *,
    preset: str = "ci",
    strategy: str = "auto",
    budget: Optional[int] = None,
    seed: int = 1,
    store_path: Union[str, Path] = "out/tune/store.jsonl",
    resume: bool = False,
    max_workers: Optional[int] = None,
    base_spec: Optional[PipelineSpec] = None,
    log: Optional[Callable[[str], None]] = None,
) -> TuneReport:
    """Explore a design space and return the measured Pareto frontier.

    ``budget`` caps *fresh* evaluations for this invocation; store hits are
    free, so a resumed sweep spends its budget only on missing points.  The
    frontier is computed over every store result at the target fidelity
    (accumulated across invocations of the same store), and the whole
    procedure is deterministic for a given (space, preset, strategy,
    budget, seed) — which is what makes ``resume`` re-derive the identical
    candidate schedule and skip all of it.

    Interrupting the process mid-sweep is safe: finished points are already
    journaled; the in-flight one is re-measured on resume.
    """
    emit = log or (lambda message: None)
    if strategy not in STRATEGIES:
        raise TuneError(f"unknown strategy '{strategy}' (expected one of {STRATEGIES})")
    if preset not in TUNE_PRESETS:
        raise TuneError(
            f"unknown tune preset '{preset}' (expected one of {sorted(TUNE_PRESETS)})"
        )
    space_label, dimensions = load_space(space)
    fidelity = TUNE_PRESETS[preset]
    candidates = enumerate_candidates(dimensions, base_spec)

    store = TuneStore(store_path)
    if store.path.exists() and store.path.stat().st_size > 0:
        if not resume:
            raise TuneError(
                f"tune store {store.path} already has results; pass resume=True "
                "(--resume) to continue it, or point --store somewhere fresh"
            )
        loaded = store.load()
        emit(f"resumed {loaded} stored result(s) from {store.path}")

    evaluator = TuneEvaluator(SweepRunner(max_workers=max_workers), seed=seed)
    counters = {"evaluated": 0, "reused": 0}

    def measure(spec: PipelineSpec, rung: TuneFidelity) -> TuneResult:
        key = point_key(spec, rung, seed)
        cached = store.get(key)
        if cached is not None:
            counters["reused"] += 1
            return cached
        if budget is not None and counters["evaluated"] >= budget:
            raise _BudgetExhausted()
        result = evaluator.evaluate(spec, rung)
        store.add(result)
        counters["evaluated"] += 1
        emit(
            f"[{counters['evaluated']}{'/' + str(budget) if budget else ''}] "
            f"{result.describe}: accuracy {result.accuracy:.3f}, "
            f"{result.energy_per_frame_mj:.2f} mJ/frame, {result.fps:.1f} fps"
        )
        return result

    # Resolve the strategy and the evaluation schedule.
    if strategy == "auto":
        strategy = "grid" if budget is None or len(candidates) <= budget else "random"
    rng = random.Random(seed)
    skipped_budget = 0
    try:
        if strategy in ("grid", "random"):
            schedule = list(candidates)
            if strategy == "random":
                tail = schedule[1:]
                rng.shuffle(tail)
                schedule = schedule[:1] + tail
            for spec in schedule:
                measure(spec, fidelity)
        else:  # halving
            rungs = _halving_rungs(fidelity)
            survivors = list(candidates)
            if budget is not None and len(survivors) > budget:
                tail = survivors[1:]
                rng.shuffle(tail)
                survivors = survivors[:1] + tail[: budget - 1]
            for index, rung in enumerate(rungs):
                emit(
                    f"halving rung {index + 1}/{len(rungs)}: "
                    f"{len(survivors)} candidate(s) at {rung.frames} frames"
                )
                rung_results = [(spec, measure(spec, rung)) for spec in survivors]
                if index == len(rungs) - 1:
                    break
                ranks = nondominated_rank([result for _, result in rung_results])
                rung_results.sort(
                    key=lambda pair: (ranks[pair[1].key], pair[1].energy_per_frame_mj)
                )
                keep = max(1, math.ceil(len(rung_results) / 2))
                survivors = [spec for spec, _ in rung_results[:keep]]
    except _BudgetExhausted:
        skipped_budget = 1  # at least one point was left unevaluated
        emit(f"budget of {budget} evaluation(s) exhausted; frontier uses the store")

    # The frontier is computed over every full-fidelity point the store
    # knows (this run + anything a previous run of the same store added).
    fidelity_dict = fidelity.to_dict()
    scored = [r for r in store.results() if r.fidelity == fidelity_dict]
    frontier = pareto_frontier(scored)

    baseline_key = point_key(base_spec or PipelineSpec(), fidelity, seed)
    baseline = store.get(baseline_key)
    best = best_at_baseline_accuracy(scored, baseline)

    artifact = ExperimentArtifact(
        name="tune",
        title="Design-space autotune: measured Pareto frontier "
        "(accuracy vs energy/frame vs throughput)",
        kind="figure",
    )
    artifact.add_table(
        [
            "config",
            "accuracy@0.5",
            "energy_mJ/frame",
            "fps",
            "latency_ms",
            "inference_rate",
            "spec flags",
        ],
        [
            [
                result.describe,
                round(result.accuracy, 4),
                round(result.energy_per_frame_mj, 3),
                round(result.fps, 1),
                round(result.latency_ms, 3),
                round(result.inference_rate, 4),
                " ".join(result.spec_args) or "(defaults)",
            ]
            for result in frontier
        ],
        title="Pareto frontier (non-dominated design points)",
    )
    artifact.metadata.update(
        {
            "space": space_label,
            "preset": preset,
            "strategy": strategy,
            "budget": budget,
            "seed": seed,
            "fidelity": fidelity_dict,
            "candidates": len(candidates),
            "evaluated": counters["evaluated"],
            "reused": counters["reused"],
            "budget_exhausted": bool(skipped_budget),
            "scored_points": len(scored),
            "frontier_size": len(frontier),
            "store": str(store.path),
        }
    )
    if baseline is not None:
        artifact.metadata["baseline"] = {
            "describe": baseline.describe,
            "accuracy": round(baseline.accuracy, 4),
            "energy_per_frame_mj": round(baseline.energy_per_frame_mj, 3),
            "fps": round(baseline.fps, 1),
        }
    if best is not None:
        artifact.metadata["best_at_baseline_accuracy"] = {
            "describe": best.describe,
            "spec_args": list(best.spec_args),
            "accuracy": round(best.accuracy, 4),
            "energy_per_frame_mj": round(best.energy_per_frame_mj, 3),
            "fps": round(best.fps, 1),
            "energy_saving_vs_baseline_pct": (
                round(
                    100.0
                    * (1.0 - best.energy_per_frame_mj / baseline.energy_per_frame_mj),
                    2,
                )
                if baseline is not None and baseline.energy_per_frame_mj > 0
                else None
            ),
        }
    return TuneReport(
        artifact=artifact,
        frontier=frontier,
        evaluated=counters["evaluated"],
        reused=counters["reused"],
        skipped_budget=skipped_budget,
    )


def best_at_baseline_accuracy(
    results: Sequence[TuneResult], baseline: Optional[TuneResult]
) -> Optional[TuneResult]:
    """Lowest-energy point whose accuracy is >= the baseline's (ties: fps).

    This is the headline co-design answer — "the cheapest configuration
    that gives up nothing" — and the selection rule behind the shipped
    ``tuned-*`` spec presets.  Falls back to the overall lowest-energy
    point when no baseline measurement exists.
    """
    if not results:
        return None
    if baseline is not None:
        eligible = [r for r in results if r.accuracy >= baseline.accuracy - 1e-9]
        if eligible:
            return min(eligible, key=lambda r: (r.energy_per_frame_mj, -r.fps))
    return min(results, key=lambda r: (r.energy_per_frame_mj, -r.fps))
