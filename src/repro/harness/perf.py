"""Motion-estimation performance microbenchmarks.

Measures frames/sec of the vectorized block matcher on synthetic 720p/1080p
sequences and compares it against the scalar reference oracle
(:mod:`repro.motion.reference`), so every PR can check the perf trajectory.
The results are dumped to ``BENCH_motion.json`` by
``benchmarks/run_motion_bench.py`` and asserted by
``benchmarks/test_perf_motion.py``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..motion.block_matching import BlockMatcher, BlockMatchingConfig, SearchStrategy
from ..motion.reference import scalar_estimate

#: Benchmark resolutions: label -> (height, width).
RESOLUTIONS: Dict[str, Tuple[int, int]] = {
    "720p": (720, 1280),
    "1080p": (1080, 1920),
}


def synthetic_luma_sequence(
    height: int, width: int, num_frames: int, seed: int = 0
) -> np.ndarray:
    """A textured uint8 luma sequence with global translational motion.

    The content is smooth-but-textured (block matching can lock on) and each
    frame shifts by a couple of pixels, which mirrors the camera/object
    motion the paper's workloads exhibit.
    """
    rng = np.random.default_rng(seed)
    coarse = rng.uniform(0, 255, (height // 8 + 4, width // 8 + 4))
    canvas = np.kron(coarse, np.ones((8, 8)))
    frames = np.empty((num_frames, height, width), dtype=np.uint8)
    for index in range(num_frames):
        dy = (index * 2) % 16
        dx = (index * 3) % 16
        frames[index] = canvas[dy : dy + height, dx : dx + width].astype(np.uint8)
    return frames


def _time_per_frame(estimate, frames: np.ndarray) -> float:
    start = time.perf_counter()
    for index in range(1, frames.shape[0]):
        estimate(frames[index], frames[index - 1])
    elapsed = time.perf_counter() - start
    return elapsed / (frames.shape[0] - 1)


def benchmark_motion_estimation(
    resolutions: Optional[Dict[str, Tuple[int, int]]] = None,
    num_frames: int = 4,
    block_size: int = 16,
    search_range: int = 7,
    include_scalar: bool = True,
    seed: int = 0,
) -> Dict[str, object]:
    """Benchmark vectorized TSS (and the scalar oracle) per resolution.

    Returns a JSON-ready dict with per-resolution frames/sec, per-frame
    latency, the analytical ops/frame counts, and the vectorized-vs-scalar
    speedup.  ``include_scalar=False`` skips the slow oracle timing (useful
    for quick smoke runs).
    """
    if num_frames < 2:
        raise ValueError("num_frames must be >= 2 (timing needs at least one frame pair)")
    resolutions = resolutions or RESOLUTIONS
    config = BlockMatchingConfig(
        block_size=block_size, search_range=search_range, strategy=SearchStrategy.THREE_STEP
    )
    matcher = BlockMatcher(config)
    results: List[Dict[str, object]] = []

    for label, (height, width) in resolutions.items():
        frames = synthetic_luma_sequence(height, width, num_frames, seed=seed)
        matcher.estimate(frames[1], frames[0])  # warm-up

        vector_s = _time_per_frame(matcher.estimate, frames)
        entry: Dict[str, object] = {
            "resolution": label,
            "height": height,
            "width": width,
            "frames_timed": num_frames - 1,
            "vectorized_s_per_frame": vector_s,
            "vectorized_fps": 1.0 / vector_s,
            "ops_per_frame": config.ops_per_frame(width, height),
            "ops_per_macroblock": config.ops_per_macroblock,
        }
        if include_scalar:
            scalar_s = _time_per_frame(
                lambda cur, prev: scalar_estimate(
                    cur, prev, block_size=block_size, search_range=search_range
                ),
                frames,
            )
            entry["scalar_s_per_frame"] = scalar_s
            entry["scalar_fps"] = 1.0 / scalar_s
            entry["speedup"] = scalar_s / vector_s
        results.append(entry)

    return {
        "benchmark": "motion_estimation_tss",
        "block_size": block_size,
        "search_range": search_range,
        "results": results,
    }
