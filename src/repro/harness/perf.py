"""Motion-estimation performance microbenchmarks.

Measures frames/sec of the vectorized block matcher on synthetic 720p/1080p
sequences and compares it against the scalar reference oracle
(:mod:`repro.motion.reference`), so every PR can check the perf trajectory.
Besides the three-step search (the production default) the benchmark times
the exhaustive search under each candidate-scan policy
(full/spiral/pruned/histogram — all result-identical) and the fixed-point
float-frame path, the two hot-path gaps this repo's trajectory tracks.
The SAD kernel backend (numpy or the compiled numba backend) is a
parameter, so the same harness measures both sides of the backend speedup.

The results are appended to the ``BENCH_motion.json`` trajectory by
``benchmarks/run_motion_bench.py`` (which also enforces the stored perf
floors for CI) and asserted by ``benchmarks/test_perf_motion.py``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..motion.block_matching import (
    BlockMatcher,
    BlockMatchingConfig,
    SearchPolicy,
    SearchStrategy,
)
from ..motion.kernels import resolve_kernel_backend
from ..motion.reference import scalar_estimate

#: Benchmark resolutions: label -> (height, width).
RESOLUTIONS: Dict[str, Tuple[int, int]] = {
    "720p": (720, 1280),
    "1080p": (1080, 1920),
}


def synthetic_luma_sequence(
    height: int, width: int, num_frames: int, seed: int = 0
) -> np.ndarray:
    """A textured uint8 luma sequence with global translational motion.

    The content is smooth-but-textured (block matching can lock on) and each
    frame shifts by a couple of pixels, which mirrors the camera/object
    motion the paper's workloads exhibit.
    """
    rng = np.random.default_rng(seed)
    coarse = rng.uniform(0, 255, (height // 8 + 4, width // 8 + 4))
    canvas = np.kron(coarse, np.ones((8, 8)))
    frames = np.empty((num_frames, height, width), dtype=np.uint8)
    for index in range(num_frames):
        dy = (index * 2) % 16
        dx = (index * 3) % 16
        frames[index] = canvas[dy : dy + height, dx : dx + width].astype(np.uint8)
    return frames


def _time_per_frame(estimate, frames) -> float:
    start = time.perf_counter()
    for index in range(1, len(frames)):
        estimate(frames[index], frames[index - 1])
    elapsed = time.perf_counter() - start
    return elapsed / (len(frames) - 1)


def benchmark_motion_estimation(
    resolutions: Optional[Dict[str, Tuple[int, int]]] = None,
    num_frames: int = 4,
    block_size: int = 16,
    search_range: int = 7,
    include_scalar: bool = True,
    include_exhaustive: bool = True,
    include_fixed_point: bool = True,
    kernel_backend: str = "numpy",
    seed: int = 0,
) -> Dict[str, object]:
    """Benchmark the vectorized searches (and the scalar oracle) per resolution.

    Returns a JSON-ready dict with, per resolution:

    * vectorized TSS frames/sec and latency (the legacy ``vectorized_*``
      keys), the analytical op counts, and — with ``include_scalar`` — the
      scalar-oracle timing and the vectorized-vs-scalar ``speedup``;
    * with ``include_exhaustive``, exhaustive-search timing per candidate
      scan policy (``es_full_*``/``es_spiral_*``/``es_pruned_*``/
      ``es_histogram_*``), the
      pruned policy's evaluated-candidate fraction, and the headline
      ``es_pruned_speedup_vs_full`` and ``es_pruned_vs_tss`` ratios;
    * with ``include_fixed_point``, TSS timing on Q8.4 fixed-point float
      frames (``fixed_point_*``) and its ratio to the uint8 fast path —
      tracking that float-valued frames no longer fall off onto the float64
      gather kernel.

    ``include_scalar=False`` skips the slow oracle timing (useful for quick
    smoke runs).  ``kernel_backend`` selects the SAD kernel implementation
    (``numpy``/``numba``); the top-level result records both the requested
    backend and the backend that actually ran (``numba`` silently degrades
    to ``numpy`` when Numba is absent, and the trajectory must say so).
    """
    if num_frames < 2:
        raise ValueError("num_frames must be >= 2 (timing needs at least one frame pair)")
    resolutions = resolutions or RESOLUTIONS
    active_backend = resolve_kernel_backend(kernel_backend)
    config = BlockMatchingConfig(
        block_size=block_size,
        search_range=search_range,
        strategy=SearchStrategy.THREE_STEP,
        kernel_backend=kernel_backend,
    )
    matcher = BlockMatcher(config)
    results: List[Dict[str, object]] = []

    for label, (height, width) in resolutions.items():
        frames = synthetic_luma_sequence(height, width, num_frames, seed=seed)
        matcher.estimate(frames[1], frames[0])  # warm-up

        vector_s = _time_per_frame(matcher.estimate, frames)
        entry: Dict[str, object] = {
            "resolution": label,
            "height": height,
            "width": width,
            "frames_timed": num_frames - 1,
            "vectorized_s_per_frame": vector_s,
            "vectorized_fps": 1.0 / vector_s,
            "ops_per_frame": config.ops_per_frame(width, height),
            "ops_per_macroblock": config.ops_per_macroblock,
        }
        if include_scalar:
            scalar_s = _time_per_frame(
                lambda cur, prev: scalar_estimate(
                    cur, prev, block_size=block_size, search_range=search_range
                ),
                frames,
            )
            entry["scalar_s_per_frame"] = scalar_s
            entry["scalar_fps"] = 1.0 / scalar_s
            entry["speedup"] = scalar_s / vector_s

        if include_exhaustive:
            es_seconds: Dict[str, float] = {}
            for policy in SearchPolicy:
                es_matcher = BlockMatcher(
                    BlockMatchingConfig(
                        block_size=block_size,
                        search_range=search_range,
                        strategy=SearchStrategy.EXHAUSTIVE,
                        search_policy=policy,
                        kernel_backend=kernel_backend,
                    )
                )
                es_matcher.estimate(frames[1], frames[0])  # warm-up
                es_s = _time_per_frame(es_matcher.estimate, frames)
                es_seconds[policy.value] = es_s
                entry[f"es_{policy.value}_s_per_frame"] = es_s
                entry[f"es_{policy.value}_fps"] = 1.0 / es_s
                if policy is SearchPolicy.PRUNED:
                    entry["es_pruned_evaluated_fraction"] = (
                        es_matcher.last_search_stats.evaluated_fraction
                    )
            entry["es_pruned_speedup_vs_full"] = (
                es_seconds["full"] / es_seconds["pruned"]
            )
            entry["es_spiral_speedup_vs_full"] = (
                es_seconds["full"] / es_seconds["spiral"]
            )
            entry["es_histogram_speedup_vs_full"] = (
                es_seconds["full"] / es_seconds["histogram"]
            )
            # > 1 means pruned ES is still slower than TSS; the trajectory
            # tracks this gap closing.
            entry["es_pruned_vs_tss"] = es_seconds["pruned"] / vector_s

        if include_fixed_point:
            # Q8.4 lattice floats: integer-valued after scaling by 16, so
            # the kernel must ride the exact integer path, not the float64
            # gather.  The +1/16 keeps the full 0..255 value range with a
            # non-zero fractional part, so the scaled integers span 0..4081
            # and the kernel lands in the int32 working dtype — the same
            # regime the quantized ISP's real Q8.4 frames execute (a /16
            # shrink would scale back into uint8 and measure a faster path
            # the pipeline never takes).  The uniform offset on both frames
            # leaves every SAD, and hence the search work, unchanged.
            lattice_frames = [frame.astype(np.float64) + 1.0 / 16.0 for frame in frames]
            matcher.estimate(lattice_frames[1], lattice_frames[0])  # warm-up
            fixed_s = _time_per_frame(matcher.estimate, lattice_frames)
            entry["fixed_point_s_per_frame"] = fixed_s
            entry["fixed_point_fps"] = 1.0 / fixed_s
            entry["fixed_point_vs_uint8"] = fixed_s / vector_s
            entry["fixed_point_kernel_exact"] = bool(matcher.last_kernel_exact)
        results.append(entry)

    return {
        "benchmark": "motion_estimation",
        "block_size": block_size,
        "search_range": search_range,
        "kernel_backend": kernel_backend,
        "kernel_backend_active": active_backend,
        "results": results,
    }
