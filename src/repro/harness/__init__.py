"""Experiment harness: one entry point per table/figure in the paper.

Every function returns a plain-data result object with a ``rows()`` method so
the benchmarks can both assert on the numbers and print the same table/series
the paper reports.  The experiment functions accept dataset-size parameters;
the defaults are sized to finish quickly, and EXPERIMENTS.md records the
settings used for the committed results.

The experiments are also exposed through a registry (:mod:`.runner`) and a
CLI — ``python -m repro.harness run-all --workers N --json-dir out/``
regenerates every artifact; see EXPERIMENTS.md for the recorded results.
"""

from .reporting import (
    artifact_from_dict,
    artifact_to_dict,
    format_markdown_table,
    format_table,
    write_artifact_json,
)
from .runner import (
    DatasetSpec,
    ExperimentArtifact,
    ExperimentContext,
    ExperimentSpec,
    ResultTable,
    SweepRunner,
    get_experiment,
    list_experiments,
)
from .perf import benchmark_motion_estimation, synthetic_luma_sequence
from .experiments import (
    EnergyExperimentResult,
    PrecisionCurveResult,
    figure1_accuracy_vs_tops,
    figure9a_detection_precision,
    figure9b_detection_energy,
    figure9b_detection_energy_measured,
    figure9c_compute_memory,
    figure10a_tracking_success,
    figure10b_tracking_energy,
    figure10b_tracking_energy_measured,
    fold_energy_breakdown,
    figure10c_per_sequence_success,
    figure11a_macroblock_sensitivity,
    figure11b_es_vs_tss,
    figure12_attribute_sensitivity,
    search_policy_comparison,
    table1_soc_configuration,
    table2_workloads,
)

__all__ = [
    "format_table",
    "format_markdown_table",
    "artifact_to_dict",
    "artifact_from_dict",
    "write_artifact_json",
    "DatasetSpec",
    "ExperimentArtifact",
    "ExperimentContext",
    "ExperimentSpec",
    "ResultTable",
    "SweepRunner",
    "get_experiment",
    "list_experiments",
    "benchmark_motion_estimation",
    "synthetic_luma_sequence",
    "EnergyExperimentResult",
    "PrecisionCurveResult",
    "figure1_accuracy_vs_tops",
    "table1_soc_configuration",
    "table2_workloads",
    "figure9a_detection_precision",
    "figure9b_detection_energy",
    "figure9b_detection_energy_measured",
    "figure9c_compute_memory",
    "figure10a_tracking_success",
    "figure10b_tracking_energy",
    "figure10b_tracking_energy_measured",
    "fold_energy_breakdown",
    "figure10c_per_sequence_success",
    "figure11a_macroblock_sensitivity",
    "figure11b_es_vs_tss",
    "search_policy_comparison",
    "figure12_attribute_sensitivity",
]
