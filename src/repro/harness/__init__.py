"""Experiment harness: one entry point per table/figure in the paper.

Every function returns a plain-data result object with a ``rows()`` method so
the benchmarks can both assert on the numbers and print the same table/series
the paper reports.  The experiment functions accept dataset-size parameters;
the defaults are sized to finish quickly, and EXPERIMENTS.md records the
settings used for the committed results.
"""

from .reporting import format_table
from .perf import benchmark_motion_estimation, synthetic_luma_sequence
from .experiments import (
    EnergyExperimentResult,
    PrecisionCurveResult,
    figure1_accuracy_vs_tops,
    figure9a_detection_precision,
    figure9b_detection_energy,
    figure9c_compute_memory,
    figure10a_tracking_success,
    figure10b_tracking_energy,
    figure10c_per_sequence_success,
    figure11a_macroblock_sensitivity,
    figure11b_es_vs_tss,
    figure12_attribute_sensitivity,
    table1_soc_configuration,
    table2_workloads,
)

__all__ = [
    "format_table",
    "benchmark_motion_estimation",
    "synthetic_luma_sequence",
    "EnergyExperimentResult",
    "PrecisionCurveResult",
    "figure1_accuracy_vs_tops",
    "table1_soc_configuration",
    "table2_workloads",
    "figure9a_detection_precision",
    "figure9b_detection_energy",
    "figure9c_compute_memory",
    "figure10a_tracking_success",
    "figure10b_tracking_energy",
    "figure10c_per_sequence_success",
    "figure11a_macroblock_sensitivity",
    "figure11b_es_vs_tss",
    "figure12_attribute_sensitivity",
]
