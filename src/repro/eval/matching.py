"""Greedy IoU matching between predicted and ground-truth boxes."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.geometry import BoundingBox


def greedy_match(
    predictions: Sequence[BoundingBox],
    truths: Sequence[BoundingBox],
) -> List[Tuple[int, int, float]]:
    """Greedily match predictions to ground-truth boxes by descending IoU.

    Returns a list of ``(prediction_index, truth_index, iou)`` triples.  Each
    prediction and each truth participates in at most one match; pairs with
    zero IoU are never matched.  This is the standard assignment used when
    computing detection true/false positives.
    """
    candidates: List[Tuple[float, int, int]] = []
    for p_index, prediction in enumerate(predictions):
        for t_index, truth in enumerate(truths):
            iou = prediction.iou(truth)
            if iou > 0.0:
                candidates.append((iou, p_index, t_index))
    candidates.sort(key=lambda item: item[0], reverse=True)

    matched_predictions: set = set()
    matched_truths: set = set()
    matches: List[Tuple[int, int, float]] = []
    for iou, p_index, t_index in candidates:
        if p_index in matched_predictions or t_index in matched_truths:
            continue
        matched_predictions.add(p_index)
        matched_truths.add(t_index)
        matches.append((p_index, t_index, iou))
    return matches


def match_ious(
    predictions: Sequence[BoundingBox],
    truths: Sequence[BoundingBox],
) -> Dict[int, float]:
    """IoU of each matched prediction, keyed by prediction index."""
    return {p: iou for p, _t, iou in greedy_match(predictions, truths)}
