"""Visual-tracking accuracy metrics (success rate / success curves)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.types import SequenceResult
from ..video.datasets import Dataset
from ..video.sequence import VideoSequence


@dataclass(frozen=True)
class TrackingEvaluation:
    """Aggregate tracking statistics at one IoU threshold."""

    successful_frames: int
    evaluated_frames: int

    @property
    def success_rate(self) -> float:
        """Fraction of evaluated frames whose IoU exceeds the threshold."""
        if self.evaluated_frames == 0:
            return 0.0
        return self.successful_frames / self.evaluated_frames


def _sequence_lookup(dataset: Dataset) -> Dict[str, VideoSequence]:
    return {sequence.name: sequence for sequence in dataset.sequences}


def _frame_ious(result: SequenceResult, sequence: VideoSequence) -> List[Optional[float]]:
    """Per-frame IoU of the tracked box against ground truth.

    Frames where the target is absent from the ground truth are skipped
    (``None``), matching standard tracking-benchmark protocol.
    """
    target_id = sequence.primary_object_id
    truth_boxes = sequence.truth_for(target_id)
    ious: List[Optional[float]] = []
    for frame in result.frames:
        truth = truth_boxes[frame.frame_index]
        if truth is None:
            ious.append(None)
            continue
        best = frame.best_for(truth)
        ious.append(0.0 if best is None else best.box.iou(truth))
    return ious


def evaluate_tracking(
    results: Sequence[SequenceResult],
    dataset: Dataset,
    iou_threshold: float = 0.5,
) -> TrackingEvaluation:
    """Score tracking results against a dataset at one IoU threshold."""
    lookup = _sequence_lookup(dataset)
    successful = 0
    evaluated = 0
    for result in results:
        sequence = lookup[result.sequence_name]
        for iou in _frame_ious(result, sequence):
            if iou is None:
                continue
            evaluated += 1
            if iou >= iou_threshold:
                successful += 1
    return TrackingEvaluation(successful_frames=successful, evaluated_frames=evaluated)


def success_rate(
    results: Sequence[SequenceResult],
    dataset: Dataset,
    iou_threshold: float = 0.5,
) -> float:
    """Success rate at one IoU threshold (the paper quotes IoU 0.5)."""
    return evaluate_tracking(results, dataset, iou_threshold).success_rate


def success_curve(
    results: Sequence[SequenceResult],
    dataset: Dataset,
    thresholds: Sequence[float] | None = None,
) -> Dict[float, float]:
    """Success rate as a function of IoU threshold (x-axis of Fig. 10a)."""
    if thresholds is None:
        thresholds = [round(t, 2) for t in np.arange(0.0, 1.01, 0.1)]
    lookup = _sequence_lookup(dataset)
    all_ious: List[float] = []
    for result in results:
        sequence = lookup[result.sequence_name]
        all_ious.extend(iou for iou in _frame_ious(result, sequence) if iou is not None)
    ious = np.asarray(all_ious, dtype=np.float64)
    curve: Dict[float, float] = {}
    for threshold in thresholds:
        if ious.size == 0:
            curve[float(threshold)] = 0.0
        else:
            curve[float(threshold)] = float((ious >= threshold).mean())
    return curve


def per_sequence_success(
    results: Sequence[SequenceResult],
    dataset: Dataset,
    iou_threshold: float = 0.5,
) -> Dict[str, float]:
    """Success rate of every sequence individually (Fig. 10c)."""
    lookup = _sequence_lookup(dataset)
    rates: Dict[str, float] = {}
    for result in results:
        sequence = lookup[result.sequence_name]
        ious = [iou for iou in _frame_ious(result, sequence) if iou is not None]
        if not ious:
            rates[result.sequence_name] = 0.0
            continue
        rates[result.sequence_name] = float(
            np.mean([1.0 if iou >= iou_threshold else 0.0 for iou in ious])
        )
    return rates
