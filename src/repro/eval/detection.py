"""Object-detection accuracy metrics.

The paper uses the average-precision definition of its Sec. 5.2: every
detection across every frame is a true positive if its IoU with a matched
ground-truth box exceeds the threshold, otherwise a false positive, and
``AP = TP / (TP + FP)``.  Missed ground-truth objects reduce recall but the
paper's headline metric is this precision-style AP, so we implement the same
definition (and additionally report recall for completeness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..core.types import SequenceResult
from ..video.datasets import Dataset
from ..video.sequence import VideoSequence
from .matching import greedy_match


@dataclass(frozen=True)
class DetectionEvaluation:
    """Aggregate detection counts at one IoU threshold."""

    true_positives: int
    false_positives: int
    total_ground_truth: int

    @property
    def average_precision(self) -> float:
        """The paper's AP = TP / (TP + FP)."""
        total = self.true_positives + self.false_positives
        if total == 0:
            return 0.0
        return self.true_positives / total

    @property
    def recall(self) -> float:
        if self.total_ground_truth == 0:
            return 0.0
        return self.true_positives / self.total_ground_truth


def _pair_results_with_truth(
    results: Sequence[SequenceResult], dataset: Dataset
) -> Iterable[Tuple[SequenceResult, VideoSequence]]:
    sequences_by_name = {sequence.name: sequence for sequence in dataset.sequences}
    for result in results:
        if result.sequence_name not in sequences_by_name:
            raise KeyError(f"no sequence named '{result.sequence_name}' in dataset")
        yield result, sequences_by_name[result.sequence_name]


def evaluate_detection(
    results: Sequence[SequenceResult],
    dataset: Dataset,
    iou_threshold: float = 0.5,
) -> DetectionEvaluation:
    """Score detection results against a dataset at one IoU threshold."""
    true_positives = 0
    false_positives = 0
    total_truth = 0
    for result, sequence in _pair_results_with_truth(results, dataset):
        for frame in result.frames:
            truth_boxes = list(sequence.truth_at(frame.frame_index).values())
            total_truth += len(truth_boxes)
            predictions = frame.boxes()
            matches = greedy_match(predictions, truth_boxes)
            matched_above = sum(1 for _p, _t, iou in matches if iou >= iou_threshold)
            true_positives += matched_above
            false_positives += len(predictions) - matched_above
    return DetectionEvaluation(
        true_positives=true_positives,
        false_positives=false_positives,
        total_ground_truth=total_truth,
    )


def average_precision(
    results: Sequence[SequenceResult],
    dataset: Dataset,
    iou_threshold: float = 0.5,
) -> float:
    """AP at a single IoU threshold (the paper quotes IoU 0.5)."""
    return evaluate_detection(results, dataset, iou_threshold).average_precision


def precision_curve(
    results: Sequence[SequenceResult],
    dataset: Dataset,
    thresholds: Sequence[float] | None = None,
) -> Dict[float, float]:
    """AP as a function of the IoU threshold (the x-axis of Fig. 9a)."""
    if thresholds is None:
        thresholds = [round(t, 2) for t in np.arange(0.0, 1.01, 0.1)]
    # Matching does not depend on the threshold, so collect matched IoUs once.
    matched_ious: List[float] = []
    total_predictions = 0
    for result, sequence in _pair_results_with_truth(results, dataset):
        for frame in result.frames:
            truth_boxes = list(sequence.truth_at(frame.frame_index).values())
            predictions = frame.boxes()
            total_predictions += len(predictions)
            matched_ious.extend(iou for _p, _t, iou in greedy_match(predictions, truth_boxes))

    ious = np.asarray(matched_ious, dtype=np.float64)
    curve: Dict[float, float] = {}
    for threshold in thresholds:
        if total_predictions == 0:
            curve[float(threshold)] = 0.0
            continue
        true_positives = int((ious >= threshold).sum()) if ious.size else 0
        curve[float(threshold)] = true_positives / total_predictions
    return curve
