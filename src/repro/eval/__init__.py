"""Accuracy metrics used by the paper's evaluation (Sec. 5.2).

Object detection is scored with average precision (AP) as a function of the
IoU threshold; visual tracking with the success rate (fraction of frames
whose IoU against ground truth exceeds a threshold).  Both metrics are also
available as full curves over the threshold axis, per sequence, and broken
down by visual attribute (Fig. 12).
"""

from .matching import greedy_match
from .detection import (
    DetectionEvaluation,
    average_precision,
    precision_curve,
    evaluate_detection,
)
from .tracking import (
    TrackingEvaluation,
    success_curve,
    success_rate,
    per_sequence_success,
    evaluate_tracking,
)
from .attributes import attribute_precision

__all__ = [
    "greedy_match",
    "DetectionEvaluation",
    "average_precision",
    "precision_curve",
    "evaluate_detection",
    "TrackingEvaluation",
    "success_rate",
    "success_curve",
    "per_sequence_success",
    "evaluate_tracking",
    "attribute_precision",
]
