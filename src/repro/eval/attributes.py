"""Per-visual-attribute accuracy breakdown (Fig. 12)."""

from __future__ import annotations

from typing import Dict, Sequence

from ..core.types import SequenceResult
from ..video.attributes import FIGURE12_ATTRIBUTE_ORDER, VisualAttribute
from ..video.datasets import Dataset
from .tracking import success_rate


def attribute_precision(
    results: Sequence[SequenceResult],
    dataset: Dataset,
    iou_threshold: float = 0.5,
) -> Dict[VisualAttribute, float]:
    """Tracking success rate restricted to sequences with each attribute.

    Attributes with no matching sequences in the dataset are omitted, so the
    caller can tell "not evaluated" apart from "zero accuracy".
    """
    results_by_name = {result.sequence_name: result for result in results}
    breakdown: Dict[VisualAttribute, float] = {}
    for attribute in FIGURE12_ATTRIBUTE_ORDER:
        sequences = dataset.sequences_with(attribute)
        if not sequences:
            continue
        subset_results = [
            results_by_name[sequence.name]
            for sequence in sequences
            if sequence.name in results_by_name
        ]
        if not subset_results:
            continue
        subset = Dataset(name=f"{dataset.name}:{attribute.value}", sequences=sequences)
        breakdown[attribute] = success_rate(subset_results, subset, iou_threshold)
    return breakdown
