"""Euphrates: algorithm-SoC co-design for low-power mobile continuous vision.

A full Python reproduction of the ISCA 2018 paper by Zhu, Samajdar, Mattina
and Whatmough.  The library is organised as:

* :mod:`repro.core` -- the Euphrates algorithm (motion extrapolation,
  extrapolation-window control, the end-to-end pipeline) and shared types.
* :mod:`repro.video` -- synthetic continuous-video substrate with ground truth.
* :mod:`repro.motion` -- block-matching motion estimation (ES / TSS).
* :mod:`repro.isp` -- camera sensor and ISP pipeline (the MV producer).
* :mod:`repro.nn` -- CNN workload models (YOLOv2, Tiny YOLO, MDNet) and
  detector/tracker backends.
* :mod:`repro.soc` -- the mobile-SoC performance/energy model (NNX systolic
  accelerator, motion-controller IP, DRAM, CPU).
* :mod:`repro.eval` -- detection AP and tracking success-rate metrics.
* :mod:`repro.harness` -- experiment runners for every table and figure.

Quick start::

    from repro import PipelineSpec, tracking_backend_for
    from repro.video import build_otb_like_dataset
    from repro.eval import success_rate

    dataset = build_otb_like_dataset(num_sequences=4)
    pipeline = PipelineSpec(extrapolation_window=2).build(tracking_backend_for("mdnet"))
    results = pipeline.run_dataset(dataset)
    print(success_rate(results, dataset, iou_threshold=0.5))

Streaming (frame at a time, many concurrent cameras)::

    session = pipeline.open_session(source=sequence)
    for _, frame in sequence.iter_frames():
        frame_result = session.submit(frame)
    sequence_result = session.finish()
"""

from .core import (
    AdaptiveWindowController,
    BoundingBox,
    ConstantWindowController,
    Detection,
    EuphratesConfig,
    EuphratesPipeline,
    EuphratesSession,
    ExtrapolationConfig,
    FrameKind,
    FrameResult,
    FrameTelemetry,
    MotionExtrapolator,
    MotionVector,
    MultiplexerReport,
    PipelineSpec,
    SequenceResult,
    ShardedExecutor,
    StreamMultiplexer,
    StreamStats,
    detection_backend_for,
    tracking_backend_for,
)
from .soc import CostMeter, FrameCost, FrameSchedule, SoCConfig, VisionSoC

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BoundingBox",
    "MotionVector",
    "Detection",
    "FrameKind",
    "FrameResult",
    "FrameTelemetry",
    "SequenceResult",
    "ExtrapolationConfig",
    "MotionExtrapolator",
    "ConstantWindowController",
    "AdaptiveWindowController",
    "EuphratesConfig",
    "EuphratesPipeline",
    "EuphratesSession",
    "PipelineSpec",
    "StreamMultiplexer",
    "StreamStats",
    "MultiplexerReport",
    "ShardedExecutor",
    "detection_backend_for",
    "tracking_backend_for",
    "VisionSoC",
    "SoCConfig",
    "FrameSchedule",
    "FrameCost",
    "CostMeter",
]
