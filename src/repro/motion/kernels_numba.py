"""Compiled (Numba) integer-domain SAD kernels behind :class:`SadKernel`.

This module is the optional ``numba`` kernel backend selected through
``PipelineSpec(kernel_backend="numba")``.  It compiles the SAD hot loops of
:mod:`repro.motion.kernels` — the uniform/per-block/subset SAD primitives,
the partial-sum lower bound, and the per-macroblock SAD map — plus one
**fused exhaustive-search driver** that runs a whole pruned/histogram/spiral
scan per macroblock in a single compiled call, eliminating the remaining
per-candidate Python dispatch of the NumPy driver.

Scope and bit-identity contract:

* Only the **exact-integer mode** is compiled (uint8/int32 frames, including
  the fixed-point-scaled Q8.4 path): every SAD there is an exact integer, so
  summation order cannot matter and the compiled sequential loops are
  bit-identical to the NumPy kernels and to the scalar oracle
  (:mod:`repro.motion.reference`) by exactness.  Genuinely fractional float
  frames stay on the NumPy gather kernel, whose pairwise reduction order the
  scalar oracle defines — a compiled sequential float sum would round
  differently, and bit-identity outranks speed in this repo.
* The fused driver may *abort* a block's SAD summation once the running
  partial sum exceeds the block's best SAD (the partial sum only grows, so
  the candidate can no longer win, not even on an order-rank tie).  This
  early termination changes how much arithmetic is spent, never which
  candidate wins, so the returned field is still bit-identical to the full
  scan.

When Numba is not installed the module still imports cleanly:
``NUMBA_AVAILABLE`` is ``False``, ``@njit`` degrades to a no-op decorator,
and every kernel remains callable as plain (slow) Python — which is exactly
how the backend-equivalence property tests exercise this code on machines
without the ``[accel]`` extra.  Backend *selection* never routes here in
that case: :func:`repro.motion.kernels.resolve_kernel_backend` degrades
``"numba"`` to ``"numpy"`` so production paths keep NumPy speed.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised via the subprocess fallback test
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the no-numba environment itself
    NUMBA_AVAILABLE = False

    def _njit(*args, **kwargs):
        """No-op stand-in: keeps the kernels importable and callable."""

        def decorate(func):
            return func

        return decorate


def _jit(func):
    """``@njit(cache=True)`` when Numba is present, identity otherwise.

    ``cache=True`` persists the compiled machine code next to this module so
    repeated processes (benchmarks, CI steps, worker shards) skip the
    multi-second JIT warm-up.
    """
    return _njit(cache=True)(func)


#: Fused-driver policy codes (kept in sync with
#: :class:`repro.motion.block_matching.SearchPolicy` by the dispatcher).
POLICY_FULL = 0
POLICY_SPIRAL = 1
POLICY_LOWER_BOUND = 2


@_jit
def sad_uniform(current_blocks, padded, d, dy, dx, out):
    """SAD of every macroblock at one global offset, into ``out`` (int64)."""
    rows, cols = current_blocks.shape[0], current_blocks.shape[1]
    block = current_blocks.shape[2]
    for r in range(rows):
        for c in range(cols):
            base_y = d + r * block + dy
            base_x = d + c * block + dx
            total = np.int64(0)
            for i in range(block):
                yy = base_y + i
                for j in range(block):
                    a = np.int64(current_blocks[r, c, i, j])
                    b = np.int64(padded[yy, base_x + j])
                    total += a - b if a >= b else b - a
            out[r, c] = total


@_jit
def sad_per_block(current_blocks, padded, d, dy, dx, out):
    """SAD of every macroblock at per-block offsets (the TSS primitive)."""
    rows, cols = current_blocks.shape[0], current_blocks.shape[1]
    block = current_blocks.shape[2]
    for r in range(rows):
        for c in range(cols):
            base_y = d + r * block + dy[r, c]
            base_x = d + c * block + dx[r, c]
            total = np.int64(0)
            for i in range(block):
                yy = base_y + i
                for j in range(block):
                    a = np.int64(current_blocks[r, c, i, j])
                    b = np.int64(padded[yy, base_x + j])
                    total += a - b if a >= b else b - a
            out[r, c] = total


@_jit
def sad_subset(current_blocks, padded, d, dy, dx, rows_idx, cols_idx, out):
    """SAD at one global offset for an index-listed subset of macroblocks."""
    block = current_blocks.shape[2]
    for k in range(rows_idx.shape[0]):
        r = rows_idx[k]
        c = cols_idx[k]
        base_y = d + r * block + dy
        base_x = d + c * block + dx
        total = np.int64(0)
        for i in range(block):
            yy = base_y + i
            for j in range(block):
                a = np.int64(current_blocks[r, c, i, j])
                b = np.int64(padded[yy, base_x + j])
                total += a - b if a >= b else b - a
        out[k] = total


@_jit
def lower_bound_uniform(block_sums, window_sums, d, block, dy, dx, out):
    """Partial-sum SAD lower bound for every macroblock at one offset."""
    rows, cols = block_sums.shape[0], block_sums.shape[1]
    for r in range(rows):
        for c in range(cols):
            ref = window_sums[d + r * block + dy, d + c * block + dx]
            diff = block_sums[r, c] - ref
            out[r, c] = diff if diff >= 0 else -diff


@_jit
def sad_map(current, reference, block_size, out):
    """Per-macroblock zero-displacement SAD between two aligned frames."""
    rows, cols = out.shape[0], out.shape[1]
    for r in range(rows):
        for c in range(cols):
            total = np.int64(0)
            for i in range(block_size):
                yy = r * block_size + i
                for j in range(block_size):
                    xx = c * block_size + j
                    a = np.int64(current[yy, xx])
                    b = np.int64(reference[yy, xx])
                    total += a - b if a >= b else b - a
            out[r, c] = total


@_jit
def fused_exhaustive(
    current_blocks,
    padded,
    block_sums,
    window_sums,
    dys,
    dxs,
    ranks,
    suffix_min_rank,
    d,
    policy,
    best_dy,
    best_dx,
    best_sad,
    eval_per_offset,
):
    """One-call exhaustive search over every macroblock and candidate.

    ``dys``/``dxs`` give the candidate offsets *in visit order* (spiral for
    full/spiral/pruned, SAD-histogram order for the histogram policy);
    ``ranks`` carries each candidate's spiral rank, which is the canonical
    tie-break: the winning candidate is the (SAD, spiral-rank) lexicographic
    minimum, exactly what the NumPy spiral scan with strict-improvement
    updates computes, so the result is visit-order independent.
    ``suffix_min_rank[k]`` is ``min(ranks[k:])`` and lets a perfect (SAD 0)
    block stop as soon as no remaining candidate could still win a rank tie.

    ``policy`` selects the pruning rules (:data:`POLICY_FULL` evaluates
    everything, :data:`POLICY_SPIRAL` adds the SAD-0 skip,
    :data:`POLICY_LOWER_BOUND` adds the partial-sum bound against
    ``window_sums``).  Outputs: per-block best offset and integer SAD, plus
    per-offset evaluation counts.  Returns ``(evaluated, lower_bound_checks)``.
    """
    rows, cols = current_blocks.shape[0], current_blocks.shape[1]
    block = current_blocks.shape[2]
    num_offsets = dys.shape[0]
    total_eval = np.int64(0)
    total_lb = np.int64(0)
    for r in range(rows):
        for c in range(cols):
            base_y = d + r * block
            base_x = d + c * block
            # Seed with the first visited offset (always spiral rank 0, the
            # (0, 0) candidate) so no infinity sentinel is needed.
            oy = base_y + dys[0]
            ox = base_x + dxs[0]
            best = np.int64(0)
            for i in range(block):
                yy = oy + i
                for j in range(block):
                    a = np.int64(current_blocks[r, c, i, j])
                    b = np.int64(padded[yy, ox + j])
                    best += a - b if a >= b else b - a
            best_rank = ranks[0]
            best_k = 0
            eval_per_offset[0] += 1
            total_eval += 1
            bsum = block_sums[r, c]

            for k in range(1, num_offsets):
                rank = ranks[k]
                if policy != POLICY_FULL and best == 0:
                    if best_rank < suffix_min_rank[k]:
                        # No remaining candidate can beat SAD 0 at an
                        # earlier spiral rank: this block is done.
                        break
                    if rank > best_rank:
                        continue
                if policy == POLICY_LOWER_BOUND:
                    ref = window_sums[base_y + dys[k], base_x + dxs[k]]
                    diff = bsum - ref
                    bound = diff if diff >= 0 else -diff
                    total_lb += 1
                    # The candidate can only win with SAD < best, or with
                    # SAD == best at an earlier spiral rank; SAD >= bound.
                    if bound > best or (bound == best and rank > best_rank):
                        continue
                oy = base_y + dys[k]
                ox = base_x + dxs[k]
                sad = np.int64(0)
                aborted = False
                for i in range(block):
                    yy = oy + i
                    for j in range(block):
                        a = np.int64(current_blocks[r, c, i, j])
                        b = np.int64(padded[yy, ox + j])
                        sad += a - b if a >= b else b - a
                    if sad > best:
                        # The partial sum only grows: this candidate can no
                        # longer strictly improve nor tie, whatever its rank.
                        aborted = True
                        break
                eval_per_offset[k] += 1
                total_eval += 1
                if aborted:
                    continue
                if sad < best or (sad == best and rank < best_rank):
                    best = sad
                    best_rank = rank
                    best_k = k
            best_dy[r, c] = dys[best_k]
            best_dx[r, c] = dxs[best_k]
            best_sad[r, c] = best
    return total_eval, total_lb


@_jit
def histogram_scores(block_sums, window_sums, d, block, dys, dxs, out):
    """Global partial-sum SAD score of every candidate offset.

    ``out[k] = sum_blocks |sum(block) - sum(reference patch at offset k)|``
    — a whole-frame lower bound on the total SAD at that offset, computed
    from the same summed-area tables as :func:`lower_bound_uniform`.
    Sorting candidates by this score (histogram policy) visits globally
    promising displacements first, which tightens every block's best SAD
    early and makes the per-block pruning rules bite sooner on panning
    scenes whose true motion sits far from the spiral's centre.
    """
    rows, cols = block_sums.shape[0], block_sums.shape[1]
    for k in range(dys.shape[0]):
        total = np.int64(0)
        for r in range(rows):
            base_y = d + r * block + dys[k]
            for c in range(cols):
                diff = block_sums[r, c] - window_sums[base_y, d + c * block + dxs[k]]
                total += diff if diff >= 0 else -diff
        out[k] = total
