"""Block-matching motion estimation substrate.

This package implements the motion-estimation machinery the paper assumes is
already present inside the ISP's temporal-denoising stage (Sec. 2.3):
macroblock-level block matching with SAD as the matching metric, exhaustive
search (ES) and three-step search (TSS) strategies, and the
:class:`~repro.motion.motion_field.MotionField` container that Euphrates
exposes to the vision backend through the frame-buffer metadata.
"""

from .block_matching import (
    BlockMatcher,
    BlockMatchingConfig,
    SearchPolicy,
    SearchStats,
    SearchStrategy,
    exhaustive_search_ops_per_macroblock,
    three_step_search_ops_per_macroblock,
)
from .kernels import (
    KERNEL_BACKENDS,
    SadKernel,
    fixed_point_scale,
    numba_available,
    resolve_kernel_backend,
)
from .motion_field import MacroblockGrid, MotionField
from .reference import scalar_estimate
from .sad import sum_of_absolute_differences

__all__ = [
    "BlockMatcher",
    "BlockMatchingConfig",
    "SadKernel",
    "SearchPolicy",
    "SearchStats",
    "SearchStrategy",
    "KERNEL_BACKENDS",
    "fixed_point_scale",
    "numba_available",
    "resolve_kernel_backend",
    "MacroblockGrid",
    "MotionField",
    "scalar_estimate",
    "sum_of_absolute_differences",
    "exhaustive_search_ops_per_macroblock",
    "three_step_search_ops_per_macroblock",
]
