"""Macroblock-granularity motion fields.

The ISP's temporal-denoising stage produces one motion vector and one SAD
value per macroblock.  Euphrates packs these into the frame-buffer metadata
(Sec. 4.2) and the motion controller consumes them for extrapolation
(Sec. 3.2).  :class:`MotionField` is the in-memory representation of that
metadata block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.geometry import BoundingBox, MotionVector


@dataclass(frozen=True)
class MacroblockGrid:
    """Geometry of the macroblock tiling of a frame."""

    frame_width: int
    frame_height: int
    block_size: int

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.frame_width <= 0 or self.frame_height <= 0:
            raise ValueError("frame dimensions must be positive")

    @property
    def cols(self) -> int:
        """Number of macroblock columns (partial blocks at the edge count)."""
        return math.ceil(self.frame_width / self.block_size)

    @property
    def rows(self) -> int:
        """Number of macroblock rows."""
        return math.ceil(self.frame_height / self.block_size)

    @property
    def num_blocks(self) -> int:
        return self.rows * self.cols

    def block_index_for_pixel(self, x: float, y: float) -> Tuple[int, int]:
        """Return the ``(row, col)`` of the macroblock containing a pixel.

        Out-of-frame coordinates are clamped to the nearest edge block so
        that extrapolated ROIs that drift slightly outside the frame still
        read valid motion data.
        """
        col = int(x // self.block_size)
        row = int(y // self.block_size)
        col = min(max(col, 0), self.cols - 1)
        row = min(max(row, 0), self.rows - 1)
        return row, col

    def block_box(self, row: int, col: int) -> BoundingBox:
        """Pixel-space bounding box of macroblock ``(row, col)``."""
        x = col * self.block_size
        y = row * self.block_size
        w = min(self.block_size, self.frame_width - x)
        h = min(self.block_size, self.frame_height - y)
        return BoundingBox(float(x), float(y), float(w), float(h))

    def blocks_overlapping(self, roi: BoundingBox) -> Tuple[slice, slice]:
        """Return (row_slice, col_slice) of macroblocks overlapping ``roi``."""
        clipped = roi.clip(self.frame_width, self.frame_height)
        if clipped.is_empty():
            # Fall back to the nearest block so callers always get data.
            row, col = self.block_index_for_pixel(roi.center.x, roi.center.y)
            return slice(row, row + 1), slice(col, col + 1)
        row0, col0 = self.block_index_for_pixel(clipped.left, clipped.top)
        # Subtract a tiny epsilon so an ROI edge exactly on a block boundary
        # does not pull in the next block.
        row1, col1 = self.block_index_for_pixel(
            max(clipped.right - 1e-6, clipped.left),
            max(clipped.bottom - 1e-6, clipped.top),
        )
        return slice(row0, row1 + 1), slice(col0, col1 + 1)


class MotionField:
    """Per-macroblock motion vectors and SAD values for one frame.

    Parameters
    ----------
    vectors:
        Array of shape ``(rows, cols, 2)`` holding the forward motion of each
        macroblock as ``(u, v)`` in pixels.
    sad:
        Array of shape ``(rows, cols)`` with the SAD of the best match found
        for each macroblock.
    grid:
        The macroblock tiling geometry.
    search_range:
        The ``d`` parameter of the block matcher that produced this field;
        used for motion-vector byte-encoding accounting.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        sad: np.ndarray,
        grid: MacroblockGrid,
        search_range: int = 7,
    ) -> None:
        vectors = np.asarray(vectors, dtype=np.float64)
        sad = np.asarray(sad, dtype=np.float64)
        if vectors.ndim != 3 or vectors.shape[2] != 2:
            raise ValueError(f"vectors must have shape (rows, cols, 2), got {vectors.shape}")
        if sad.shape != vectors.shape[:2]:
            raise ValueError(
                f"sad shape {sad.shape} does not match vectors grid {vectors.shape[:2]}"
            )
        if vectors.shape[0] != grid.rows or vectors.shape[1] != grid.cols:
            raise ValueError(
                f"vector grid {vectors.shape[:2]} does not match macroblock grid "
                f"({grid.rows}, {grid.cols})"
            )
        if np.any(sad < 0):
            raise ValueError("SAD values must be non-negative")
        self.vectors = vectors
        self.sad = sad
        self.grid = grid
        self.search_range = search_range
        # Lazily-computed full-grid confidence (the field is treated as
        # immutable once built; every producer constructs a fresh instance).
        self._confidence: "np.ndarray | None" = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, grid: MacroblockGrid, search_range: int = 7) -> "MotionField":
        """A field with no motion and perfect-match (zero) SAD everywhere."""
        vectors = np.zeros((grid.rows, grid.cols, 2), dtype=np.float64)
        sad = np.zeros((grid.rows, grid.cols), dtype=np.float64)
        return cls(vectors, sad, grid, search_range)

    @classmethod
    def uniform(
        cls,
        grid: MacroblockGrid,
        motion: MotionVector,
        sad_value: float = 0.0,
        search_range: int = 7,
    ) -> "MotionField":
        """A field where every macroblock moves by the same vector."""
        vectors = np.zeros((grid.rows, grid.cols, 2), dtype=np.float64)
        vectors[..., 0] = motion.u
        vectors[..., 1] = motion.v
        sad = np.full((grid.rows, grid.cols), float(sad_value), dtype=np.float64)
        return cls(vectors, sad, grid, search_range)

    # ------------------------------------------------------------------
    # Confidence (Eq. 2)
    # ------------------------------------------------------------------
    @property
    def max_sad(self) -> float:
        """Maximum possible SAD for this field's macroblock size."""
        return 255.0 * self.grid.block_size * self.grid.block_size

    def confidence(self) -> np.ndarray:
        """Per-macroblock confidence alpha = 1 - SAD / (255 * L^2) (Eq. 2).

        Memoized: the extrapolator queries several (sub-)ROIs against the
        same field each frame, and recomputing the full-grid alpha per query
        dominated the extrapolation cost.  Treat the returned array as
        read-only.
        """
        if self._confidence is None:
            alpha = 1.0 - self.sad / self.max_sad
            self._confidence = np.clip(alpha, 0.0, 1.0)
        return self._confidence

    # ------------------------------------------------------------------
    # ROI queries (used by the extrapolation algorithm)
    # ------------------------------------------------------------------
    def vector_at(self, x: float, y: float) -> MotionVector:
        """Motion vector of the macroblock containing pixel ``(x, y)``.

        Each pixel inherits the MV of the macroblock it belongs to (Sec. 3.2).
        """
        row, col = self.grid.block_index_for_pixel(x, y)
        u, v = self.vectors[row, col]
        return MotionVector(float(u), float(v))

    def roi_average_motion(self, roi: BoundingBox) -> MotionVector:
        """Pixel-area-weighted average motion of the ROI (Eq. 1).

        Every pixel inside the ROI inherits its macroblock's MV, so the
        average over pixels equals the average over macroblocks weighted by
        the overlap area between the ROI and each macroblock.
        """
        weights, rows, cols = self._roi_weights(roi)
        total = weights.sum()
        if total <= 0.0:
            return MotionVector(0.0, 0.0)
        block_vectors = self.vectors[rows, cols]
        u = float((block_vectors[..., 0] * weights).sum() / total)
        v = float((block_vectors[..., 1] * weights).sum() / total)
        return MotionVector(u, v)

    def roi_confidence(self, roi: BoundingBox) -> float:
        """Average confidence of the MVs encapsulated by the ROI (Sec. 3.2)."""
        weights, rows, cols = self._roi_weights(roi)
        total = weights.sum()
        if total <= 0.0:
            return 0.0
        alpha = self.confidence()[rows, cols]
        return float((alpha * weights).sum() / total)

    def roi_statistics(self, roi: BoundingBox) -> Tuple[MotionVector, float]:
        """Average motion (Eq. 1) and confidence (Eq. 2) in one weight pass.

        The extrapolator needs both quantities for every sub-ROI; computing
        them together halves the overlap-weight work on the hot path.
        """
        weights, rows, cols = self._roi_weights(roi)
        total = weights.sum()
        if total <= 0.0:
            return MotionVector(0.0, 0.0), 0.0
        block_vectors = self.vectors[rows, cols]
        u = float((block_vectors[..., 0] * weights).sum() / total)
        v = float((block_vectors[..., 1] * weights).sum() / total)
        alpha = self.confidence()[rows, cols]
        confidence = float((alpha * weights).sum() / total)
        return MotionVector(u, v), confidence

    def roi_statistics_batch(
        self, rois: "Sequence[BoundingBox]"
    ) -> List[Tuple[MotionVector, float]]:
        """:meth:`roi_statistics` for every ROI against this field at once.

        The batch form exists for the extrapolator's sub-ROI sweep: the
        full-grid confidence is computed once (memoized) and each ROI's
        weight pass runs against it.  Per-ROI reductions use exactly the
        arithmetic of :meth:`roi_statistics`, so the results are
        bit-identical to querying one ROI at a time.
        """
        if rois:
            self.confidence()  # materialise the shared alpha grid once
        return [self.roi_statistics(roi) for roi in rois]

    def _roi_weights(self, roi: BoundingBox) -> Tuple[np.ndarray, slice, slice]:
        """Overlap areas between ``roi`` and each macroblock it touches.

        The per-block intersection areas have the closed form
        ``max(0, min(rights) - max(lefts)) * max(0, min(bottoms) - max(tops))``
        which is evaluated for all touched blocks with two 1-D clip
        expressions and an outer product — no Python loop over blocks.
        """
        rows, cols = self.grid.blocks_overlapping(roi)
        clipped = roi.clip(self.grid.frame_width, self.grid.frame_height)
        if clipped.is_empty():
            clipped = roi
        block = float(self.grid.block_size)
        row_starts = np.arange(rows.start, rows.stop, dtype=np.float64) * block
        col_starts = np.arange(cols.start, cols.stop, dtype=np.float64) * block
        row_ends = np.minimum(row_starts + block, float(self.grid.frame_height))
        col_ends = np.minimum(col_starts + block, float(self.grid.frame_width))
        overlap_h = np.clip(
            np.minimum(row_ends, clipped.bottom) - np.maximum(row_starts, clipped.top),
            0.0,
            None,
        )
        overlap_w = np.clip(
            np.minimum(col_ends, clipped.right) - np.maximum(col_starts, clipped.left),
            0.0,
            None,
        )
        weights = overlap_w[None, :] * overlap_h[:, None]
        if weights.sum() <= 0.0:
            weights[:] = 1.0
        return weights, rows, cols

    # ------------------------------------------------------------------
    # Storage accounting (Sec. 4.2)
    # ------------------------------------------------------------------
    def bits_per_vector(self) -> int:
        """Bits needed to encode one MV component pair.

        Each direction needs ``ceil(log2(2d + 1))`` bits (Sec. 2.3); both
        directions together round up to whole bytes in the frame buffer.
        """
        per_direction = math.ceil(math.log2(2 * self.search_range + 1))
        return 2 * per_direction

    def metadata_bytes(self) -> int:
        """Total bytes the MV + SAD metadata occupies in the frame buffer.

        Motion vectors are packed at one byte per direction pair when the
        search range allows it (the paper's d = 7 case), and each SAD/
        confidence value is stored as one additional byte.
        """
        mv_bytes_per_block = max(1, math.ceil(self.bits_per_vector() / 8))
        confidence_bytes_per_block = 1
        return self.grid.num_blocks * (mv_bytes_per_block + confidence_bytes_per_block)

    # ------------------------------------------------------------------
    # Statistics helpers
    # ------------------------------------------------------------------
    def mean_motion(self) -> MotionVector:
        """Unweighted mean motion over the whole frame."""
        u = float(self.vectors[..., 0].mean())
        v = float(self.vectors[..., 1].mean())
        return MotionVector(u, v)

    def max_magnitude(self) -> float:
        """Largest MV magnitude in the field."""
        mags = np.hypot(self.vectors[..., 0], self.vectors[..., 1])
        return float(mags.max()) if mags.size else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MotionField(rows={self.grid.rows}, cols={self.grid.cols}, "
            f"block={self.grid.block_size}, mean={self.mean_motion()})"
        )
