"""Shared per-offset SAD kernels for the block-matching strategies.

Both search strategies reduce to the same primitive: "evaluate the SAD of
every macroblock against the previous frame displaced by some offset".
Exhaustive search evaluates one *global* offset per candidate; three-step
search evaluates a *per-block* offset per candidate (each block carries its
own search center).  :class:`SadKernel` serves both, processing the whole
macroblock grid with a handful of NumPy dispatches per candidate instead of
a Python loop over macroblocks.

Two execution modes, picked automatically per frame pair:

* **Exact-integer mode** — when both frames hold only integer values (the
  realistic case: luma planes are 8-bit in a real ISP), every SAD is an
  integer small enough that float64 arithmetic on it is exact regardless of
  summation order.  The kernel therefore runs in narrow integer dtypes
  (uint8 absolute differences, int64 accumulation), which cuts memory
  traffic ~8x versus float64 and lets uniform offsets use cheap whole-frame
  shifted differences.  Results are bit-identical to the scalar float64
  reference by exactness.
* **Float mode** — for general float frames, per-block SADs are computed by
  gathering ``(L, L)`` reference patches from a strided sliding-window view
  and reducing each block's C-contiguous absolute-difference patch over its
  trailing ``L*L`` elements — the same operation sequence, and therefore the
  same IEEE rounding, as the scalar reference loop
  (:mod:`repro.motion.reference`).  Bit-identical, at float64 bandwidth.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

#: Largest absolute frame value for which the exact-integer mode is used;
#: guarantees every SAD stays far below 2**53 so float64 sums are exact.
_MAX_EXACT_INT = 2**20


def frames_are_integer(*frames: np.ndarray) -> bool:
    """True when every frame holds only integer values of bounded magnitude.

    Integer dtypes qualify immediately; float frames are value-checked.
    """
    for frame in frames:
        if np.issubdtype(frame.dtype, np.integer):
            if frame.dtype.itemsize > 2:
                if frame.size and (
                    int(frame.min()) < -_MAX_EXACT_INT or int(frame.max()) > _MAX_EXACT_INT
                ):
                    return False
            continue
        if not np.issubdtype(frame.dtype, np.floating):
            return False
        if frame.size == 0:
            continue
        low = float(frame.min())
        high = float(frame.max())
        if low < -_MAX_EXACT_INT or high > _MAX_EXACT_INT or not np.isfinite([low, high]).all():
            return False
        if not (frame == np.floor(frame)).all():
            return False
    return True


class SadKernel:
    """Per-offset SAD evaluation over a whole macroblock grid.

    Parameters
    ----------
    current, previous:
        2-D luma frames whose dimensions are already multiples of
        ``block_size`` (the :class:`~repro.motion.block_matching.BlockMatcher`
        edge-pads before constructing the kernel).  Integer dtypes (or
        integer-valued float frames) select the exact-integer mode.
    block_size:
        Macroblock edge length ``L``.
    search_range:
        Search distance ``d``; offsets passed to the SAD methods must
        satisfy ``|offset| <= d``.
    exact_integer:
        Force or forbid the exact-integer mode; ``None`` (default) detects
        it from the frame contents.
    """

    def __init__(
        self,
        current: np.ndarray,
        previous: np.ndarray,
        block_size: int,
        search_range: int,
        exact_integer: bool | None = None,
    ) -> None:
        if current.shape != previous.shape:
            raise ValueError(
                f"frame shapes differ: {current.shape} vs {previous.shape}"
            )
        height, width = current.shape
        if height % block_size or width % block_size:
            raise ValueError(
                f"kernel frames must be multiples of the block size, got "
                f"{current.shape} for block {block_size}"
            )
        self.block_size = block_size
        self.search_range = search_range
        self.rows = height // block_size
        self.cols = width // block_size
        self.frame_height = height
        self.frame_width = width
        if exact_integer is None:
            exact_integer = frames_are_integer(current, previous)
        self.exact_integer = exact_integer

        if self.exact_integer:
            work = self._integer_dtype(current, previous)
            self._current = np.ascontiguousarray(current, dtype=work)
            self._padded = np.pad(
                np.asarray(previous, dtype=work), search_range, mode="edge"
            )
            # int32 sums cannot overflow for uint8 diffs with L <= 2896 and
            # are measurably faster than int64 on the hot path.
            if work == np.uint8 and 255 * block_size * block_size < 2**31:
                self._accum_dtype = np.int32
            else:
                self._accum_dtype = np.int64
        else:
            self._current = np.ascontiguousarray(current, dtype=np.float64)
            self._padded = np.pad(
                np.asarray(previous, dtype=np.float64), search_range, mode="edge"
            )

        # (rows, cols, L, L) contiguous copy of the current frame's blocks.
        self._current_blocks = np.ascontiguousarray(
            self._current.reshape(self.rows, block_size, self.cols, block_size)
            .transpose(0, 2, 1, 3)
        )
        # windows[y, x] is the (L, L) patch of the padded previous frame with
        # top-left (y, x); block (r, c) at offset (dy, dx) reads
        # windows[d + r*L + dy, d + c*L + dx].
        self._windows = sliding_window_view(self._padded, (block_size, block_size))
        self._base_y = search_range + np.arange(self.rows)[:, None] * block_size
        self._base_x = search_range + np.arange(self.cols)[None, :] * block_size

    @staticmethod
    def _integer_dtype(current: np.ndarray, previous: np.ndarray) -> np.dtype:
        """Narrowest working dtype whose difference cannot overflow."""
        lows = []
        highs = []
        for frame in (current, previous):
            if frame.dtype == np.uint8:
                lows.append(0.0)
                highs.append(255.0)
            elif frame.size:
                lows.append(float(frame.min()))
                highs.append(float(frame.max()))
        low = min(lows) if lows else 0.0
        high = max(highs) if highs else 0.0
        if low >= 0.0 and high <= 255.0:
            return np.dtype(np.uint8)
        return np.dtype(np.int32)

    # ------------------------------------------------------------------
    # Public SAD primitives
    # ------------------------------------------------------------------
    def sad_uniform(self, dy: int, dx: int) -> np.ndarray:
        """SAD of every macroblock at one global displacement ``(dy, dx)``.

        The exhaustive-search primitive.  In float mode this uses a
        whole-frame shifted difference, whose per-block reduction order can
        differ from the scalar per-block loops by float rounding; in
        exact-integer mode it shares the gather kernel (exact either way).
        Returns a ``(rows, cols)`` float64 array.
        """
        if self.exact_integer:
            return self._gathered_sad_int(dy, dx)
        d = self.search_range
        shifted = self._padded[
            d + dy : d + dy + self.frame_height, d + dx : d + dx + self.frame_width
        ]
        diff = np.abs(self._current - shifted)
        return diff.reshape(self.rows, self.block_size, self.cols, self.block_size).sum(
            axis=(1, 3)
        )

    def sad_per_block(self, dy, dx) -> np.ndarray:
        """SAD of every macroblock at per-block displacements.

        The three-step-search primitive: ``dy``/``dx`` are scalars or
        ``(rows, cols)`` integer arrays.  Bit-identical to the scalar
        reference loops in both modes.  Returns ``(rows, cols)`` float64.
        """
        if self.exact_integer:
            return self._gathered_sad_int(dy, dx)
        references = self._windows[self._base_y + dy, self._base_x + dx]
        # The ufunc output is C-contiguous, so the trailing-axes reduction
        # runs over each block's L*L contiguous elements — the same pairwise
        # order as the scalar reference's contiguous per-block sums.
        return np.abs(self._current_blocks - references).sum(axis=(2, 3))

    # ------------------------------------------------------------------
    # Exact-integer gather kernel
    # ------------------------------------------------------------------
    def _gathered_sad_int(self, dy, dx) -> np.ndarray:
        references = self._windows[self._base_y + dy, self._base_x + dx]
        if self._current_blocks.dtype == np.uint8:
            diff = np.subtract(
                np.maximum(self._current_blocks, references),
                np.minimum(self._current_blocks, references),
            )
        else:
            diff = np.abs(self._current_blocks - references)
        sad = diff.reshape(self.rows, self.cols, -1).sum(axis=-1, dtype=self._accum_dtype)
        return sad.astype(np.float64)
