"""Shared per-offset SAD kernels for the block-matching strategies.

Both search strategies reduce to the same primitive: "evaluate the SAD of
every macroblock against the previous frame displaced by some offset".
Exhaustive search evaluates one *global* offset per candidate; three-step
search evaluates a *per-block* offset per candidate (each block carries its
own search center).  :class:`SadKernel` serves both, processing the whole
macroblock grid with a handful of NumPy dispatches per candidate instead of
a Python loop over macroblocks.

Two execution modes, picked automatically per frame pair:

* **Exact-integer mode** — when both frames hold only integer values (the
  realistic case: luma planes are 8-bit in a real ISP), every SAD is an
  integer small enough that float64 arithmetic on it is exact regardless of
  summation order.  The kernel therefore runs in narrow integer dtypes
  (uint8 absolute differences, int64 accumulation), which cuts memory
  traffic ~8x versus float64 and lets uniform offsets use cheap whole-frame
  shifted differences.  Results are bit-identical to the scalar float64
  reference by exactness.

  The mode also covers **fixed-point frames**: float frames whose values all
  lie on a power-of-two lattice (e.g. the Q8.4 frames the quantized ISP
  stages emit, multiples of 1/16) are scaled up to integers, matched with
  integer arithmetic, and the SADs divided back down.  Because every
  per-block partial sum is a bounded multiple of the lattice step, float64
  represents it exactly whatever the summation order, so the result is again
  bit-identical to the scalar float64 reference.
* **Float mode** — for general float frames, per-block SADs are computed by
  gathering ``(L, L)`` reference patches from a strided sliding-window view
  and reducing each block's C-contiguous absolute-difference patch over its
  trailing ``L*L`` elements — the same operation sequence, and therefore the
  same IEEE rounding, as the scalar reference loop
  (:mod:`repro.motion.reference`).  Bit-identical, at float64 bandwidth.

On top of the two full-grid primitives the kernel exposes the pruning
primitives that make the spiral/pruned exhaustive-search policies cheap:
:meth:`sad_subset` evaluates one offset for a *subset* of macroblocks, and
:meth:`lower_bound_uniform` computes the partial-sum (triangle-inequality)
SAD lower bound ``|sum(block) - sum(reference patch)| <= SAD`` for every
macroblock from O(1) summed-area-table lookups.  The lower bound is computed
in exact integer arithmetic, so pruning on it can never discard a candidate
the full scan would have accepted.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from . import kernels_numba

#: Largest absolute frame value for which the exact-integer mode is used;
#: guarantees every SAD stays far below 2**53 so float64 sums are exact.
_MAX_EXACT_INT = 2**20

#: Most *distinct* per-block displacements :meth:`SadKernel.sad_per_block`
#: serves with grouped whole-frame passes before falling back to the gather
#: kernel.  Each group costs one shifted-difference pass over the frame, so
#: past a few groups the gather's single pass (plus its indexing overhead)
#: wins again.
_GROUPED_OFFSET_LIMIT = 3

#: Kernel backends selectable through ``PipelineSpec(kernel_backend=...)``.
#: ``numpy`` is the default and the performance oracle the compiled backend
#: is property-tested against; ``numba`` compiles the integer-domain hot
#: loops (:mod:`repro.motion.kernels_numba`) and silently degrades to
#: ``numpy`` when Numba is not installed (the ``[accel]`` extra).
KERNEL_BACKENDS = ("numpy", "numba")


def numba_available() -> bool:
    """Whether the compiled kernel backend can actually run compiled."""
    return kernels_numba.NUMBA_AVAILABLE


def resolve_kernel_backend(backend: str) -> str:
    """Validate ``backend`` and degrade ``numba`` to ``numpy`` when absent.

    This is the single graceful-degradation point: configuration layers
    (:class:`BlockMatchingConfig`, ``PipelineSpec``) accept ``"numba"``
    regardless of what is installed, and the kernels resolve it at use time
    so the same spec runs everywhere — compiled where the ``[accel]`` extra
    is present, bit-identically on NumPy where it is not.
    """
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend '{backend}' (expected one of {KERNEL_BACKENDS})"
        )
    if backend == "numba" and not numba_available():
        return "numpy"
    return backend

#: Fractional-bit counts probed by :func:`fixed_point_scale` for float frames
#: that are not integer-valued.  4 matches the ISP's Q8.4 frame format; 8
#: covers finer lattices (any coarser lattice is also exact at 8 bits).
_FRAC_BITS_CANDIDATES = (4, 8)


def _bounded_integer_valued(frame: np.ndarray) -> bool:
    """True when a float frame holds only bounded integer values."""
    if frame.size == 0:
        return True
    low = float(frame.min())
    high = float(frame.max())
    if low < -_MAX_EXACT_INT or high > _MAX_EXACT_INT or not np.isfinite([low, high]).all():
        return False
    return bool((frame == np.floor(frame)).all())


def frames_are_integer(*frames: np.ndarray) -> bool:
    """True when every frame holds only integer values of bounded magnitude.

    Integer dtypes qualify immediately; float frames are value-checked.
    """
    for frame in frames:
        if np.issubdtype(frame.dtype, np.integer):
            if frame.dtype.itemsize > 2:
                if frame.size and (
                    int(frame.min()) < -_MAX_EXACT_INT or int(frame.max()) > _MAX_EXACT_INT
                ):
                    return False
            continue
        if not np.issubdtype(frame.dtype, np.floating):
            return False
        if not _bounded_integer_valued(frame):
            return False
    return True


def fixed_point_scale(*frames: np.ndarray) -> Optional[int]:
    """Smallest power-of-two scale that makes every frame integer-valued.

    Returns ``1`` for plain integer(-valued) frames, ``2**f`` when every
    float frame lies on the ``2**-f`` fixed-point lattice for one of the
    probed fractional-bit counts (:data:`_FRAC_BITS_CANDIDATES`), and
    ``None`` when the frames are genuinely fractional — the float-mode
    fallback.  Scaling by the returned factor keeps every value within
    ``_MAX_EXACT_INT * 2**f``, far below the float64 exactness limit.
    """
    if frames_are_integer(*frames):
        return 1
    float_frames = []
    for frame in frames:
        if np.issubdtype(frame.dtype, np.integer):
            # Integer frames lie on every lattice; only the magnitude bound
            # (which scaling tightens by at most 2**8) needs checking.
            if frame.dtype.itemsize > 2 and frame.size and (
                int(frame.min()) < -_MAX_EXACT_INT or int(frame.max()) > _MAX_EXACT_INT
            ):
                return None
            continue
        if not np.issubdtype(frame.dtype, np.floating):
            return None
        float_frames.append(frame)
    for frac_bits in _FRAC_BITS_CANDIDATES:
        scale = 1 << frac_bits
        if all(_bounded_integer_valued(frame * scale) for frame in float_frames):
            return scale
    return None


class KernelScratch:
    """Reusable buffer pool shared by successive :class:`SadKernel` instances.

    A kernel is built per frame pair, but its scratch buffers (difference
    images, float32 reduction staging) depend only on the frame geometry and
    working dtype — reallocating ~16 MB of them every frame costs more in
    page faults than the SAD arithmetic they stage.  A long-lived owner (the
    :class:`~repro.motion.block_matching.BlockMatcher`) passes one pool to
    every kernel it builds; buffers are handed back by name and reallocated
    only when the geometry or dtype changes.

    Buffers hold no state between uses (every consumer overwrites before
    reading), but a pool must not be shared by two kernels evaluated
    *interleaved* — sequential per-frame use only.
    """

    def __init__(self) -> None:
        self._buffers: dict = {}

    def get(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        buffer = self._buffers.get(name)
        if (
            buffer is None
            or buffer.shape != tuple(shape)
            or buffer.dtype != np.dtype(dtype)
        ):
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[name] = buffer
        return buffer


def _edge_pad_pooled(
    frame: np.ndarray, pad: int, pool: KernelScratch
) -> np.ndarray:
    """``np.pad(frame, pad, mode="edge")`` into a pooled buffer.

    Replicates the border pixels exactly like ``mode="edge"`` (corner cells
    fall out of padding the columns after the rows), but writes into a
    reusable buffer instead of allocating a fresh padded frame per call.
    """
    if pad == 0:
        return frame
    height, width = frame.shape
    padded = pool.get(
        "padded_frame", (height + 2 * pad, width + 2 * pad), frame.dtype
    )
    padded[pad : pad + height, pad : pad + width] = frame
    padded[:pad, pad : pad + width] = frame[:1, :]
    padded[pad + height :, pad : pad + width] = frame[-1:, :]
    padded[:, :pad] = padded[:, pad : pad + 1]
    padded[:, pad + width :] = padded[:, pad + width - 1 : pad + width]
    return padded


class SadKernel:
    """Per-offset SAD evaluation over a whole macroblock grid.

    Parameters
    ----------
    current, previous:
        2-D luma frames whose dimensions are already multiples of
        ``block_size`` (the :class:`~repro.motion.block_matching.BlockMatcher`
        edge-pads before constructing the kernel).  Integer dtypes (or
        integer-valued / fixed-point-lattice float frames) select the
        exact-integer mode.
    block_size:
        Macroblock edge length ``L``.
    search_range:
        Search distance ``d``; offsets passed to the SAD methods must
        satisfy ``|offset| <= d``.
    exact_integer:
        Force or forbid the exact-integer mode; ``None`` (default) detects
        it (including the fixed-point scale) from the frame contents.
        Forcing ``True`` asserts the frames are integer-valued as-is
        (scale 1).
    backend:
        Kernel backend (:data:`KERNEL_BACKENDS`).  ``numba`` routes the
        exact-integer primitives through the compiled loops of
        :mod:`repro.motion.kernels_numba`; it resolves to ``numpy`` when
        Numba is not installed *or* the frames force float mode (compiled
        float sums would not reproduce the oracle's reduction order).  The
        backend actually in effect is :attr:`active_backend`.
    """

    def __init__(
        self,
        current: np.ndarray,
        previous: np.ndarray,
        block_size: int,
        search_range: int,
        exact_integer: bool | None = None,
        backend: str = "numpy",
        scratch: Optional[KernelScratch] = None,
    ) -> None:
        if current.shape != previous.shape:
            raise ValueError(
                f"frame shapes differ: {current.shape} vs {previous.shape}"
            )
        height, width = current.shape
        if height % block_size or width % block_size:
            raise ValueError(
                f"kernel frames must be multiples of the block size, got "
                f"{current.shape} for block {block_size}"
            )
        self.block_size = block_size
        self.search_range = search_range
        self.rows = height // block_size
        self.cols = width // block_size
        self.frame_height = height
        self.frame_width = width
        #: Power-of-two factor the frames were scaled by before integer
        #: matching; 1 for plain integer frames, >1 for fixed-point lattices.
        self.scale = 1
        if exact_integer is None:
            scale = fixed_point_scale(current, previous)
            exact_integer = scale is not None
            self.scale = scale if scale is not None else 1
        self.exact_integer = exact_integer
        #: Backend the caller asked for (before availability resolution).
        self.requested_backend = backend
        #: Backend actually serving the primitives: ``numba`` only when the
        #: compiled module is importable *and* the frames ride the
        #: exact-integer mode; ``numpy`` otherwise.
        self.active_backend = (
            "numba"
            if resolve_kernel_backend(backend) == "numba" and self.exact_integer
            else "numpy"
        )

        pool = scratch if scratch is not None else KernelScratch()
        if self.exact_integer:
            if self.scale != 1:
                # Lattice values times a power of two are exact integers in
                # float64; rint only normalises the float representation.
                current = np.rint(np.asarray(current, dtype=np.float64) * self.scale)
                previous = np.rint(np.asarray(previous, dtype=np.float64) * self.scale)
            work = self._integer_dtype(current, previous)
            self._current = np.ascontiguousarray(current, dtype=work)
            self._padded = _edge_pad_pooled(
                np.asarray(previous, dtype=work), search_range, pool
            )
            # int32 sums cannot overflow for uint8 diffs with L <= 2896 and
            # are measurably faster than int64 on the hot path.
            if work == np.uint8 and 255 * block_size * block_size < 2**31:
                self._accum_dtype = np.int32
            else:
                self._accum_dtype = np.int64
            # Whole-frame uniform SADs reduce via float32 GEMV when every
            # possible block SAD stays below 2**24: float32 then represents
            # every partial sum exactly (all terms are non-negative bounded
            # integers), so the BLAS reduction is bit-equal to the integer
            # sum while running ~3x faster than a strided integer reduction.
            if work == np.uint8:
                max_diff = 255.0
            elif self._current.size:
                lo = min(float(self._current.min()), float(self._padded.min()))
                hi = max(float(self._current.max()), float(self._padded.max()))
                max_diff = hi - lo
            else:
                max_diff = 0.0
            self._f32_reduction_exact = (
                max_diff * block_size * block_size < float(2**24)
            )
            self._ones_f32 = np.ones(block_size, dtype=np.float32)
            # Scratch reused across the ~25 SAD evaluations a search makes
            # with one kernel (and, via a caller-supplied pool, across the
            # kernels of successive frames): fresh 2 MB allocations per
            # candidate cost more in page faults than the arithmetic itself.
            self._frame_diff = pool.get("frame_diff", (height, width), work)
            self._frame_diff2 = pool.get("frame_diff2", (height, width), work)
            self._frame_f32 = (
                pool.get("frame_f32", (height, width), np.float32)
                if self._f32_reduction_exact
                else None
            )
            block_shape = (self.rows, self.cols, block_size * block_size)
            self._block_diff = pool.get("block_diff", block_shape, work)
            self._block_diff2 = pool.get("block_diff2", block_shape, work)
        else:
            self._current = np.ascontiguousarray(current, dtype=np.float64)
            self._padded = _edge_pad_pooled(
                np.asarray(previous, dtype=np.float64), search_range, pool
            )

        # (rows, cols, L, L) contiguous copy of the current frame's blocks,
        # staged in the pool so successive frames reuse the same pages.
        self._current_blocks = pool.get(
            "current_blocks",
            (self.rows, self.cols, block_size, block_size),
            self._current.dtype,
        )
        np.copyto(
            self._current_blocks,
            self._current.reshape(self.rows, block_size, self.cols, block_size)
            .transpose(0, 2, 1, 3),
        )
        # windows[y, x] is the (L, L) patch of the padded previous frame with
        # top-left (y, x); block (r, c) at offset (dy, dx) reads
        # windows[d + r*L + dy, d + c*L + dx].
        self._windows = sliding_window_view(self._padded, (block_size, block_size))
        self._base_y = search_range + np.arange(self.rows)[:, None] * block_size
        self._base_x = search_range + np.arange(self.cols)[None, :] * block_size
        # Lazily-built partial-sum pruning tables (exact-integer mode only).
        self._block_sums: Optional[np.ndarray] = None
        self._window_sums: Optional[np.ndarray] = None

    @staticmethod
    def _integer_dtype(current: np.ndarray, previous: np.ndarray) -> np.dtype:
        """Narrowest working dtype whose difference cannot overflow."""
        lows = []
        highs = []
        for frame in (current, previous):
            if frame.dtype == np.uint8:
                lows.append(0.0)
                highs.append(255.0)
            elif frame.size:
                lows.append(float(frame.min()))
                highs.append(float(frame.max()))
        low = min(lows) if lows else 0.0
        high = max(highs) if highs else 0.0
        if low >= 0.0 and high <= 255.0:
            return np.dtype(np.uint8)
        return np.dtype(np.int32)

    def _descale(self, sad: np.ndarray) -> np.ndarray:
        """Integer SAD back to frame units (exact: scale is a power of two)."""
        out = sad.astype(np.float64)
        if self.scale != 1:
            out /= self.scale
        return out

    # ------------------------------------------------------------------
    # Public SAD primitives
    # ------------------------------------------------------------------
    def sad_uniform(self, dy: int, dx: int) -> np.ndarray:
        """SAD of every macroblock at one global displacement ``(dy, dx)``.

        The exhaustive-search primitive.  In float mode this uses a
        whole-frame shifted difference, whose per-block reduction order can
        differ from the scalar per-block loops by float rounding; in
        exact-integer mode it shares the gather kernel (exact either way).
        Returns a ``(rows, cols)`` float64 array.
        """
        if self.active_backend == "numba":
            out = np.empty((self.rows, self.cols), dtype=np.int64)
            kernels_numba.sad_uniform(
                self._current_blocks, self._padded, self.search_range, dy, dx, out
            )
            return self._descale(out)
        if self.exact_integer:
            # Whole-frame shifted difference instead of the (rows, cols, L, L)
            # fancy-index gather: the shifted reference is a *view* of the
            # padded frame, so this touches each pixel once at the narrow
            # working dtype.  Integer sums are exact in any order, so every
            # reduction below is bit-identical to the gather kernel (and to
            # the scalar reference) by exactness.
            d = self.search_range
            L = self.block_size
            shifted = self._padded[
                d + dy : d + dy + self.frame_height, d + dx : d + dx + self.frame_width
            ]
            if self._current.dtype == np.uint8 and self._f32_reduction_exact:
                # |a - b| for uint8 via max/min, with the final subtract
                # emitting float32 directly (the ufunc upcasts both uint8
                # operands to float32, where differences <= 255 are exact) —
                # this fuses away the separate widening pass the GEMV input
                # would otherwise need.
                np.maximum(self._current, shifted, out=self._frame_diff)
                np.minimum(self._current, shifted, out=self._frame_diff2)
                np.subtract(
                    self._frame_diff, self._frame_diff2, out=self._frame_f32
                )
                partial = self._frame_f32.reshape(-1, L) @ self._ones_f32
                partial = partial.reshape(self.frame_height, self.cols)
                sad = partial.reshape(self.rows, L, self.cols).transpose(0, 2, 1) @ (
                    self._ones_f32
                )
                return self._descale(sad.astype(np.int64))
            diff = self._frame_diff
            if self._current.dtype == np.uint8:
                np.maximum(self._current, shifted, out=diff)
                np.minimum(self._current, shifted, out=self._frame_diff2)
                np.subtract(diff, self._frame_diff2, out=diff)
            else:
                np.subtract(self._current, shifted, out=diff)
                np.abs(diff, out=diff)
            if self._f32_reduction_exact:
                # Two exact float32 GEMVs: columns within each block row of
                # pixels, then the L pixel rows of each block.
                np.copyto(self._frame_f32, diff, casting="unsafe")
                partial = self._frame_f32.reshape(-1, L) @ self._ones_f32
                partial = partial.reshape(self.frame_height, self.cols)
                sad = partial.reshape(self.rows, L, self.cols).transpose(0, 2, 1) @ (
                    self._ones_f32
                )
                return self._descale(sad.astype(np.int64))
            sad = diff.reshape(self.rows, L, self.cols, L).sum(
                axis=(1, 3), dtype=self._accum_dtype
            )
            return self._descale(sad)
        d = self.search_range
        shifted = self._padded[
            d + dy : d + dy + self.frame_height, d + dx : d + dx + self.frame_width
        ]
        diff = np.abs(self._current - shifted)
        return diff.reshape(self.rows, self.block_size, self.cols, self.block_size).sum(
            axis=(1, 3)
        )

    def sad_per_block(self, dy, dx) -> np.ndarray:
        """SAD of every macroblock at per-block displacements.

        The three-step-search primitive: ``dy``/``dx`` are scalars or
        ``(rows, cols)`` integer arrays.  Bit-identical to the scalar
        reference loops in both modes.  Returns ``(rows, cols)`` float64.
        """
        if self.active_backend == "numba":
            shape = (self.rows, self.cols)
            dy_arr = np.ascontiguousarray(
                np.broadcast_to(np.asarray(dy, dtype=np.int64), shape)
            )
            dx_arr = np.ascontiguousarray(
                np.broadcast_to(np.asarray(dx, dtype=np.int64), shape)
            )
            out = np.empty(shape, dtype=np.int64)
            kernels_numba.sad_per_block(
                self._current_blocks, self._padded, self.search_range, dy_arr, dx_arr, out
            )
            return self._descale(out)
        if self.exact_integer:
            grouped = self._grouped_sad_int(dy, dx)
            if grouped is not None:
                return grouped
            return self._gathered_sad_int(dy, dx)
        references = self._windows[self._base_y + dy, self._base_x + dx]
        # The ufunc output is C-contiguous, so the trailing-axes reduction
        # runs over each block's L*L contiguous elements — the same pairwise
        # order as the scalar reference's contiguous per-block sums.
        return np.abs(self._current_blocks - references).sum(axis=(2, 3))

    def sad_subset(self, dy: int, dx: int, rows_idx, cols_idx) -> np.ndarray:
        """SAD at one global displacement for a subset of macroblocks.

        ``rows_idx``/``cols_idx`` are matching 1-D index arrays (as produced
        by ``np.nonzero`` on a block mask).  Returns a ``(k,)`` float64
        array, bit-identical per block to the full-grid primitives: both
        modes gather C-contiguous ``(L, L)`` patches and reduce over the
        trailing axes, the same pairwise order as the scalar reference.
        """
        if self.active_backend == "numba":
            rows_arr = np.ascontiguousarray(np.asarray(rows_idx, dtype=np.int64))
            cols_arr = np.ascontiguousarray(np.asarray(cols_idx, dtype=np.int64))
            out = np.empty(rows_arr.shape[0], dtype=np.int64)
            kernels_numba.sad_subset(
                self._current_blocks,
                self._padded,
                self.search_range,
                dy,
                dx,
                rows_arr,
                cols_arr,
                out,
            )
            return self._descale(out)
        ys = self._base_y[rows_idx, 0] + dy
        xs = self._base_x[0, cols_idx] + dx
        references = self._windows[ys, xs]
        blocks = self._current_blocks[rows_idx, cols_idx]
        if not self.exact_integer:
            return np.abs(blocks - references).sum(axis=(1, 2))
        if blocks.dtype == np.uint8:
            diff = np.subtract(
                np.maximum(blocks, references), np.minimum(blocks, references)
            )
        else:
            diff = np.abs(blocks - references)
        sad = diff.reshape(diff.shape[0], -1).sum(axis=-1, dtype=self._accum_dtype)
        return self._descale(sad)

    # ------------------------------------------------------------------
    # Partial-sum lower bound (exact-integer mode only)
    # ------------------------------------------------------------------
    @property
    def supports_lower_bound(self) -> bool:
        """Whether :meth:`lower_bound_uniform` is available.

        Only the exact-integer mode qualifies: the triangle inequality
        ``|sum(a) - sum(b)| <= sum(|a - b|)`` is computed in exact integer
        arithmetic there, so pruning on it is provably lossless.  In float
        mode the bound's rounding could exceed the rounded SAD, which would
        break bit-identity.
        """
        return self.exact_integer

    def _ensure_prune_tables(self) -> None:
        if self._block_sums is not None:
            return
        self._block_sums = self._current_blocks.reshape(self.rows, self.cols, -1).sum(
            axis=-1, dtype=np.int64
        )
        # Summed-area table of the padded previous frame: the sum of the
        # (L, L) window with top-left (y, x) is a 4-corner lookup, giving
        # window sums aligned with self._windows' leading dimensions.
        padded = np.asarray(self._padded, dtype=np.int64)
        sat = np.zeros(
            (padded.shape[0] + 1, padded.shape[1] + 1), dtype=np.int64
        )
        np.cumsum(np.cumsum(padded, axis=0), axis=1, out=sat[1:, 1:])
        size = self.block_size
        self._window_sums = (
            sat[size:, size:] - sat[size:, :-size] - sat[:-size, size:] + sat[:-size, :-size]
        )

    def lower_bound_uniform(self, dy: int, dx: int) -> np.ndarray:
        """Partial-sum SAD lower bound for every macroblock at one offset.

        ``|sum(block) - sum(reference)| <= SAD(block, reference)`` holds
        exactly in integer arithmetic, so a block whose bound is already no
        better than its best SAD cannot strictly improve and may be skipped.
        Returns a ``(rows, cols)`` float64 array in frame units.
        """
        if not self.exact_integer:
            raise RuntimeError("partial-sum lower bound requires the exact-integer mode")
        self._ensure_prune_tables()
        if self.active_backend == "numba":
            out = np.empty((self.rows, self.cols), dtype=np.int64)
            kernels_numba.lower_bound_uniform(
                self._block_sums,
                self._window_sums,
                self.search_range,
                self.block_size,
                dy,
                dx,
                out,
            )
            return self._descale(out)
        references = self._window_sums[self._base_y + dy, self._base_x + dx]
        return self._descale(np.abs(self._block_sums - references))

    # ------------------------------------------------------------------
    # Candidate ordering and the fused compiled driver
    # ------------------------------------------------------------------
    def histogram_order(self, offsets: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Visit order for the histogram search policy.

        Scores every candidate offset with the *global* partial-sum SAD
        histogram — ``sum over blocks of |sum(block) - sum(reference)|``, an
        O(1)-per-block whole-frame lower bound from the summed-area tables —
        and returns the candidate indices sorted by ascending score (spiral
        rank breaks score ties, and the rank-0 ``(0, 0)`` candidate is
        always visited first as the seed).  Visiting globally promising
        displacements early tightens every block's best SAD sooner, so the
        per-block pruning rules skip more work than the fixed spiral does on
        panning scenes whose true motion sits far from the window centre.

        Requires the exact-integer mode (the tables the scores come from).
        The returned indices double as the candidates' spiral ranks, which
        is what makes out-of-spiral-order scanning bit-identical: updates
        break SAD ties on the smaller spiral rank, so the winner is the
        (SAD, spiral-rank) lexicographic minimum regardless of visit order.
        """
        if not self.exact_integer:
            raise RuntimeError("histogram ordering requires the exact-integer mode")
        self._ensure_prune_tables()
        dys = np.ascontiguousarray([o[0] for o in offsets], dtype=np.int64)
        dxs = np.ascontiguousarray([o[1] for o in offsets], dtype=np.int64)
        scores = np.empty(len(offsets), dtype=np.int64)
        if self.active_backend == "numba":
            kernels_numba.histogram_scores(
                self._block_sums,
                self._window_sums,
                self.search_range,
                self.block_size,
                dys,
                dxs,
                scores,
            )
        else:
            for index in range(len(offsets)):
                references = self._window_sums[
                    self._base_y + dys[index], self._base_x + dxs[index]
                ]
                scores[index] = np.abs(self._block_sums - references).sum()
        # lexsort: last key is primary — ascending score, spiral rank on ties.
        order = np.lexsort((np.arange(len(offsets)), scores))
        return np.concatenate(([0], order[order != 0])).astype(np.int64)

    @property
    def supports_fused(self) -> bool:
        """Whether :meth:`fused_exhaustive` runs compiled.

        Requires the numba backend to be active (which itself implies the
        exact-integer mode): the fused per-macroblock driver interpreted in
        Python would be orders of magnitude slower than the vectorized NumPy
        scan, so the dispatcher only takes it when it is actually compiled.
        """
        return self.active_backend == "numba"

    def fused_exhaustive(
        self,
        offsets: Sequence[Tuple[int, int]],
        ranks: np.ndarray,
        policy_code: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int, int]:
        """Whole exhaustive search in one compiled call (no Python dispatch).

        ``offsets`` are the candidates in visit order, ``ranks`` their
        spiral ranks (the tie-break), ``policy_code`` one of the
        ``kernels_numba.POLICY_*`` pruning levels.  Returns
        ``(best_dy, best_dx, best_sad, evaluated, lower_bound_checks,
        offsets_skipped)`` with SAD already descaled to frame units.
        """
        if not self.exact_integer:
            raise RuntimeError("the fused exhaustive driver requires the exact-integer mode")
        self._ensure_prune_tables()
        dys = np.ascontiguousarray([o[0] for o in offsets], dtype=np.int64)
        dxs = np.ascontiguousarray([o[1] for o in offsets], dtype=np.int64)
        ranks = np.ascontiguousarray(ranks, dtype=np.int64)
        suffix_min_rank = np.minimum.accumulate(ranks[::-1])[::-1].copy()
        best_dy = np.empty((self.rows, self.cols), dtype=np.int64)
        best_dx = np.empty((self.rows, self.cols), dtype=np.int64)
        best_sad = np.empty((self.rows, self.cols), dtype=np.int64)
        eval_per_offset = np.zeros(len(offsets), dtype=np.int64)
        evaluated, lower_bound_checks = kernels_numba.fused_exhaustive(
            self._current_blocks,
            self._padded,
            self._block_sums,
            self._window_sums,
            dys,
            dxs,
            ranks,
            suffix_min_rank,
            self.search_range,
            policy_code,
            best_dy,
            best_dx,
            best_sad,
            eval_per_offset,
        )
        offsets_skipped = int((eval_per_offset == 0).sum())
        return (
            best_dy,
            best_dx,
            self._descale(best_sad),
            int(evaluated),
            int(lower_bound_checks),
            offsets_skipped,
        )

    # ------------------------------------------------------------------
    # Exact-integer gather kernel
    # ------------------------------------------------------------------
    def _grouped_sad_int(self, dy, dx) -> Optional[np.ndarray]:
        """Per-block SADs via whole-frame passes grouped by unique offset.

        Three-step search starts every block at the same center, so early
        candidate evaluations carry only a handful of *distinct* per-block
        displacements.  Each distinct offset is then served by one uniform
        whole-frame shifted-difference pass (:meth:`sad_uniform`'s fast
        path) and masked into place — far cheaper than the fancy-index
        gather, and bit-identical by integer exactness.  Returns ``None``
        when the offsets are too diverse for grouping to pay off (the
        gather kernel handles those).
        """
        dy_arr = np.asarray(dy)
        dx_arr = np.asarray(dx)
        if dy_arr.ndim == 0 and dx_arr.ndim == 0:
            return self.sad_uniform(int(dy_arr), int(dx_arr))
        shape = (self.rows, self.cols)
        span = 2 * self.search_range + 1
        keys = (
            np.broadcast_to(dy_arr, shape).astype(np.int64) + self.search_range
        ) * span + (
            np.broadcast_to(dx_arr, shape).astype(np.int64) + self.search_range
        )
        unique_keys = np.unique(keys)
        if unique_keys.size > _GROUPED_OFFSET_LIMIT:
            return None
        out = np.empty(shape, dtype=np.float64)
        for key in unique_keys:
            offset_dy = int(key) // span - self.search_range
            offset_dx = int(key) % span - self.search_range
            mask = keys == key
            out[mask] = self.sad_uniform(offset_dy, offset_dx)[mask]
        return out

    def _gathered_sad_int(self, dy, dx) -> np.ndarray:
        references = self._windows[self._base_y + dy, self._base_x + dx]
        # Flatten each block's (L, L) patch to L*L before the element-wise
        # ops: both operands are C-contiguous, so the flat view hands the
        # ufunc inner loop L*L contiguous elements instead of L, amortising
        # its per-row setup (~3x on 16x16 blocks).  Identical values —
        # element-wise ops don't care about the shape.
        flat_refs = references.reshape(references.shape[0], references.shape[1], -1)
        flat_blocks = self._current_blocks.reshape(
            self.rows, self.cols, -1
        )
        diff = self._block_diff
        if flat_blocks.dtype == np.uint8:
            np.maximum(flat_blocks, flat_refs, out=diff)
            np.minimum(flat_blocks, flat_refs, out=self._block_diff2)
            np.subtract(diff, self._block_diff2, out=diff)
        else:
            np.subtract(flat_blocks, flat_refs, out=diff)
            np.abs(diff, out=diff)
        sad = diff.sum(axis=-1, dtype=self._accum_dtype)
        return self._descale(sad)
