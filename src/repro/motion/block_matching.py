"""Block-matching motion estimation (Sec. 2.3).

Two search strategies are provided:

* **Exhaustive search (ES)** — evaluates every candidate displacement inside
  the ``(2d + 1) x (2d + 1)`` search window.  Most accurate, costs
  ``L^2 * (2d + 1)^2`` arithmetic operations per macroblock.
* **Three-step search (TSS)** — the classic logarithmic search of Koga et
  al., which evaluates nine candidates per step while halving the step size.
  Costs ``L^2 * (1 + 8 * log2(d + 1))`` operations per macroblock, an ~8/9
  reduction at ``d = 7``.

Both strategies are fully vectorized: every candidate displacement is
evaluated for the whole macroblock grid at once through the shared
:class:`~repro.motion.kernels.SadKernel`, so a search step costs a handful
of NumPy dispatches regardless of frame size.  The original per-macroblock
Python loops live on in :mod:`repro.motion.reference` as the bit-identical
correctness oracle.

Exhaustive search additionally supports three **search policies**, all of
which return bit-identical motion fields (same argmin, same SAD — the
pruning rules only ever skip candidates that provably cannot *strictly*
improve a block's best SAD, which is exactly the full scan's update rule):

* ``FULL`` — evaluate every block at every offset; the original scan.
* ``SPIRAL`` — visit offsets in the same nearest-to-zero spiral order, but
  skip blocks whose best SAD already hit 0 (SAD is non-negative, so no
  candidate can strictly beat a perfect match) and stop outright once every
  block is perfect.
* ``PRUNED`` — spiral plus a partial-sum lower-bound pass: a block is
  evaluated at an offset only when the triangle-inequality bound
  ``|sum(block) - sum(reference)|`` is still below its best SAD.  The bound
  costs O(1) per block per offset from summed-area tables, versus ``L^2``
  for the SAD it avoids.  Requires the kernel's exact-integer mode (where
  the bound is computed exactly); on genuinely fractional float frames it
  degrades to ``SPIRAL`` behaviour.

Both strategies return a :class:`~repro.motion.motion_field.MotionField`
holding forward motion vectors (previous frame -> current frame) and the SAD
of the best match, which later feeds the confidence filter of Eq. 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Tuple

import numpy as np

from . import kernels_numba
from .kernels import KERNEL_BACKENDS, KernelScratch, SadKernel
from .motion_field import MacroblockGrid, MotionField


class SearchStrategy(Enum):
    """Block-matching search strategy."""

    EXHAUSTIVE = "exhaustive"
    THREE_STEP = "three_step"


class SearchPolicy(Enum):
    """Candidate-scan policy of the exhaustive search (result-identical)."""

    FULL = "full"
    SPIRAL = "spiral"
    PRUNED = "pruned"
    #: Pruned scan that visits candidates ranked by a *global SAD histogram*
    #: (ascending whole-frame partial-sum score) instead of the fixed
    #: spiral.  SAD ties break on spiral rank, so the motion field stays
    #: bit-identical to the full scan; visiting globally promising offsets
    #: first tightens every block's best SAD early, which makes the pruning
    #: rules skip more candidates on panning scenes whose true motion sits
    #: far from the window centre.  Degrades to ``SPIRAL`` behaviour on
    #: genuinely fractional float frames (no exact integer tables to rank
    #: with), exactly like ``PRUNED`` does.
    HISTOGRAM = "histogram"


@dataclass(frozen=True)
class SearchStats:
    """Work accounting for one exhaustive-search invocation.

    ``candidates_total`` is what the full scan would evaluate
    (``num_blocks * (2d+1)^2``); ``candidates_evaluated`` is what the active
    policy actually computed SADs for.  ``lower_bound_checks`` counts the
    O(1) partial-sum bound evaluations the pruned policy spent to avoid the
    skipped SADs, and ``offsets_skipped`` counts candidate offsets for which
    no block needed evaluation at all.
    """

    candidates_total: int
    candidates_evaluated: int
    lower_bound_checks: int = 0
    offsets_skipped: int = 0

    @property
    def evaluated_fraction(self) -> float:
        if self.candidates_total == 0:
            return 0.0
        return self.candidates_evaluated / self.candidates_total


def exhaustive_search_ops_per_macroblock(block_size: int, search_range: int) -> int:
    """Arithmetic operations per macroblock for exhaustive search."""
    return block_size * block_size * (2 * search_range + 1) ** 2


def three_step_search_ops_per_macroblock(block_size: int, search_range: int) -> int:
    """Arithmetic operations per macroblock for three-step search."""
    steps = max(1.0, math.log2(search_range + 1))
    return int(block_size * block_size * (1 + 8 * steps))


@dataclass(frozen=True)
class BlockMatchingConfig:
    """Configuration of the block matcher.

    Attributes
    ----------
    block_size:
        Macroblock edge length ``L`` in pixels (the paper uses 16 by default
        and sweeps 4..128 in Fig. 11a).
    search_range:
        Search distance ``d`` in pixels; the window is ``(2d+1) x (2d+1)``.
        ``d = 0`` is the valid zero-motion degenerate case (the window
        collapses to the co-located block).
    strategy:
        Exhaustive or three-step search.
    search_policy:
        Candidate-scan policy of the exhaustive search (accepts the enum or
        its string value).  All policies produce bit-identical motion
        fields; ``PRUNED`` (the default) skips provably non-improving
        candidates via the spiral early-exit and the partial-sum lower
        bound; ``HISTOGRAM`` additionally reorders candidates by a global
        SAD histogram.  Ignored by the three-step search.
    kernel_backend:
        SAD kernel backend (``numpy``/``numba``).  ``numpy`` is the default
        and the oracle; ``numba`` compiles the exact-integer hot loops and
        fuses the whole exhaustive scan into one compiled call per frame.
        Both backends are bit-identical; ``numba`` silently resolves to
        ``numpy`` when Numba is not installed (install the ``[accel]``
        extra) or when the frames force float mode.
    """

    block_size: int = 16
    search_range: int = 7
    strategy: SearchStrategy = SearchStrategy.THREE_STEP
    search_policy: SearchPolicy = SearchPolicy.PRUNED
    kernel_backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.search_range < 0:
            raise ValueError("search_range must be non-negative")
        if not isinstance(self.search_policy, SearchPolicy):
            object.__setattr__(self, "search_policy", SearchPolicy(self.search_policy))
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend '{self.kernel_backend}' "
                f"(expected one of {KERNEL_BACKENDS})"
            )

    @property
    def ops_per_macroblock(self) -> int:
        """Arithmetic operations per macroblock for this configuration."""
        if self.strategy is SearchStrategy.EXHAUSTIVE:
            return exhaustive_search_ops_per_macroblock(self.block_size, self.search_range)
        return three_step_search_ops_per_macroblock(self.block_size, self.search_range)

    def ops_per_frame(self, frame_width: int, frame_height: int) -> int:
        """Arithmetic operations to estimate motion for a whole frame."""
        grid = MacroblockGrid(frame_width, frame_height, self.block_size)
        return grid.num_blocks * self.ops_per_macroblock


class BlockMatcher:
    """Estimates a macroblock motion field between two consecutive frames."""

    def __init__(self, config: BlockMatchingConfig | None = None) -> None:
        self.config = config or BlockMatchingConfig()
        #: Arithmetic-operation count of the most recent :meth:`estimate` call.
        #: Three-step search uses the analytical per-macroblock formula;
        #: exhaustive search counts the candidates its policy actually
        #: evaluated (identical to the analytical formula for ``FULL``).
        self.last_operation_count = 0
        #: Candidate accounting of the most recent exhaustive search
        #: (``None`` after a three-step run).
        self.last_search_stats: SearchStats | None = None
        #: Whether the most recent estimate rode the kernel's exact-integer
        #: mode, and at which fixed-point scale (1 = plain integers).
        self.last_kernel_exact = False
        self.last_kernel_scale = 1
        #: Kernel backend that actually served the most recent estimate
        #: (``numba`` only when compiled and in exact-integer mode).
        self.last_kernel_backend = "numpy"
        # Buffer pool shared by the per-frame kernels (diff images, float32
        # reduction staging) so the steady-state frame path stops paying
        # ~16 MB of fresh allocations per estimate.
        self._kernel_scratch = KernelScratch()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def estimate(self, current: np.ndarray, previous: np.ndarray) -> MotionField:
        """Estimate forward motion from ``previous`` to ``current``.

        Both frames are 2-D luma arrays of identical shape.  The returned
        field stores, for every macroblock of the *current* frame, the
        displacement its content underwent since the previous frame and the
        SAD of the best match.
        """
        current = np.asarray(current)
        previous = np.asarray(previous)
        if current.ndim != 2 or previous.ndim != 2:
            raise ValueError("block matching expects 2-D luma frames")
        if current.shape != previous.shape:
            raise ValueError(
                f"frame shapes differ: {current.shape} vs {previous.shape}"
            )

        height, width = current.shape
        grid = MacroblockGrid(width, height, self.config.block_size)
        padded_current, padded_previous = self._pad_to_grid(current, previous, grid)
        kernel = SadKernel(
            padded_current,
            padded_previous,
            self.config.block_size,
            self.config.search_range,
            backend=self.config.kernel_backend,
            scratch=self._kernel_scratch,
        )

        self.last_kernel_exact = kernel.exact_integer
        self.last_kernel_scale = kernel.scale
        self.last_kernel_backend = kernel.active_backend
        if self.config.strategy is SearchStrategy.EXHAUSTIVE:
            vectors, sad = self._exhaustive(kernel)
            stats = self.last_search_stats
            block_ops = self.config.block_size * self.config.block_size
            # Evaluated SADs cost L^2 each; each lower-bound check costs a
            # gather + subtract + abs + compare.
            self.last_operation_count = (
                stats.candidates_evaluated * block_ops + stats.lower_bound_checks * 4
            )
        else:
            vectors, sad = self._three_step(kernel)
            self.last_search_stats = None
            self.last_operation_count = grid.num_blocks * self.config.ops_per_macroblock
        return MotionField(vectors, sad, grid, search_range=self.config.search_range)

    # ------------------------------------------------------------------
    # Padding helpers
    # ------------------------------------------------------------------
    def _pad_to_grid(
        self, current: np.ndarray, previous: np.ndarray, grid: MacroblockGrid
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Edge-pad both frames so their size is a multiple of the block size."""
        block = self.config.block_size
        target_h = grid.rows * block
        target_w = grid.cols * block
        pad_h = target_h - current.shape[0]
        pad_w = target_w - current.shape[1]
        if pad_h == 0 and pad_w == 0:
            return current, previous
        pad = ((0, pad_h), (0, pad_w))
        return np.pad(current, pad, mode="edge"), np.pad(previous, pad, mode="edge")

    # ------------------------------------------------------------------
    # Exhaustive search
    # ------------------------------------------------------------------
    def _exhaustive(self, kernel: SadKernel) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate scan over the window, with policy-dependent pruning.

        All policies return bit-identical fields.  The full/spiral/pruned
        policies visit candidates in the same nearest-to-zero order and
        update only on *strict* SAD improvement, so their pruning rules
        (skip a block whose best SAD is 0; skip a block whose partial-sum
        lower bound is not below its best SAD) can only skip candidates the
        full scan would have rejected anyway.  The histogram policy visits
        candidates out of spiral order (globally promising offsets first)
        and therefore breaks SAD ties on the *spiral rank* instead — the
        winner is the (SAD, spiral-rank) lexicographic minimum, which is
        exactly what the spiral scan's strict-improvement rule computes.

        When the compiled kernel backend is active the whole scan runs as
        one fused per-macroblock call (:meth:`SadKernel.fused_exhaustive`)
        with no per-candidate Python dispatch; otherwise the vectorized
        per-offset NumPy loop below runs.
        """
        policy = self.config.search_policy
        d = self.config.search_range
        rows, cols = kernel.rows, kernel.cols
        num_blocks = rows * cols
        offsets = self._window_offsets(d)

        # The histogram policy ranks candidates by their global partial-sum
        # SAD score; it needs the exact-integer tables and degrades to the
        # spiral order (and spiral behaviour) on fractional float frames.
        ranked = policy is SearchPolicy.HISTOGRAM and kernel.supports_lower_bound
        ranks = np.arange(len(offsets), dtype=np.int64)
        if ranked:
            ranks = kernel.histogram_order(offsets)
            offsets = [offsets[int(index)] for index in ranks]

        if kernel.supports_fused:
            policy_code = {
                SearchPolicy.FULL: kernels_numba.POLICY_FULL,
                SearchPolicy.SPIRAL: kernels_numba.POLICY_SPIRAL,
                SearchPolicy.PRUNED: kernels_numba.POLICY_LOWER_BOUND,
                SearchPolicy.HISTOGRAM: kernels_numba.POLICY_LOWER_BOUND,
            }[policy]
            best_dy, best_dx, best_sad, evaluated, lower_bound_checks, skipped = (
                kernel.fused_exhaustive(offsets, ranks, policy_code)
            )
            self.last_search_stats = SearchStats(
                candidates_total=num_blocks * len(offsets),
                candidates_evaluated=evaluated,
                lower_bound_checks=lower_bound_checks,
                offsets_skipped=skipped,
            )
            vectors = np.stack([-best_dx, -best_dy], axis=-1).astype(np.float64)
            return vectors, best_sad

        # Dense whole-grid evaluation: exact-integer mode may use the cheap
        # uniform-offset primitive (exact either way); float mode must stay
        # on the gather primitive so dense and subset evaluations carry the
        # same per-block rounding as the scalar reference — mixing in the
        # whole-frame shifted difference would break bit-identity between
        # policies on fractional frames.
        dense_sad = kernel.sad_uniform if kernel.exact_integer else kernel.sad_per_block

        # The first visited offset is always (0, 0) (spiral rank 0, pinned
        # first by histogram_order too): evaluating it up front seeds every
        # block's best SAD without an inf sentinel.
        best_sad = dense_sad(0, 0)
        best_dy = np.zeros((rows, cols), dtype=np.int64)
        best_dx = np.zeros((rows, cols), dtype=np.int64)
        best_rank = np.zeros((rows, cols), dtype=np.int64)

        evaluated = num_blocks
        lower_bound_checks = 0
        offsets_skipped = 0
        use_lower_bound = (
            policy in (SearchPolicy.PRUNED, SearchPolicy.HISTOGRAM)
            and kernel.supports_lower_bound
        )
        # min(ranks[i:]): lets a perfect-match early exit stay correct under
        # out-of-spiral-order visiting (a remaining candidate can still win
        # a SAD tie only if its spiral rank undercuts a block's best rank).
        suffix_min_rank = np.minimum.accumulate(ranks[::-1])[::-1]

        for index, (dy, dx) in enumerate(offsets[1:], start=1):
            if policy is SearchPolicy.FULL:
                sad = dense_sad(dy, dx)
                improved = sad < best_sad
                best_sad = np.where(improved, sad, best_sad)
                best_dy[improved] = dy
                best_dx[improved] = dx
                evaluated += num_blocks
                continue

            rank = int(ranks[index])
            need = best_sad > 0.0
            if ranked:
                need |= best_rank > rank
                all_perfect = not (best_sad > 0.0).any()
            else:
                all_perfect = not need.any()
            if all_perfect and best_rank.max() < suffix_min_rank[index]:
                # Every block has a perfect match no remaining candidate
                # can beat, not even on a spiral-rank tie.  Early exit —
                # this offset and everything after it goes unevaluated.
                offsets_skipped += len(offsets) - index
                break
            if use_lower_bound:
                lower_bound_checks += num_blocks
                lower = kernel.lower_bound_uniform(dy, dx)
                if ranked:
                    need &= (lower < best_sad) | (
                        (lower <= best_sad) & (best_rank > rank)
                    )
                else:
                    need &= lower < best_sad
            rows_idx, cols_idx = np.nonzero(need)
            count = rows_idx.size
            if count == 0:
                offsets_skipped += 1
                continue
            evaluated += count
            if count == num_blocks:
                sad = dense_sad(dy, dx)
                improved = sad < best_sad
                if ranked:
                    improved |= (sad == best_sad) & (best_rank > rank)
                best_sad = np.where(improved, sad, best_sad)
                best_dy[improved] = dy
                best_dx[improved] = dx
                best_rank[improved] = rank
            else:
                sad = kernel.sad_subset(dy, dx, rows_idx, cols_idx)
                current_best = best_sad[rows_idx, cols_idx]
                improved = sad < current_best
                if ranked:
                    improved |= (sad == current_best) & (
                        best_rank[rows_idx, cols_idx] > rank
                    )
                if improved.any():
                    sel_rows = rows_idx[improved]
                    sel_cols = cols_idx[improved]
                    best_sad[sel_rows, sel_cols] = sad[improved]
                    best_dy[sel_rows, sel_cols] = dy
                    best_dx[sel_rows, sel_cols] = dx
                    best_rank[sel_rows, sel_cols] = rank

        self.last_search_stats = SearchStats(
            candidates_total=num_blocks * len(offsets),
            candidates_evaluated=evaluated,
            lower_bound_checks=lower_bound_checks,
            offsets_skipped=offsets_skipped,
        )
        # A match at offset (dx, dy) means the block content came from
        # (x + dx, y + dy) in the previous frame, i.e. it moved forward by
        # (-dx, -dy).
        vectors = np.stack([-best_dx, -best_dy], axis=-1).astype(np.float64)
        return vectors, best_sad

    @staticmethod
    def _window_offsets(search_range: int) -> List[Tuple[int, int]]:
        """All (dy, dx) offsets in the window, nearest-to-zero first.

        Ordering matters for tie-breaking: when several displacements give
        the same SAD (flat image regions), the smallest motion wins, which
        keeps static backgrounds static.
        """
        offsets = [
            (dy, dx)
            for dy in range(-search_range, search_range + 1)
            for dx in range(-search_range, search_range + 1)
        ]
        offsets.sort(key=lambda o: (o[0] * o[0] + o[1] * o[1], abs(o[0]), abs(o[1])))
        return offsets

    # ------------------------------------------------------------------
    # Three-step search
    # ------------------------------------------------------------------
    def _three_step(self, kernel: SadKernel) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized TSS: every step evaluates all macroblocks at once.

        Each macroblock carries its own search center, so a candidate is a
        per-block offset array; the nine candidates of a step are visited in
        the same order as the scalar reference and accepted only on strict
        SAD improvement, which reproduces its tie-breaking bit for bit.
        """
        d = self.config.search_range
        rows, cols = kernel.rows, kernel.cols

        center_dy = np.zeros((rows, cols), dtype=np.int64)
        center_dx = np.zeros((rows, cols), dtype=np.int64)
        best_sad = kernel.sad_per_block(0, 0)

        step = max(1, 2 ** (max(0, int(math.ceil(math.log2(d + 1))) - 1)))
        while step >= 1:
            # Candidates are relative to the step's starting center; the
            # best strictly-improving one becomes the next step's center.
            base_dy, base_dx = center_dy, center_dx
            for ndy in (-step, 0, step):
                for ndx in (-step, 0, step):
                    if ndy == 0 and ndx == 0:
                        continue
                    dy = base_dy + ndy
                    dx = base_dx + ndx
                    valid = (np.abs(dy) <= d) & (np.abs(dx) <= d)
                    if not valid.any():
                        continue
                    sad = kernel.sad_per_block(np.clip(dy, -d, d), np.clip(dx, -d, d))
                    improved = valid & (sad < best_sad)
                    best_sad = np.where(improved, sad, best_sad)
                    center_dy = np.where(improved, dy, center_dy)
                    center_dx = np.where(improved, dx, center_dx)
            step //= 2

        vectors = np.stack([-center_dx, -center_dy], axis=-1).astype(np.float64)
        return vectors, best_sad
