"""Sum-of-absolute-differences matching metric used by block matching."""

from __future__ import annotations

import numpy as np


def sum_of_absolute_differences(block_a: np.ndarray, block_b: np.ndarray) -> float:
    """Return the SAD between two equally-sized pixel blocks.

    Both blocks are interpreted as luma intensities in ``[0, 255]``.  The SAD
    is the paper's block-matching metric (Sec. 2.3) and also drives the
    motion-vector confidence of Eq. 2.
    """
    if block_a.shape != block_b.shape:
        raise ValueError(
            f"SAD requires equally shaped blocks, got {block_a.shape} vs {block_b.shape}"
        )
    return float(np.abs(block_a.astype(np.float64) - block_b.astype(np.float64)).sum())


def normalized_sad(block_a: np.ndarray, block_b: np.ndarray) -> float:
    """Return the SAD normalised to ``[0, 1]`` by the maximum possible value.

    The maximum possible SAD for an ``L x L`` block of 8-bit pixels is
    ``255 * L * L``; this mirrors the normalisation in Eq. 2.
    """
    sad = sum_of_absolute_differences(block_a, block_b)
    max_sad = 255.0 * block_a.size
    if max_sad == 0:
        return 0.0
    return sad / max_sad


def sad_map(current: np.ndarray, reference: np.ndarray, block_size: int) -> np.ndarray:
    """Per-macroblock SAD between two aligned frames.

    Frames whose dimensions are not multiples of ``block_size`` are
    edge-padded, matching the padding semantics of
    :class:`~repro.motion.block_matching.BlockMatcher` (partial blocks at the
    frame edge count as full blocks).  Returns an array of shape
    ``(rows, cols)`` where each entry is the SAD of the corresponding
    macroblock pair at zero displacement.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    if current.shape != reference.shape:
        raise ValueError("frames must have identical shapes")
    current = current.astype(np.float64)
    reference = reference.astype(np.float64)
    height, width = current.shape
    rows = -(-height // block_size)
    cols = -(-width // block_size)
    pad_h = rows * block_size - height
    pad_w = cols * block_size - width
    if pad_h or pad_w:
        pad = ((0, pad_h), (0, pad_w))
        current = np.pad(current, pad, mode="edge")
        reference = np.pad(reference, pad, mode="edge")
    diff = np.abs(current - reference)
    return diff.reshape(rows, block_size, cols, block_size).sum(axis=(1, 3))
