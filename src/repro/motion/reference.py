"""Scalar reference implementations of the block-matching searches.

These are the original per-macroblock Python loops that
:class:`~repro.motion.block_matching.BlockMatcher` used before the searches
were vectorized.  They are kept as the correctness oracle: the vectorized
engine must produce bit-identical motion vectors and SAD values, and the
property tests in ``tests/`` assert exactly that.  They are also what the
perf microbenchmarks measure the vectorized engine against.

Frames passed in must already be padded to a multiple of the block size
(callers go through :func:`scalar_estimate`, which pads the same way the
matcher does).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .motion_field import MacroblockGrid, MotionField


def _block_sad(
    padded_prev: np.ndarray,
    target: np.ndarray,
    y0: int,
    x0: int,
    dy: int,
    dx: int,
    pad: int,
) -> float:
    block_h, block_w = target.shape
    ref = padded_prev[
        pad + y0 + dy : pad + y0 + dy + block_h,
        pad + x0 + dx : pad + x0 + dx + block_w,
    ]
    return float(np.abs(target - ref).sum())


def tss_initial_step(search_range: int) -> int:
    """First step size of the three-step search for a given ``d``."""
    return max(1, 2 ** (max(0, int(math.ceil(math.log2(search_range + 1))) - 1)))


def scalar_three_step(
    current: np.ndarray,
    previous: np.ndarray,
    grid: MacroblockGrid,
    search_range: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-macroblock three-step search (the scalar oracle).

    Every step evaluates the eight neighbours of the step's *starting*
    center and then moves to the best strictly-improving candidate.  (The
    original implementation re-based candidates on the partially updated
    center inside the loop, which skipped reachable optima — e.g. a true
    ``(7, 7)`` displacement was never evaluated once the drifting center
    pushed it past the search range.)
    """
    block = grid.block_size
    d = search_range
    rows, cols = grid.rows, grid.cols

    padded_prev = np.pad(previous, d, mode="edge")
    vectors = np.zeros((rows, cols, 2), dtype=np.float64)
    sad_out = np.zeros((rows, cols), dtype=np.float64)

    initial_step = tss_initial_step(d)

    for r in range(rows):
        for c in range(cols):
            y0 = r * block
            x0 = c * block
            target = current[y0 : y0 + block, x0 : x0 + block]

            center_dy, center_dx = 0, 0
            best_sad = _block_sad(padded_prev, target, y0, x0, 0, 0, d)
            step = initial_step
            while step >= 1:
                base_dy, base_dx = center_dy, center_dx
                for ndy in (-step, 0, step):
                    for ndx in (-step, 0, step):
                        if ndy == 0 and ndx == 0:
                            continue
                        dy = base_dy + ndy
                        dx = base_dx + ndx
                        if abs(dy) > d or abs(dx) > d:
                            continue
                        sad = _block_sad(padded_prev, target, y0, x0, dy, dx, d)
                        if sad < best_sad:
                            best_sad = sad
                            center_dy, center_dx = dy, dx
                step //= 2

            vectors[r, c, 0] = -center_dx
            vectors[r, c, 1] = -center_dy
            sad_out[r, c] = best_sad

    return vectors, sad_out


def scalar_exhaustive(
    current: np.ndarray,
    previous: np.ndarray,
    grid: MacroblockGrid,
    search_range: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-macroblock exhaustive search (the scalar oracle).

    Candidates are visited nearest-to-zero first with strict-improvement
    updates, matching the tie-breaking of the vectorized search.
    """
    from .block_matching import BlockMatcher  # ordering helper, no cycle at runtime

    block = grid.block_size
    d = search_range
    rows, cols = grid.rows, grid.cols

    padded_prev = np.pad(previous, d, mode="edge")
    vectors = np.zeros((rows, cols, 2), dtype=np.float64)
    sad_out = np.zeros((rows, cols), dtype=np.float64)
    offsets = BlockMatcher._window_offsets(d)

    for r in range(rows):
        for c in range(cols):
            y0 = r * block
            x0 = c * block
            target = current[y0 : y0 + block, x0 : x0 + block]
            best_sad = math.inf
            best_dy, best_dx = 0, 0
            for dy, dx in offsets:
                sad = _block_sad(padded_prev, target, y0, x0, dy, dx, d)
                if sad < best_sad:
                    best_sad = sad
                    best_dy, best_dx = dy, dx
            vectors[r, c, 0] = -best_dx
            vectors[r, c, 1] = -best_dy
            sad_out[r, c] = best_sad

    return vectors, sad_out


def scalar_estimate(
    current: np.ndarray,
    previous: np.ndarray,
    block_size: int = 16,
    search_range: int = 7,
    three_step: bool = True,
) -> MotionField:
    """End-to-end scalar estimation with the matcher's padding semantics."""
    current = np.asarray(current, dtype=np.float64)
    previous = np.asarray(previous, dtype=np.float64)
    height, width = current.shape
    grid = MacroblockGrid(width, height, block_size)
    target_h = grid.rows * block_size
    target_w = grid.cols * block_size
    pad = ((0, target_h - height), (0, target_w - width))
    if pad != ((0, 0), (0, 0)):
        current = np.pad(current, pad, mode="edge")
        previous = np.pad(previous, pad, mode="edge")
    search = scalar_three_step if three_step else scalar_exhaustive
    vectors, sad = search(current, previous, grid, search_range)
    return MotionField(vectors, sad, grid, search_range=search_range)
