"""SoC component configurations (the paper's Table 1, plus calibration knobs).

Component power figures come from the paper's measurements and RTL results
(Sec. 5.1): the AR1335 sensor datasheet (180 mW at 1080p60), the Jetson TX2
ISP rail (153 mW + 2.5 % motion-estimation overhead), the 16 nm synthesis of
the 24x24 systolic NNX (651 mW, 1.58 mm^2, 1.77 TOPS/W) and of the motion
controller (2.2 mW, 0.035 mm^2), and the TX2 DDR rail (~230 mW at 1080p60
capture).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from ..isp.pipeline import ISPConfig
from ..isp.sensor import SensorConfig


@dataclass(frozen=True)
class NNXConfig:
    """The CNN accelerator (NNX): a TPU-like systolic array, mobile sized."""

    array_rows: int = 24
    array_cols: int = 24
    clock_hz: float = 1.0e9
    #: Unified, double-buffered weight/activation SRAM (Table 1: 1.5 MB).
    sram_bytes: int = 1_572_864
    dma_channels: int = 3
    axi_width_bits: int = 128
    #: Post-layout power and area in 16 nm (Sec. 5.1).
    active_power_w: float = 0.651
    idle_power_w: float = 0.003
    area_mm2: float = 1.58
    #: Calibration knob: multiplier on the activation traffic of layers whose
    #: working set spills out of the on-chip SRAM, capturing partial-sum and
    #: halo re-reads that the analytical tiling model does not enumerate.
    #: Calibrated so a YOLOv2 inference moves ~646 MB of DRAM traffic, the
    #: paper's measured per-I-frame figure (Sec. 6.1).
    activation_spill_factor: float = 3.6

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.array_rows * self.array_cols

    @property
    def peak_tops(self) -> float:
        """Peak throughput in Tera-ops/s (1 MAC = 2 ops)."""
        return 2.0 * self.peak_macs_per_cycle * self.clock_hz / 1e12

    @property
    def tops_per_watt(self) -> float:
        return self.peak_tops / self.active_power_w


@dataclass(frozen=True)
class MotionControllerConfig:
    """The Euphrates motion-controller IP (Sec. 4.3)."""

    simd_lanes: int = 4
    clock_hz: float = 100e6
    #: Local SRAM sized for one 1080p frame of 16x16-macroblock MVs (8 KB).
    sram_bytes: int = 8192
    dma_channels: int = 3
    axi_width_bits: int = 128
    active_power_w: float = 0.0022
    #: Power while the SIMD datapath idles between extrapolations.  The
    #: cost model splits MC energy into active-extrapolation time and idle
    #: sequencing time explicitly; the default matches the paper's
    #: always-on 2.2 mW (the MC masters the backend on I- and E-frames
    #: alike), and lowering it models a clock-gated datapath.
    idle_power_w: float = 0.0022
    area_mm2: float = 0.035
    #: Designed throughput target: 10 ROIs per frame at 60 FPS (Sec. 5.1).
    max_rois_per_frame: int = 10
    #: Fixed-point operations per extrapolated ROI (Sec. 3.2: ~10 K ops for a
    #: typical 100x50 ROI).
    ops_per_roi: float = 10_000.0


@dataclass(frozen=True)
class DRAMConfig:
    """Main-memory model (DRAMPower-style energy accounting)."""

    channels: int = 4
    interface_bits: int = 128
    capacity_gb: int = 8
    peak_bandwidth_gb_s: float = 25.6
    #: Standby + refresh power of the DRAM devices.
    background_power_w: float = 0.140
    #: Energy per byte transferred (activate + read/write + IO), calibrated so
    #: the 1080p60 capture-only workload lands near the 230 mW measured on the
    #: Jetson TX2 DDR rail.
    energy_per_byte_pj: float = 45.0


@dataclass(frozen=True)
class CPUConfig:
    """Host CPU model, used only when extrapolation runs in software."""

    #: Active power of the CPU cluster while awake (Sec. 2.1: >1 W is easy).
    active_power_w: float = 2.5
    #: Time to wake the cluster from idle and schedule the vision task.
    wake_latency_s: float = 0.0010
    #: Software motion-extrapolation time per frame (OpenCV-class code).
    extrapolation_time_s: float = 0.0025
    #: Residual power when the CPU is parked and the vision pipeline is
    #: task-autonomous.
    idle_power_w: float = 0.0


@dataclass(frozen=True)
class SoCConfig:
    """Aggregate configuration of the modeled vision SoC (Table 1)."""

    sensor: SensorConfig = field(default_factory=SensorConfig)
    isp: ISPConfig = field(default_factory=ISPConfig)
    nnx: NNXConfig = field(default_factory=NNXConfig)
    motion_controller: MotionControllerConfig = field(default_factory=MotionControllerConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    cpu: CPUConfig = field(default_factory=CPUConfig)
    #: Nominal capture setting (Table 1 / Sec. 5.1).
    frame_width: int = 1920
    frame_height: int = 1080
    frame_rate: float = 60.0

    @property
    def frame_period_s(self) -> float:
        return 1.0 / self.frame_rate

    @property
    def frontend_power_w(self) -> float:
        """Sensor + ISP power while capturing at the nominal setting."""
        return self.sensor.active_power_w + self.isp.total_power_w

    def table1_rows(self) -> List[Tuple[str, str]]:
        """The modeled-SoC summary table (paper Table 1)."""
        nnx = self.nnx
        mc = self.motion_controller
        dram = self.dram
        return [
            (
                "Camera Sensor",
                f"{self.sensor.name}, {self.frame_width//1}x{self.frame_height} "
                f"@ {self.frame_rate:.0f} FPS, {self.sensor.active_power_w*1e3:.0f} mW",
            ),
            (
                "ISP",
                f"{self.isp.clock_hz/1e6:.0f} MHz, 1080p @ {self.frame_rate:.0f} FPS, "
                f"{self.isp.total_power_w*1e3:.0f} mW",
            ),
            (
                "NN Accelerator (NNX)",
                f"{nnx.array_rows}x{nnx.array_cols} systolic MAC array, "
                f"{nnx.sram_bytes/1048576:.1f} MB double-buffered local SRAM, "
                f"{nnx.dma_channels}-channel {nnx.axi_width_bits}-bit AXI4 DMA, "
                f"{nnx.peak_tops:.2f} TOPS peak, {nnx.active_power_w*1e3:.0f} mW",
            ),
            (
                "Motion Controller (MC)",
                f"{mc.simd_lanes}-wide SIMD datapath, {mc.sram_bytes//1024} KB local SRAM, "
                f"{mc.dma_channels}-channel {mc.axi_width_bits}-bit AXI4 DMA, "
                f"{mc.active_power_w*1e3:.1f} mW",
            ),
            (
                "DRAM",
                f"{dram.channels}-channel LPDDR3, {dram.peak_bandwidth_gb_s:.1f} GB/s peak BW, "
                f"{dram.capacity_gb} GB",
            ),
        ]

    def summary(self) -> Dict[str, float]:
        """Headline derived numbers used in tests and reports."""
        return {
            "frontend_power_w": self.frontend_power_w,
            "nnx_peak_tops": self.nnx.peak_tops,
            "nnx_tops_per_watt": self.nnx.tops_per_watt,
            "mc_power_w": self.motion_controller.active_power_w,
            "frame_period_s": self.frame_period_s,
        }


# ----------------------------------------------------------------------
# Named configurations (the CLI's --soc-config surface)
# ----------------------------------------------------------------------
#: Capture settings selectable by name.  Component models (NNX, MC, DRAM,
#: CPU) stay at their Table 1 calibration; only the capture geometry and
#: frame rate vary — the knobs a product would actually configure.
SOC_CAPTURE_PRESETS: Dict[str, Tuple[int, int, float]] = {
    "default": (1920, 1080, 60.0),
    "1080p60": (1920, 1080, 60.0),
    "1080p30": (1920, 1080, 30.0),
    "720p60": (1280, 720, 60.0),
    "720p30": (1280, 720, 30.0),
    "4k30": (3840, 2160, 30.0),
}

#: ``WIDTHxHEIGHT@FPS`` spelling for captures not covered by a preset.
_CAPTURE_PATTERN = re.compile(r"^(\d+)x(\d+)@(\d+(?:\.\d+)?)$")


def resolve_soc_config(name: "str | SoCConfig") -> SoCConfig:
    """Build the :class:`SoCConfig` a ``--soc-config`` value names.

    Accepts a preset name (see :data:`SOC_CAPTURE_PRESETS`), an explicit
    ``WIDTHxHEIGHT@FPS`` capture spelling (e.g. ``1280x720@30``), or an
    already-built :class:`SoCConfig` (returned as-is, so per-stream
    heterogeneous configuration can pass either form); unknown names raise
    :class:`ValueError` listing the presets.
    """
    if isinstance(name, SoCConfig):
        return name
    key = name.strip().lower()
    if key in SOC_CAPTURE_PRESETS:
        width, height, fps = SOC_CAPTURE_PRESETS[key]
    else:
        match = _CAPTURE_PATTERN.match(key)
        if match is None:
            presets = ", ".join(sorted(SOC_CAPTURE_PRESETS))
            raise ValueError(
                f"unknown SoC config '{name}' (expected one of {presets}, "
                "or WIDTHxHEIGHT@FPS)"
            )
        width, height = int(match.group(1)), int(match.group(2))
        fps = float(match.group(3))
        if width <= 0 or height <= 0 or fps <= 0:
            raise ValueError(f"SoC config '{name}' must be positive")
    return replace(
        SoCConfig(), frame_width=width, frame_height=height, frame_rate=fps
    )


# ----------------------------------------------------------------------
# Tuned pipeline-spec presets (the autotuner's best-found configurations)
# ----------------------------------------------------------------------
#: Named :class:`~repro.core.spec.PipelineSpec` keyword bundles found
#: Pareto-optimal by the design-space autotuner (``python -m repro.harness
#: tune``).  Build one with ``PipelineSpec.from_preset(name)`` or select it
#: on any harness command with ``--spec-preset NAME``; EXPERIMENTS.md
#: records the frontier each preset was picked from and the exact command
#: that reproduces it.
TUNED_SPEC_PRESETS: Dict[str, Dict[str, object]] = {
    # The knee of the measured frontier: adaptive EW with a 4x4 sub-ROI
    # extrapolation grid cuts modeled energy/frame ~15% below the default
    # spec for ~4% tracking accuracy (motion-quality knobs are free — block
    # matching rides the ISP — so the adaptive controller holds the window
    # open longer before accuracy degrades).  See "Design-space autotuner"
    # in EXPERIMENTS.md for the frontier this point was selected from.
    "tuned-ci-energy": {
        "extrapolation_window": "adaptive",
        "sub_roi_grid": (4, 4),
    },
    # The accuracy end of the same frontier: finer motion blocks (8 px) and
    # the 4x4 sub-ROI grid push adaptive-EW tracking to every-frame-
    # inference accuracy at the default spec's energy — this point
    # dominates the default configuration outright.
    "tuned-ci-accuracy": {
        "extrapolation_window": "adaptive",
        "block_size": 8,
        "sub_roi_grid": (4, 4),
    },
}
