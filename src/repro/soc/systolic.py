"""Cycle-level performance model of the systolic-array CNN accelerator.

A SCALE-Sim-style analytical model of a weight-stationary systolic array
(the paper open-sourced SCALE-Sim alongside this design; Sec. 5.1).  Each
convolution is tiled so that ``array_rows`` elements of the reduction
dimension (``k*k*in_channels``) and ``array_cols`` output channels are
resident at a time; every output pixel then takes one cycle per tile, plus a
pipeline fill/drain overhead per tile.  Utilisation falls out of the tiling
arithmetic, so small layers (few channels) naturally use the array poorly —
which is why Tiny YOLO achieves a lower effective throughput than its
headline GOPS would suggest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..nn.layers import ConvLayer, FullyConnectedLayer, LayerSpec, PoolLayer
from ..nn.models import NetworkSpec
from .config import NNXConfig


@dataclass(frozen=True)
class LayerTiming:
    """Cycle estimate for one layer on the array."""

    layer_name: str
    cycles: int
    macs: int

    @property
    def utilization(self) -> float:
        """Achieved MAC utilisation relative to a perfectly packed array."""
        if self.cycles == 0:
            return 0.0
        return self.macs / self.cycles


class SystolicArrayModel:
    """Analytical latency model for a weight-stationary systolic array."""

    def __init__(self, config: NNXConfig | None = None) -> None:
        self.config = config or NNXConfig()

    # ------------------------------------------------------------------
    # Per-layer timing
    # ------------------------------------------------------------------
    def layer_timing(self, layer: LayerSpec) -> LayerTiming:
        """Cycle estimate for one layer."""
        rows = self.config.array_rows
        cols = self.config.array_cols
        fill_drain = rows + cols

        if isinstance(layer, ConvLayer):
            out_h, out_w, out_c = layer.output_shape
            reduction = layer.in_channels * layer.kernel_size * layer.kernel_size
            tiles_reduction = math.ceil(reduction / rows)
            tiles_channels = math.ceil(out_c / cols)
            output_pixels = out_h * out_w
            cycles = tiles_reduction * tiles_channels * (output_pixels + fill_drain)
            return LayerTiming(layer.name, cycles, layer.macs)

        if isinstance(layer, FullyConnectedLayer):
            # Fully connected layers stream their weight tiles back-to-back,
            # so the pipeline fill/drain is paid once per layer rather than
            # once per tile (candidate batches keep the array busy).
            tiles_reduction = math.ceil(layer.in_features / rows)
            tiles_channels = math.ceil(layer.out_features / cols)
            cycles = tiles_reduction * tiles_channels + fill_drain
            return LayerTiming(layer.name, cycles, layer.macs)

        if isinstance(layer, PoolLayer):
            # Pooling runs on the scalar/vector unit alongside the array; it
            # processes roughly one input element per lane per cycle.
            cycles = math.ceil(layer.ops / max(1, cols))
            return LayerTiming(layer.name, cycles, 0)

        raise TypeError(f"unsupported layer type: {type(layer).__name__}")

    # ------------------------------------------------------------------
    # Network-level timing
    # ------------------------------------------------------------------
    def network_timings(self, network: NetworkSpec) -> List[LayerTiming]:
        """Per-layer timings for a single evaluation of the network."""
        return [self.layer_timing(layer) for layer in network.layers]

    def cycles_per_evaluation(self, network: NetworkSpec) -> int:
        return sum(t.cycles for t in self.network_timings(network))

    def cycles_per_frame(self, network: NetworkSpec) -> int:
        return self.cycles_per_evaluation(network) * network.evaluations_per_frame

    def latency_per_frame_s(self, network: NetworkSpec) -> float:
        """Wall-clock time of one full-frame inference pass."""
        return self.cycles_per_frame(network) / self.config.clock_hz

    def utilization(self, network: NetworkSpec) -> float:
        """Average MAC-array utilisation across the network."""
        cycles = self.cycles_per_evaluation(network)
        if cycles == 0:
            return 0.0
        peak = cycles * self.config.peak_macs_per_cycle
        return network.macs_per_evaluation / peak

    def effective_tops(self, network: NetworkSpec) -> float:
        """Achieved throughput (ops/s) when running this network."""
        latency = self.latency_per_frame_s(network)
        if latency == 0:
            return 0.0
        return network.ops_per_frame / latency / 1e12

    def utilization_report(self, network: NetworkSpec) -> Dict[str, float]:
        """Per-layer utilisation, useful for the ablation benchmarks."""
        return {t.layer_name: t.utilization / self.config.peak_macs_per_cycle
                for t in self.network_timings(network)}
