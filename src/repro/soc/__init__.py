"""Mobile-SoC architecture model.

Models the vision subsystem of a commercial mobile SoC (Fig. 5 / Table 1 in
the paper): camera sensor, ISP, a systolic-array CNN accelerator (NNX), the
new Euphrates motion-controller IP, DRAM, and the host CPU.  The model is
calibrated with the paper's measured constants (Jetson TX2 power rails,
16 nm RTL synthesis results) and produces the per-frame energy, performance
and memory-traffic numbers behind Figs. 9b/9c and 10b.
"""

from .config import (
    CPUConfig,
    DRAMConfig,
    MotionControllerConfig,
    NNXConfig,
    SoCConfig,
)
from .systolic import SystolicArrayModel
from .nnx import NNXAccelerator
from .motion_controller import MotionControllerIP
from .cpu import CPUHost
from .dram import DRAMModel
from .soc import EnergyBreakdown, FrameSchedule, VisionSoC
from .frame_cost import (
    CapacityModel,
    CostMeter,
    FrameCost,
    QueueingEstimate,
    SharedSoCPool,
    StreamDemand,
)

__all__ = [
    "CapacityModel",
    "CostMeter",
    "FrameCost",
    "QueueingEstimate",
    "SharedSoCPool",
    "StreamDemand",
    "NNXConfig",
    "MotionControllerConfig",
    "DRAMConfig",
    "CPUConfig",
    "SoCConfig",
    "SystolicArrayModel",
    "NNXAccelerator",
    "MotionControllerIP",
    "CPUHost",
    "DRAMModel",
    "VisionSoC",
    "FrameSchedule",
    "EnergyBreakdown",
]
