"""Host-CPU model.

Euphrates' design keeps the CPU out of the per-frame loop entirely (task
autonomy, Sec. 2.1/4.1): the CPU only configures the pipeline once.  The CPU
model therefore matters for exactly one experiment — the EW-8@CPU bar of
Fig. 9b, which shows that hosting the extrapolation algorithm in software
negates most of the energy benefit because every E-frame must wake the CPU
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import CPUConfig


@dataclass(frozen=True)
class CPUExtrapolationCost:
    """Cost of performing one E-frame's extrapolation on the CPU."""

    latency_s: float
    energy_j: float


class CPUHost:
    """Energy model of the CPU cluster for software-hosted extrapolation."""

    def __init__(self, config: CPUConfig | None = None) -> None:
        self.config = config or CPUConfig()

    def extrapolation_cost(self) -> CPUExtrapolationCost:
        """Wake the cluster, run the extrapolation code, go back to idle."""
        active_time = self.config.wake_latency_s + self.config.extrapolation_time_s
        energy = self.config.active_power_w * active_time
        return CPUExtrapolationCost(latency_s=active_time, energy_j=energy)

    def idle_energy_j(self, duration_s: float) -> float:
        """Energy while the CPU is parked (zero in the autonomous design)."""
        return self.config.idle_power_w * duration_s
