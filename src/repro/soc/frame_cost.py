"""Per-frame SoC costing: one pricing core for analytic and measured energy.

Historically the hardware model was closed-form arithmetic over an aggregate
:class:`~repro.soc.soc.FrameSchedule` — fine for constant-EW sweeps, but the
live pipeline (:class:`~repro.core.session.EuphratesSession`, the
:class:`~repro.core.streaming.StreamMultiplexer`) never produced hardware
cost, so adaptive-EW and multi-camera energy were approximations.  This
module closes that gap with an event API:

* the pipeline emits one :class:`~repro.core.types.FrameTelemetry` record
  per processed frame (observe-only — outputs are untouched);
* :meth:`CostMeter.price` turns one event into a :class:`FrameCost` — the
  frame's backend latency, active-unit times, DRAM traffic and compute ops;
* :meth:`CostMeter.record` folds priced events into running totals, and
  :meth:`CostMeter.breakdown` finalises the fold into the same
  :class:`~repro.soc.soc.EnergyBreakdown` the analytic path reports.

``VisionSoC.evaluate*`` is itself implemented as a fold over synthetic
events (one per schedule bucket, with a count multiplier), so the analytic
constant-EW path and the measured path share exactly this costing core —
property-tested for equivalence in ``tests/test_frame_cost.py``.

Energy that is *rate*-like (frontend capture power, DRAM background, NNX/MC
idle leakage) can only be charged against an interval, so the fold carries
active times and settles those terms at :meth:`CostMeter.breakdown` using
``wall = max(backend compute time, frames x capture period)`` — the same
steady-state wall-clock rule the closed-form model always used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..core.types import FrameKind, FrameTelemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..nn.models import NetworkSpec
    from .soc import EnergyBreakdown, VisionSoC


@dataclass(frozen=True)
class FrameCost:
    """Hardware cost of processing one frame (marginal, per-event terms).

    Interval-shared terms (frontend power, DRAM background, idle leakage)
    are intentionally absent — they belong to the fold, not to any single
    frame; :meth:`CostMeter.breakdown` settles them over the wall clock.
    """

    kind: FrameKind
    #: Backend compute latency of this frame: a full NNX inference on
    #: I-frames, ROI extrapolation (MC or CPU host) on E-frames.
    latency_s: float
    #: Time the NNX spends active on this frame (0 on E-frames).
    nnx_active_s: float
    #: Time the MC datapath spends extrapolating (0 on I-frames and under
    #: the CPU host).
    mc_busy_s: float
    #: Energy charged to the CPU cluster (software-hosted extrapolation:
    #: wake the cluster, run, park again).
    cpu_energy_j: float
    #: DRAM traffic of this frame: frame-buffer in/out, MV metadata, plus
    #: the I-frame inference payload or the E-frame MC accesses.
    traffic_bytes: int
    #: Vision-algorithm compute (CNN ops or MC fixed-point ops).
    ops: float
    #: ISP motion-estimation ops actually spent (0 on the analytic path;
    #: informational — ISP energy is modeled as capture power x time).
    isp_motion_ops: float = 0.0


@dataclass(frozen=True)
class QueueingEstimate:
    """M/D/1-style queueing view of a metered backend.

    The wall-clock rule (``wall = max(compute, capture)``) says whether a
    stream keeps up *on average*; this adds the next-order effect — frames
    arriving at rate λ at a backend with (near-)deterministic service time
    D queue behind each other.  Mean waiting time uses the M/D/1
    Pollaczek–Khinchine form ``W = ρD / 2(1-ρ)``; at ρ >= 1 the queue has
    no steady state and the wait is reported as ``inf``.
    """

    arrival_rate_hz: float
    service_time_s: float
    utilization: float
    mean_wait_s: float

    @property
    def mean_latency_s(self) -> float:
        """Mean queueing wait plus one service time."""
        return self.mean_wait_s + self.service_time_s


def _md1_wait_s(utilization: float, service_time_s: float) -> float:
    if utilization >= 1.0:
        return math.inf
    if utilization <= 0.0:
        return 0.0
    return utilization * service_time_s / (2.0 * (1.0 - utilization))


class CostMeter:
    """Prices :class:`~repro.core.types.FrameTelemetry` events on one SoC.

    One meter = one stream (or one analytic schedule) on one network.
    ``extrapolation_on_cpu`` selects the E-frame host (the EW-N@CPU
    configurations of Fig. 9b).  ``assume_nominal_capture`` prices every
    event at the SoC's nominal frame size regardless of the pixels the
    event actually recorded — the measured experiment mode uses this so a
    small synthetic run is priced as if captured at the modeled 1080p60
    setting, making measured and analytic tables directly comparable (the
    measured part is then the I/E schedule and the true ROI counts).
    """

    def __init__(
        self,
        soc: "VisionSoC",
        network: "NetworkSpec",
        *,
        extrapolation_on_cpu: bool = False,
        assume_nominal_capture: bool = False,
        label: Optional[str] = None,
    ) -> None:
        self.soc = soc
        self.network = network
        self.extrapolation_on_cpu = extrapolation_on_cpu
        self.assume_nominal_capture = assume_nominal_capture
        self.label = label or network.name
        # Per-inference constants (they do not vary event to event).
        self._inference_latency_s = soc.nnx.inference_latency_s(network)
        self._input_bytes = soc.network_input_bytes(network)
        (
            self._inference_input_traffic,
            self._inference_weight_traffic,
            self._inference_activation_traffic,
        ) = soc.nnx.inference_traffic_parts(network, self._input_bytes)
        self._cpu_cost = soc.cpu.extrapolation_cost()
        # Fold state.
        self.frames = 0
        self.inference_frames = 0
        self.extrapolation_frames = 0
        self.backend_time_s = 0.0
        self.nnx_active_s = 0.0
        self.mc_busy_s = 0.0
        self.cpu_energy_j = 0.0
        self.traffic_bytes = 0
        self.ops = 0.0
        self.isp_motion_ops = 0.0

    # ------------------------------------------------------------------
    # Pricing (pure)
    # ------------------------------------------------------------------
    def _event_pixels(self, event: FrameTelemetry) -> Optional[int]:
        if self.assume_nominal_capture or event.pixels is None:
            return None  # the SoC's nominal capture setting
        return event.pixels

    def price(self, event: FrameTelemetry, batch_size: int = 1) -> FrameCost:
        """Price one frame event; pure (no fold-state update).

        ``batch_size`` is the size of the I-frame batch this inference was
        dispatched in: the NNX keeps weights resident across a batch, so
        the weight DRAM traffic is amortised over ``batch_size`` frames
        (the multiplexer's batched-inference pricing).  Ignored for
        E-frames.
        """
        soc = self.soc
        pixels = self._event_pixels(event)
        frontend_traffic = soc.frontend_traffic_bytes_per_frame(pixels)
        metadata_bytes = soc.motion_metadata_bytes_per_frame(pixels=pixels)

        if event.kind is FrameKind.INFERENCE:
            latency = self._inference_latency_s
            nnx_active = latency
            mc_busy = 0.0
            cpu_energy = 0.0
            payload = soc.nnx.batched_traffic_bytes(
                self._inference_input_traffic,
                self._inference_weight_traffic,
                self._inference_activation_traffic,
                batch_size,
            )
            ops = float(self.network.ops_per_frame)
        else:
            rois = max(0, int(event.rois))
            mc = soc.motion_controller
            if self.extrapolation_on_cpu:
                mc_busy = 0.0
                latency = self._cpu_cost.latency_s if rois else 0.0
                cpu_energy = self._cpu_cost.energy_j if rois else 0.0
            else:
                latency = mc.extrapolation_latency_s(rois)
                mc_busy = latency
                cpu_energy = 0.0
            payload = mc.extrapolation_traffic_bytes(metadata_bytes, rois)
            ops = mc.extrapolation_ops(rois)

        return FrameCost(
            kind=event.kind,
            latency_s=latency,
            nnx_active_s=nnx_active if event.kind is FrameKind.INFERENCE else 0.0,
            mc_busy_s=mc_busy,
            cpu_energy_j=cpu_energy,
            traffic_bytes=int(frontend_traffic + metadata_bytes + payload),
            ops=ops,
            isp_motion_ops=float(event.motion_ops),
        )

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def record(
        self, event: FrameTelemetry, count: int = 1, batch_size: int = 1
    ) -> FrameCost:
        """Price ``event`` and fold it into the totals ``count`` times.

        The analytic path records one event per schedule bucket with a
        large ``count``; the measured path records each frame's event with
        ``count=1`` — both land in identical fold state.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        cost = self.price(event, batch_size=batch_size)
        if count == 0:
            return cost
        self.frames += count
        if event.kind is FrameKind.INFERENCE:
            self.inference_frames += count
        else:
            self.extrapolation_frames += count
        self.backend_time_s += count * cost.latency_s
        self.nnx_active_s += count * cost.nnx_active_s
        self.mc_busy_s += count * cost.mc_busy_s
        self.cpu_energy_j += count * cost.cpu_energy_j
        self.traffic_bytes += count * cost.traffic_bytes
        self.ops += count * cost.ops
        self.isp_motion_ops += count * cost.isp_motion_ops
        return cost

    def record_all(self, events, batch_size: int = 1) -> int:
        """Fold an iterable of events; returns how many were recorded."""
        recorded = 0
        for event in events:
            self.record(event, batch_size=batch_size)
            recorded += 1
        return recorded

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    @property
    def wall_time_s(self) -> float:
        """Steady-state wall clock: compute-bound or capture-bound."""
        capture_time = self.frames * self.soc.config.frame_period_s
        return max(self.backend_time_s, capture_time)

    @property
    def inference_rate(self) -> float:
        return self.inference_frames / self.frames if self.frames else 0.0

    def breakdown(self, label: Optional[str] = None) -> "EnergyBreakdown":
        """Settle the interval-shared terms and return the energy summary.

        Non-destructive: the fold state is kept, so a live consumer can ask
        for a running breakdown while frames keep arriving.
        """
        from .soc import EnergyBreakdown

        if self.frames == 0:
            raise ValueError("no frames recorded; nothing to break down")
        soc = self.soc
        config = soc.config
        wall_time = self.wall_time_s
        fps = self.frames / wall_time

        frontend_energy = config.frontend_power_w * wall_time
        nnx = soc.nnx
        nnx_energy = nnx.config.active_power_w * self.nnx_active_s + nnx.idle_energy_j(
            max(0.0, wall_time - self.nnx_active_s)
        )
        mc = soc.motion_controller
        mc_energy = mc.config.active_power_w * self.mc_busy_s + mc.idle_energy_j(
            max(0.0, wall_time - self.mc_busy_s)
        )
        memory_energy = soc.dram.energy_j(self.traffic_bytes, wall_time)

        return EnergyBreakdown(
            label=label or self.label,
            num_frames=self.frames,
            fps=fps,
            inference_rate=self.inference_rate,
            frontend_energy_j=frontend_energy,
            memory_energy_j=memory_energy,
            backend_energy_j=nnx_energy + mc_energy,
            cpu_energy_j=self.cpu_energy_j,
            total_traffic_bytes=int(self.traffic_bytes),
            total_ops=self.ops,
            wall_time_s=wall_time,
        )

    def queueing_estimate(self) -> QueueingEstimate:
        """M/D/1 latency view of this stream's backend load.

        Arrivals are the capture rate actually sustained over the wall
        clock; the deterministic service time is the mean backend latency
        per frame.  Utilisation is ``backend_time / wall`` — at most 1 by
        the wall-clock rule, with 1 meaning compute-bound (no steady-state
        queue, infinite modeled wait).
        """
        if self.frames == 0:
            raise ValueError("no frames recorded; nothing to estimate")
        wall = self.wall_time_s
        arrival_rate = self.frames / wall
        service_time = self.backend_time_s / self.frames
        utilization = self.backend_time_s / wall
        return QueueingEstimate(
            arrival_rate_hz=arrival_rate,
            service_time_s=service_time,
            utilization=utilization,
            mean_wait_s=_md1_wait_s(utilization, service_time),
        )


class SharedSoCPool:
    """Exact aggregate energy for N streams sharing one SoC's static power.

    A lone :class:`CostMeter` prices its stream as if it owned the whole
    modeled SoC, so summing per-stream breakdowns counts the *static* terms
    (NNX idle, MC idle, DRAM background) once per stream — an upper bound
    for a shared-SoC deployment (the historical multiplexer aggregate).
    The pool settles those terms once, over the pool wall clock (streams
    run concurrently, so the interval is the *longest* per-stream wall):

    * dynamic terms (unit-active energy, DRAM traffic, CPU, per-camera
      sensor+ISP frontend) are summed per meter — each on the meter's own
      SoC, so heterogeneous per-stream ``soc_config`` prices correctly;
    * static terms are charged exactly once on the pool's shared SoC.

    The result is <= the per-stream sum always, and equal for one stream
    (both properties are tested).  Starfish (MobiSys'15) is the paper-side
    precedent for this many-apps-one-SoC accounting.
    """

    def __init__(self, soc: "VisionSoC", *, label: str = "shared-soc") -> None:
        self.soc = soc
        self.label = label
        self._meters: List[CostMeter] = []

    def open_meter(
        self,
        network: "NetworkSpec",
        *,
        soc: "VisionSoC | None" = None,
        extrapolation_on_cpu: bool = False,
        assume_nominal_capture: bool = False,
        label: Optional[str] = None,
    ) -> CostMeter:
        """A per-stream meter whose dynamic terms this pool will aggregate.

        ``soc`` overrides the modeled SoC for this stream's *dynamic*
        pricing (heterogeneous capture settings in one multiplexer); the
        shared static terms always settle on the pool's SoC.
        """
        meter = CostMeter(
            soc or self.soc,
            network,
            extrapolation_on_cpu=extrapolation_on_cpu,
            assume_nominal_capture=assume_nominal_capture,
            label=label,
        )
        self._meters.append(meter)
        return meter

    @property
    def meters(self) -> List[CostMeter]:
        return list(self._meters)

    def _metered(self) -> List[CostMeter]:
        return [meter for meter in self._meters if meter.frames]

    @property
    def frames(self) -> int:
        return sum(meter.frames for meter in self._meters)

    @property
    def wall_time_s(self) -> float:
        """Pool wall clock: streams run concurrently, so the longest wall."""
        return max((meter.wall_time_s for meter in self._metered()), default=0.0)

    def aggregate(self, label: Optional[str] = None) -> "EnergyBreakdown":
        """Exact shared-SoC energy summary across every metered stream."""
        from .soc import EnergyBreakdown

        metered = self._metered()
        if not metered:
            raise ValueError("no frames recorded; nothing to aggregate")
        wall = self.wall_time_s
        frames = sum(meter.frames for meter in metered)
        inference = sum(meter.inference_frames for meter in metered)

        # Per-camera terms: every stream has its own sensor + ISP capturing
        # for its own wall time, priced on its own (possibly heterogeneous)
        # capture setting.
        frontend = sum(
            meter.soc.config.frontend_power_w * meter.wall_time_s for meter in metered
        )
        # Dynamic backend terms per meter, on the meter's own SoC.
        nnx_active = sum(
            meter.soc.nnx.config.active_power_w * meter.nnx_active_s
            for meter in metered
        )
        mc_active = sum(
            meter.soc.motion_controller.config.active_power_w * meter.mc_busy_s
            for meter in metered
        )
        cpu = sum(meter.cpu_energy_j for meter in metered)
        # DRAM dynamic energy = energy_j over a zero-length interval (the
        # background term is interval-proportional and drops out).
        dram_dynamic = sum(
            meter.soc.dram.energy_j(meter.traffic_bytes, 0.0) for meter in metered
        )
        # Shared static terms, charged once on the pool SoC over the pool
        # wall: this is exactly what the per-stream sum over-counts.
        nnx_busy = sum(meter.nnx_active_s for meter in metered)
        mc_busy = sum(meter.mc_busy_s for meter in metered)
        nnx_static = self.soc.nnx.idle_energy_j(max(0.0, wall - nnx_busy))
        mc_static = self.soc.motion_controller.idle_energy_j(max(0.0, wall - mc_busy))
        dram_background = self.soc.dram.energy_j(0, wall)

        return EnergyBreakdown(
            label=label or self.label,
            num_frames=frames,
            fps=frames / wall if wall > 0 else 0.0,
            inference_rate=inference / frames,
            frontend_energy_j=frontend,
            memory_energy_j=dram_dynamic + dram_background,
            backend_energy_j=nnx_active + nnx_static + mc_active + mc_static,
            cpu_energy_j=cpu,
            total_traffic_bytes=int(sum(meter.traffic_bytes for meter in metered)),
            total_ops=sum(meter.ops for meter in metered),
            wall_time_s=wall,
        )

    def queueing_estimate(self) -> QueueingEstimate:
        """M/D/1 view of the shared backend serving every stream's frames.

        Aggregate arrivals over the pool wall against the combined backend
        demand.  Unlike a single meter, utilisation here can exceed 1 —
        N compute-bound streams genuinely overload one shared backend —
        which reports an infinite steady-state wait.
        """
        metered = self._metered()
        if not metered:
            raise ValueError("no frames recorded; nothing to estimate")
        wall = self.wall_time_s
        frames = sum(meter.frames for meter in metered)
        backend_time = sum(meter.backend_time_s for meter in metered)
        arrival_rate = frames / wall
        service_time = backend_time / frames
        utilization = backend_time / wall
        return QueueingEstimate(
            arrival_rate_hz=arrival_rate,
            service_time_s=service_time,
            utilization=utilization,
            mean_wait_s=_md1_wait_s(utilization, service_time),
        )


# ----------------------------------------------------------------------
# Admission control (serving front end)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamDemand:
    """Projected steady-state backend demand of one camera stream.

    What an admission decision knows *before* any frame arrives: the
    stream's capture rate, the extrapolation window its pipeline will run
    (1 I-frame per ``window_size`` frames), and the ROI count its E-frames
    are expected to move.
    """

    fps: float
    window_size: int = 1
    rois: int = 1

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError(f"fps must be positive, got {self.fps}")
        if self.window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {self.window_size}")
        if self.rois < 0:
            raise ValueError(f"rois must be >= 0, got {self.rois}")


class CapacityModel:
    """Backend capacity budget for stream admission, priced like the meter.

    Uses exactly the per-frame latency constants :class:`CostMeter` prices
    frames with (NNX inference latency for I-frames, MC/CPU extrapolation
    latency for E-frames), so the admission projection and the measured
    :meth:`SharedSoCPool.queueing_estimate` agree by construction.  A
    stream running extrapolation window *W* spends one inference plus
    ``W - 1`` extrapolations every *W* frames, hence a mean backend
    service time of ``(I + (W-1)·E) / W``; at ``fps`` frames per second it
    claims ``fps × service`` of the shared backend.  Admission is the
    M/D/1 steady-state criterion: the projected pool **rejects exactly
    when total utilisation reaches 1** (no steady state, infinite wait).
    """

    def __init__(
        self,
        soc: "VisionSoC",
        network: "NetworkSpec",
        *,
        extrapolation_on_cpu: bool = False,
    ) -> None:
        self.soc = soc
        self.network = network
        self.extrapolation_on_cpu = extrapolation_on_cpu
        self._inference_latency_s = soc.nnx.inference_latency_s(network)
        self._cpu_cost = soc.cpu.extrapolation_cost()

    # -- per-stream terms ----------------------------------------------
    def inference_latency_s(self) -> float:
        return self._inference_latency_s

    def extrapolation_latency_s(self, rois: int = 1) -> float:
        rois = max(0, int(rois))
        if self.extrapolation_on_cpu:
            return self._cpu_cost.latency_s if rois else 0.0
        return self.soc.motion_controller.extrapolation_latency_s(rois)

    def frame_service_time_s(self, window_size: int = 1, rois: int = 1) -> float:
        """Mean backend time per frame at extrapolation window ``W``."""
        window = max(1, int(window_size))
        i_time = self._inference_latency_s
        e_time = self.extrapolation_latency_s(rois)
        return (i_time + (window - 1) * e_time) / window

    def stream_utilization(self, demand: StreamDemand) -> float:
        """Fraction of the shared backend one stream claims."""
        return demand.fps * self.frame_service_time_s(
            demand.window_size, demand.rois
        )

    # -- pool projection -----------------------------------------------
    def projection(self, demands: Sequence[StreamDemand]) -> QueueingEstimate:
        """Projected M/D/1 estimate for a pool serving ``demands``.

        Mirrors :meth:`SharedSoCPool.queueing_estimate` before any frame
        exists: aggregate arrival rate, demand-weighted mean service time,
        summed utilisation (can exceed 1 → ``inf`` wait).
        """
        demands = list(demands)
        arrival_rate = sum(demand.fps for demand in demands)
        if arrival_rate <= 0:
            return QueueingEstimate(
                arrival_rate_hz=0.0,
                service_time_s=0.0,
                utilization=0.0,
                mean_wait_s=0.0,
            )
        utilization = sum(self.stream_utilization(demand) for demand in demands)
        # backend seconds per arriving frame == utilisation / arrival rate.
        service_time = utilization / arrival_rate
        return QueueingEstimate(
            arrival_rate_hz=arrival_rate,
            service_time_s=service_time,
            utilization=utilization,
            mean_wait_s=_md1_wait_s(utilization, service_time),
        )

    def admits(
        self,
        admitted: Sequence[StreamDemand],
        candidate: StreamDemand,
    ) -> bool:
        """Whether the pool stays in steady state with ``candidate`` added.

        Rejects **exactly** when the projected utilisation of the admitted
        set plus the candidate reaches 1 (the M/D/1 wait diverges).
        """
        projected = self.projection([*admitted, candidate])
        return projected.utilization < 1.0
