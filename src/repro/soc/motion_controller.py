"""The motion-controller IP (Sec. 4.3).

A micro-controller-class IP with a 4-wide SIMD datapath, an 8 KB MV SRAM and
a programmable sequencer.  It plays the master role in the vision backend:
it reads the MV metadata from the frame buffer, extrapolates ROIs on
E-frames, programs the NNX's memory-mapped registers for I-frames, receives
the inference results, and implements the adaptive-EW control loop — all
without interrupting the CPU (task autonomy).
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import MotionControllerConfig


#: Bytes written back per ROI result (coordinates, label, score, object id).
RESULT_BYTES_PER_ROI = 16


@dataclass(frozen=True)
class ExtrapolationCost:
    """Cost of extrapolating one E-frame on the motion controller."""

    latency_s: float
    energy_j: float
    dram_traffic_bytes: int
    ops: float


class MotionControllerIP:
    """Latency/energy/traffic model of the Euphrates motion controller."""

    def __init__(self, config: MotionControllerConfig | None = None) -> None:
        self.config = config or MotionControllerConfig()

    # ------------------------------------------------------------------
    # Compute model
    # ------------------------------------------------------------------
    def extrapolation_ops(self, num_rois: int) -> float:
        """Fixed-point operations to extrapolate ``num_rois`` ROIs.

        The paper estimates ~10 K 4-bit fixed-point operations per typical
        ROI (Sec. 3.2) — several orders of magnitude below a CNN inference.
        """
        return self.config.ops_per_roi * max(0, num_rois)

    def extrapolation_latency_s(self, num_rois: int) -> float:
        """Time to extrapolate all ROIs of one E-frame."""
        ops = self.extrapolation_ops(num_rois)
        ops_per_cycle = self.config.simd_lanes
        cycles = ops / max(1, ops_per_cycle)
        return cycles / self.config.clock_hz

    def supports_frame_rate(self, num_rois: int, frame_rate: float) -> bool:
        """Whether the IP keeps up with ``num_rois`` per frame at ``frame_rate``."""
        return self.extrapolation_latency_s(num_rois) <= 1.0 / frame_rate

    # ------------------------------------------------------------------
    # Energy and traffic
    # ------------------------------------------------------------------
    def frame_energy_j(self, frame_period_s: float) -> float:
        """Energy over one frame period at full active power.

        Legacy aggregate view (the IP sequences both I- and E-frames); the
        per-frame cost model now splits active extrapolation time from idle
        sequencing via :meth:`idle_energy_j`.  At 2.2 mW either view is a
        rounding error next to the NNX.
        """
        return self.config.active_power_w * frame_period_s

    def idle_energy_j(self, duration_s: float) -> float:
        """Energy while the sequencer waits between extrapolations."""
        return self.config.idle_power_w * duration_s

    def extrapolation_traffic_bytes(self, motion_metadata_bytes: int, num_rois: int) -> int:
        """DRAM traffic of one E-frame: MV metadata in, ROI results out.

        An empty scene (``num_rois == 0``) reads the metadata but writes no
        ROI results — true ROI counts are priced, with no phantom floor.
        """
        return int(motion_metadata_bytes + RESULT_BYTES_PER_ROI * max(0, num_rois))

    def extrapolation_cost(
        self, frame_period_s: float, motion_metadata_bytes: int, num_rois: int
    ) -> ExtrapolationCost:
        """Bundle the per-E-frame costs."""
        return ExtrapolationCost(
            latency_s=self.extrapolation_latency_s(num_rois),
            energy_j=self.frame_energy_j(frame_period_s),
            dram_traffic_bytes=self.extrapolation_traffic_bytes(motion_metadata_bytes, num_rois),
            ops=self.extrapolation_ops(num_rois),
        )
