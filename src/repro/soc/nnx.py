"""The CNN accelerator (NNX) IP: latency, energy and DRAM-traffic model.

The NNX is deliberately left unmodified by Euphrates (design principle 2 in
Sec. 4.1): the motion controller drives it through memory-mapped registers,
and all Euphrates-specific logic lives outside.  This module therefore only
models the cost of running a given network once, which the SoC-level model
multiplies by the I-frame rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..nn.layers import ConvLayer, FullyConnectedLayer
from ..nn.models import NetworkSpec
from .config import NNXConfig
from .systolic import SystolicArrayModel


@dataclass(frozen=True)
class InferenceCost:
    """Cost of one full-frame inference pass on the NNX."""

    network_name: str
    latency_s: float
    energy_j: float
    dram_traffic_bytes: int
    ops: int

    @property
    def achievable_fps(self) -> float:
        """Frame rate the NNX alone could sustain running back-to-back."""
        if self.latency_s == 0:
            return float("inf")
        return 1.0 / self.latency_s


class NNXAccelerator:
    """Performance/energy/traffic model of the CNN accelerator IP."""

    def __init__(self, config: NNXConfig | None = None) -> None:
        self.config = config or NNXConfig()
        self.array = SystolicArrayModel(self.config)

    # ------------------------------------------------------------------
    # Latency and energy
    # ------------------------------------------------------------------
    def inference_latency_s(self, network: NetworkSpec) -> float:
        """Latency of one full-frame inference (all evaluations)."""
        return self.array.latency_per_frame_s(network)

    def inference_energy_j(self, network: NetworkSpec) -> float:
        """Energy of one full-frame inference at the synthesised power."""
        return self.config.active_power_w * self.inference_latency_s(network)

    def idle_energy_j(self, duration_s: float) -> float:
        """Leakage energy while the accelerator is clock-gated."""
        return self.config.idle_power_w * duration_s

    # ------------------------------------------------------------------
    # DRAM traffic
    # ------------------------------------------------------------------
    def inference_dram_traffic_bytes(
        self, network: NetworkSpec, input_frame_bytes: int, batch_size: int = 1
    ) -> int:
        """Per-frame DRAM bytes moved by one full-frame inference.

        ``batch_size > 1`` models a weight-resident batch: the scheduler
        dispatched this inference back-to-back with ``batch_size - 1``
        inferences of the same network, so the weight stream is fetched
        once for the whole batch and amortised per frame.
        """
        input_traffic, weight_traffic, activation_traffic = self.inference_traffic_parts(
            network, input_frame_bytes
        )
        return self.batched_traffic_bytes(
            input_traffic, weight_traffic, activation_traffic, batch_size
        )

    def inference_traffic_parts(
        self, network: NetworkSpec, input_frame_bytes: int
    ) -> tuple:
        """The three DRAM-traffic components of one inference.

        Returns ``(input_bytes, weight_bytes, activation_bytes)``: the input
        frame pixels read from the frame buffer, the network weights
        streamed in (the 1.5 MB SRAM cannot hold a full mobile detector),
        and intermediate feature maps spilled to DRAM whenever a layer's
        working set exceeds the on-chip SRAM.  The spill factor is
        calibrated so a YOLOv2 I-frame moves ~646 MB, matching the paper's
        measurement (Sec. 6.1).
        """
        weight_traffic = network.weight_bytes
        activation_traffic = 0.0
        sram = self.config.sram_bytes
        cols = self.config.array_cols
        per_value = network.bytes_per_value
        input_h, input_w, input_c = network.input_shape
        previous_bytes = input_h * input_w * input_c * per_value
        for layer in network.layers:
            output_bytes = layer.output_activations * per_value
            if isinstance(layer, (ConvLayer, FullyConnectedLayer)):
                input_bytes = previous_bytes
                working_set = input_bytes + output_bytes + layer.parameters * per_value
                if working_set > sram:
                    # The input feature map is re-fetched once per
                    # output-channel tile, and the spilled traffic is scaled
                    # by the calibrated spill factor (partial sums, halo
                    # re-reads, double buffering).
                    rereads = math.ceil(layer.output_shape[2] / cols)
                    activation_traffic += (
                        output_bytes + input_bytes * rereads
                    ) * self.config.activation_spill_factor
                else:
                    # Fits on chip: written once, read back once by the next layer.
                    activation_traffic += 2.0 * output_bytes
            else:
                activation_traffic += output_bytes
            previous_bytes = output_bytes
        activation_traffic *= network.evaluations_per_frame
        return input_frame_bytes, weight_traffic, activation_traffic

    @staticmethod
    def batched_traffic_bytes(
        input_traffic: int,
        weight_traffic: int,
        activation_traffic: float,
        batch_size: int = 1,
    ) -> int:
        """Per-frame traffic with the weight stream amortised over a batch.

        Input pixels and spilled activations are inherently per-frame; only
        the weights stay resident in the double-buffered SRAM across a
        batch, so they are the only amortisable component.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return int(input_traffic + weight_traffic / batch_size + activation_traffic)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def inference_cost(self, network: NetworkSpec, input_frame_bytes: int) -> InferenceCost:
        """Bundle latency, energy and traffic for one inference pass."""
        return InferenceCost(
            network_name=network.name,
            latency_s=self.inference_latency_s(network),
            energy_j=self.inference_energy_j(network),
            dram_traffic_bytes=self.inference_dram_traffic_bytes(network, input_frame_bytes),
            ops=network.ops_per_frame,
        )
