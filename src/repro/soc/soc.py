"""SoC-level energy / performance model of the continuous-vision pipeline.

This is the top of the hardware-modeling stack: given a CNN workload and an
I-frame/E-frame schedule (produced either analytically or by running the
actual Euphrates pipeline on video), it computes the frame rate the vision
subsystem achieves and the energy split between the frontend (sensor + ISP),
main memory, and backend (NNX + motion controller, plus the CPU when
extrapolation is hosted in software).  These are exactly the quantities
plotted in Figs. 9b, 9c and 10b of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..core.types import FrameKind, FrameTelemetry, SequenceResult
from ..nn.models import NetworkSpec
from .config import SoCConfig
from .cpu import CPUHost
from .dram import DRAMModel
from .motion_controller import MotionControllerIP
from .nnx import NNXAccelerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .frame_cost import CostMeter


#: Bytes per pixel of the unpacked RAW Bayer data the sensor streams in.
RAW_BYTES_PER_PIXEL = 2
#: Bytes per pixel of the processed RGB/YUV frame the ISP commits to DRAM.
PROCESSED_BYTES_PER_PIXEL = 3


@dataclass(frozen=True)
class FrameSchedule:
    """How the frames of a workload are split between inference and extrapolation."""

    num_frames: int
    inference_frames: int
    extrapolation_frames: int
    #: Average number of tracked/detected ROIs per frame (drives MC cost).
    rois_per_frame: float = 1.0
    #: When True, the extrapolation algorithm runs on the CPU instead of the
    #: motion-controller IP (the EW-8@CPU configuration of Fig. 9b).
    extrapolation_on_cpu: bool = False

    def __post_init__(self) -> None:
        if self.num_frames <= 0:
            raise ValueError("num_frames must be positive")
        if self.inference_frames < 0 or self.extrapolation_frames < 0:
            raise ValueError("frame counts must be non-negative")
        if self.inference_frames + self.extrapolation_frames != self.num_frames:
            raise ValueError(
                "inference_frames + extrapolation_frames must equal num_frames"
            )

    @property
    def inference_rate(self) -> float:
        """Fraction of frames that trigger a CNN inference (Fig. 10b, right axis)."""
        return self.inference_frames / self.num_frames

    @classmethod
    def constant_ew(
        cls,
        extrapolation_window: int,
        num_frames: int = 6000,
        rois_per_frame: float = 1.0,
        extrapolation_on_cpu: bool = False,
    ) -> "FrameSchedule":
        """Schedule for constant-EW operation.

        ``extrapolation_window`` follows the paper's EW-N naming: EW-N means
        one inference every N frames (N-1 extrapolations in between), so
        EW-1 is the conventional inference-every-frame baseline.
        """
        if extrapolation_window < 1:
            raise ValueError("extrapolation_window must be >= 1")
        inference = (num_frames + extrapolation_window - 1) // extrapolation_window
        return cls(
            num_frames=num_frames,
            inference_frames=inference,
            extrapolation_frames=num_frames - inference,
            rois_per_frame=rois_per_frame,
            extrapolation_on_cpu=extrapolation_on_cpu,
        )

    @classmethod
    def from_results(
        cls,
        results: Sequence[SequenceResult],
        rois_per_frame: Optional[float] = None,
        extrapolation_on_cpu: bool = False,
    ) -> "FrameSchedule":
        """Build a schedule from actual pipeline runs (adaptive-EW case).

        ``rois_per_frame`` is the true mean detection count — an empty
        scene prices as zero motion-controller work (the old behaviour
        clamped it to at least 1.0, charging phantom MC cost).
        """
        num_frames = sum(len(r) for r in results)
        inference = sum(r.inference_count for r in results)
        if num_frames == 0:
            raise ValueError("results contain no frames")
        if rois_per_frame is None:
            total_rois = sum(len(f.detections) for r in results for f in r.frames)
            rois_per_frame = total_rois / num_frames
        return cls(
            num_frames=num_frames,
            inference_frames=inference,
            extrapolation_frames=num_frames - inference,
            rois_per_frame=rois_per_frame,
            extrapolation_on_cpu=extrapolation_on_cpu,
        )


@dataclass
class EnergyBreakdown:
    """Energy/performance summary of running a workload on the vision SoC."""

    label: str
    num_frames: int
    fps: float
    inference_rate: float
    frontend_energy_j: float
    memory_energy_j: float
    backend_energy_j: float
    cpu_energy_j: float
    total_traffic_bytes: int
    total_ops: float
    wall_time_s: float

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_energy_j(self) -> float:
        return (
            self.frontend_energy_j
            + self.memory_energy_j
            + self.backend_energy_j
            + self.cpu_energy_j
        )

    @property
    def energy_per_frame_j(self) -> float:
        return self.total_energy_j / self.num_frames

    @property
    def frontend_energy_per_frame_j(self) -> float:
        return self.frontend_energy_j / self.num_frames

    @property
    def memory_energy_per_frame_j(self) -> float:
        return self.memory_energy_j / self.num_frames

    @property
    def backend_energy_per_frame_j(self) -> float:
        return (self.backend_energy_j + self.cpu_energy_j) / self.num_frames

    @property
    def ops_per_frame(self) -> float:
        return self.total_ops / self.num_frames

    @property
    def traffic_per_frame_bytes(self) -> float:
        return self.total_traffic_bytes / self.num_frames

    def normalized_to(self, baseline: "EnergyBreakdown") -> float:
        """Per-frame energy relative to a baseline configuration."""
        return self.energy_per_frame_j / baseline.energy_per_frame_j

    def energy_saving_vs(self, baseline: "EnergyBreakdown") -> float:
        """Fractional per-frame energy saving relative to a baseline."""
        return 1.0 - self.normalized_to(baseline)


class VisionSoC:
    """The co-designed vision subsystem: frontend, backend, memory, host CPU."""

    def __init__(self, config: SoCConfig | None = None) -> None:
        self.config = config or SoCConfig()
        self.nnx = NNXAccelerator(self.config.nnx)
        self.motion_controller = MotionControllerIP(self.config.motion_controller)
        self.cpu = CPUHost(self.config.cpu)
        self.dram = DRAMModel(self.config.dram)

    # ------------------------------------------------------------------
    # Per-frame building blocks
    # ------------------------------------------------------------------
    @property
    def frame_pixels(self) -> int:
        return self.config.frame_width * self.config.frame_height

    def frontend_traffic_bytes_per_frame(self, pixels: Optional[int] = None) -> int:
        """DRAM traffic the frontend generates for every captured frame.

        RAW Bayer write by the sensor interface, RAW read by the ISP, the
        processed RGB/YUV frame write, and a preview/display read of the
        processed frame — roughly 21 MB per 1080p frame, which together with
        the backend's E-frame metadata accesses reproduces the paper's
        ~23 MB-per-E-frame figure.  ``pixels`` prices a measured frame of a
        different size; ``None`` uses the nominal capture setting.
        """
        pixels = self.frame_pixels if pixels is None else int(pixels)
        raw = pixels * RAW_BYTES_PER_PIXEL
        processed = pixels * PROCESSED_BYTES_PER_PIXEL
        return raw + raw + processed + processed

    def motion_metadata_bytes_per_frame(
        self, macroblock_size: int = 16, pixels: Optional[int] = None
    ) -> int:
        """Size of the per-frame MV metadata Euphrates appends (Sec. 4.2).

        With ``pixels`` the macroblock grid is approximated from the pixel
        count alone (measured frames report size, not geometry); the
        nominal path keeps the exact width/height grid.
        """
        if pixels is not None and pixels != self.frame_pixels:
            blocks = -(-int(pixels) // (macroblock_size * macroblock_size))
            return blocks * 2
        cols = -(-self.config.frame_width // macroblock_size)
        rows = -(-self.config.frame_height // macroblock_size)
        return rows * cols * 2  # 1 byte MV + 1 byte confidence per macroblock

    def network_input_bytes(self, network: NetworkSpec) -> int:
        """Bytes of pixel data one inference reads from the frame buffer."""
        height, width, channels = network.input_shape
        return height * width * channels * network.bytes_per_value

    # ------------------------------------------------------------------
    # Main evaluation entry point
    # ------------------------------------------------------------------
    def open_meter(
        self,
        network: NetworkSpec,
        *,
        extrapolation_on_cpu: bool = False,
        assume_nominal_capture: bool = False,
        label: Optional[str] = None,
    ) -> "CostMeter":
        """A fresh per-frame cost meter for ``network`` on this SoC.

        The meter is the single costing core: the live pipeline folds its
        recorded :class:`~repro.core.types.FrameTelemetry` events through
        it, and :meth:`evaluate` folds an aggregate schedule through the
        very same pricing.  ``extrapolation_on_cpu`` prices E-frames on
        the CPU instead of the motion controller (the EW-N@CPU
        configurations of Fig. 9b); ``assume_nominal_capture`` prices
        every event at the SoC's nominal capture setting so small
        synthetic runs produce tables comparable with the analytic model.
        Metering is observe-only: a meter never changes pipeline outputs.

        One meter prices one stream.  To meter N concurrent streams on a
        *shared* SoC — static power settled once, not N times — open the
        meters through :meth:`open_pool` /
        :meth:`~repro.soc.frame_cost.SharedSoCPool.open_meter` instead.
        """
        from .frame_cost import CostMeter

        return CostMeter(
            self,
            network,
            extrapolation_on_cpu=extrapolation_on_cpu,
            assume_nominal_capture=assume_nominal_capture,
            label=label,
        )

    def open_pool(self, *, label: str = "shared-soc"):
        """A :class:`~repro.soc.frame_cost.SharedSoCPool` on this SoC.

        N concurrent streams metered through one pool settle the static
        power terms (NNX idle, MC idle, DRAM background) exactly once —
        the exact shared-SoC aggregate, vs. the per-stream-sum upper bound.
        """
        from .frame_cost import SharedSoCPool

        return SharedSoCPool(self, label=label)

    def evaluate(
        self,
        network: NetworkSpec,
        schedule: FrameSchedule,
        label: Optional[str] = None,
    ) -> EnergyBreakdown:
        """Energy/performance of running ``schedule`` with ``network`` I-frames.

        Implemented as a fold of per-frame events over :meth:`open_meter`
        (one synthetic event per schedule bucket, with a count multiplier),
        so the analytic path prices frames exactly like the measured
        telemetry path does.
        """
        meter = self.open_meter(
            network, extrapolation_on_cpu=schedule.extrapolation_on_cpu
        )
        rois = int(round(schedule.rois_per_frame))
        if schedule.inference_frames:
            meter.record(
                FrameTelemetry(frame_index=0, kind=FrameKind.INFERENCE, rois=rois),
                count=schedule.inference_frames,
            )
        if schedule.extrapolation_frames:
            meter.record(
                FrameTelemetry(frame_index=0, kind=FrameKind.EXTRAPOLATION, rois=rois),
                count=schedule.extrapolation_frames,
            )
        return meter.breakdown(
            label or f"{network.name}/{schedule.inference_rate:.2f}"
        )

    # ------------------------------------------------------------------
    # Convenience wrappers used by the benchmark harness
    # ------------------------------------------------------------------
    def evaluate_constant_ew(
        self,
        network: NetworkSpec,
        extrapolation_window: int,
        num_frames: int = 6000,
        rois_per_frame: float = 1.0,
        extrapolation_on_cpu: bool = False,
        label: Optional[str] = None,
    ) -> EnergyBreakdown:
        """Evaluate a constant extrapolation window (EW-N) configuration."""
        schedule = FrameSchedule.constant_ew(
            extrapolation_window,
            num_frames=num_frames,
            rois_per_frame=rois_per_frame,
            extrapolation_on_cpu=extrapolation_on_cpu,
        )
        default_label = (
            network.name if extrapolation_window == 1 else f"EW-{extrapolation_window}"
        )
        return self.evaluate(network, schedule, label=label or default_label)

    def evaluate_results(
        self,
        network: NetworkSpec,
        results: Sequence[SequenceResult],
        extrapolation_on_cpu: bool = False,
        label: Optional[str] = None,
    ) -> EnergyBreakdown:
        """Evaluate the schedule actually produced by a pipeline run."""
        schedule = FrameSchedule.from_results(
            results, extrapolation_on_cpu=extrapolation_on_cpu
        )
        return self.evaluate(network, schedule, label=label or network.name)
