"""DRAM energy and bandwidth model (DRAMPower-style accounting).

The model splits DRAM energy into a background component (standby +
refresh, paid for as long as the system is on) and a dynamic component
proportional to the bytes transferred.  The constants are calibrated so
that the capture-only 1080p60 workload lands near the ~230 mW measured on
the Jetson TX2 DDR power rail (Sec. 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import DRAMConfig


@dataclass(frozen=True)
class DRAMUsage:
    """Energy/bandwidth summary for a simulated interval."""

    duration_s: float
    traffic_bytes: int
    background_energy_j: float
    dynamic_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.background_energy_j + self.dynamic_energy_j

    @property
    def average_bandwidth_gb_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.traffic_bytes / self.duration_s / 1e9

    @property
    def average_power_w(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.total_energy_j / self.duration_s


class DRAMModel:
    """Energy/bandwidth model of the LPDDR main memory."""

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()

    def energy_j(self, traffic_bytes: int, duration_s: float) -> float:
        """Total DRAM energy for ``traffic_bytes`` moved over ``duration_s``."""
        return self.usage(traffic_bytes, duration_s).total_energy_j

    def usage(self, traffic_bytes: int, duration_s: float) -> DRAMUsage:
        """Detailed usage breakdown for an interval."""
        if traffic_bytes < 0:
            raise ValueError("traffic_bytes must be non-negative")
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        background = self.config.background_power_w * duration_s
        dynamic = traffic_bytes * self.config.energy_per_byte_pj * 1e-12
        return DRAMUsage(
            duration_s=duration_s,
            traffic_bytes=traffic_bytes,
            background_energy_j=background,
            dynamic_energy_j=dynamic,
        )

    def bandwidth_utilization(self, traffic_bytes: int, duration_s: float) -> float:
        """Fraction of peak bandwidth consumed over the interval."""
        if duration_s <= 0:
            return 0.0
        achieved = traffic_bytes / duration_s / 1e9
        return achieved / self.config.peak_bandwidth_gb_s

    def exceeds_peak_bandwidth(self, traffic_bytes: int, duration_s: float) -> bool:
        """True when the requested traffic cannot physically fit the interval."""
        return self.bandwidth_utilization(traffic_bytes, duration_s) > 1.0
