"""Classical (non-CNN) vision baselines operating on real pixels.

These algorithms play two roles:

* they are genuine pixel-domain implementations, so the library's end-to-end
  path (sensor -> ISP -> backend) can be exercised without any simulated
  component, and
* they stand in for the hand-crafted approaches (Haar/HOG-class detectors,
  KCF-class trackers) that the paper uses as low-compute/low-accuracy
  reference points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy import ndimage

from ..core.geometry import BoundingBox
from ..core.types import Detection


@dataclass(frozen=True)
class NCCTrackerConfig:
    """Configuration of the template-matching tracker."""

    #: Search radius around the previous location, in pixels.
    search_radius: int = 12
    #: Template learning rate: 0 keeps the first-frame template forever,
    #: 1 replaces it every frame.
    template_update_rate: float = 0.05
    #: Step between evaluated candidate positions, in pixels.
    search_stride: int = 1


class NCCTemplateTracker:
    """Single-target tracker based on normalised cross-correlation.

    The tracker crops a template around the initial box, then on every frame
    searches a window around the previous position for the location with the
    highest normalised cross-correlation.  This is the classic pre-CNN
    tracking recipe and provides a real-pixel baseline for MDNet.
    """

    def __init__(self, config: NCCTrackerConfig | None = None) -> None:
        self.config = config or NCCTrackerConfig()
        self._template: Optional[np.ndarray] = None
        self._box: Optional[BoundingBox] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialize(self, frame: np.ndarray, box: BoundingBox) -> None:
        """Capture the template from the first frame's annotation."""
        self._box = box.round()
        self._template = self._crop(frame, self._box)

    @property
    def is_initialized(self) -> bool:
        return self._template is not None

    def track(self, frame: np.ndarray) -> Detection:
        """Locate the target in ``frame`` and return the new box."""
        if self._template is None or self._box is None:
            raise RuntimeError("tracker must be initialised before tracking")
        frame = np.asarray(frame, dtype=np.float64)
        best_score, best_offset = self._search(frame)
        new_box = self._box.translate(*best_offset)
        new_box = new_box.clip(frame.shape[1], frame.shape[0])
        if new_box.is_empty():
            new_box = self._box
        self._box = new_box

        rate = self.config.template_update_rate
        if rate > 0:
            fresh = self._crop(frame, self._box.round())
            if fresh.shape == self._template.shape:
                self._template = (1.0 - rate) * self._template + rate * fresh

        return Detection(box=new_box, label="target", score=float(best_score))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _search(self, frame: np.ndarray) -> Tuple[float, Tuple[float, float]]:
        assert self._box is not None and self._template is not None
        radius = self.config.search_radius
        stride = self.config.search_stride
        best_score = -2.0
        best_offset = (0.0, 0.0)
        for dy in range(-radius, radius + 1, stride):
            for dx in range(-radius, radius + 1, stride):
                candidate = self._box.translate(dx, dy).round()
                patch = self._crop(frame, candidate)
                if patch.shape != self._template.shape or patch.size == 0:
                    continue
                score = _normalised_cross_correlation(patch, self._template)
                if score > best_score:
                    best_score = score
                    best_offset = (float(dx), float(dy))
        return best_score, best_offset

    @staticmethod
    def _crop(frame: np.ndarray, box: BoundingBox) -> np.ndarray:
        height, width = frame.shape
        x0 = int(max(0, round(box.left)))
        y0 = int(max(0, round(box.top)))
        x1 = int(min(width, round(box.right)))
        y1 = int(min(height, round(box.bottom)))
        return np.asarray(frame[y0:y1, x0:x1], dtype=np.float64)


def _normalised_cross_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Zero-mean normalised cross-correlation between two equal-size patches."""
    a = a - a.mean()
    b = b - b.mean()
    denom = np.sqrt((a * a).sum() * (b * b).sum())
    if denom < 1e-9:
        return 0.0
    return float((a * b).sum() / denom)


@dataclass(frozen=True)
class FrameDifferenceConfig:
    """Configuration of the frame-difference detector."""

    #: Minimum per-pixel absolute difference to count as motion.
    difference_threshold: float = 18.0
    #: Minimum connected-component area (pixels) to report a detection.
    min_area: int = 40
    #: Number of binary dilation iterations used to close small gaps.
    dilation_iterations: int = 2


class FrameDifferenceDetector:
    """Detects moving objects by thresholding inter-frame differences.

    A stand-in for classic low-compute detectors: cheap, workable when the
    camera is static, and far less accurate than CNN detection — exactly the
    trade-off Fig. 1 illustrates.
    """

    def __init__(self, config: FrameDifferenceConfig | None = None) -> None:
        self.config = config or FrameDifferenceConfig()
        self._previous: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._previous = None

    def detect(self, frame: np.ndarray) -> List[Detection]:
        """Return moving-region detections for ``frame``."""
        frame = np.asarray(frame, dtype=np.float64)
        if self._previous is None or self._previous.shape != frame.shape:
            self._previous = frame
            return []
        difference = np.abs(frame - self._previous)
        self._previous = frame

        mask = difference > self.config.difference_threshold
        if self.config.dilation_iterations > 0:
            mask = ndimage.binary_dilation(mask, iterations=self.config.dilation_iterations)
        labelled, count = ndimage.label(mask)
        detections: List[Detection] = []
        for component in ndimage.find_objects(labelled):
            if component is None:
                continue
            y_slice, x_slice = component
            height = y_slice.stop - y_slice.start
            width = x_slice.stop - x_slice.start
            if height * width < self.config.min_area:
                continue
            box = BoundingBox(float(x_slice.start), float(y_slice.start), float(width), float(height))
            detections.append(Detection(box=box, label="moving_object", score=0.5))
        return detections
