"""Accuracy profiles for the simulated CNN backends.

Real trained networks are not available offline, so I-frame vision results
are produced by perturbing the synthetic ground truth with a per-network
noise model (see DESIGN.md, "Substitutions").  The profile parameters are
chosen so that the relative ordering and rough magnitudes match the
literature: YOLOv2 is an accurate detector, Tiny YOLO trades ~20 % accuracy
for 80 % less compute, and MDNet is a state-of-the-art tracker with ~95 %
success at IoU 0.5 on OTB-style data.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AccuracyProfile:
    """Noise model describing how a network's outputs deviate from truth.

    Attributes
    ----------
    name:
        Profile identifier (usually the network name).
    center_noise:
        Standard deviation of the predicted box-center error, as a fraction
        of the ground-truth box's mean side length.
    size_noise:
        Standard deviation of the multiplicative width/height error.
    miss_rate:
        Probability that a ground-truth object is not detected at all.
    false_positives_per_frame:
        Expected number of spurious detections per frame (detection only).
    score_mean, score_std:
        Distribution of confidence scores attached to true detections.
    """

    name: str
    center_noise: float
    size_noise: float
    miss_rate: float
    false_positives_per_frame: float = 0.0
    score_mean: float = 0.85
    score_std: float = 0.08

    def __post_init__(self) -> None:
        if not 0.0 <= self.miss_rate <= 1.0:
            raise ValueError("miss_rate must be within [0, 1]")
        if self.center_noise < 0 or self.size_noise < 0:
            raise ValueError("noise parameters must be non-negative")
        if self.false_positives_per_frame < 0:
            raise ValueError("false_positives_per_frame must be non-negative")


#: Full YOLOv2: accurate localisation, few misses, few false positives.
YOLO_V2_PROFILE = AccuracyProfile(
    name="YOLOv2",
    center_noise=0.035,
    size_noise=0.05,
    miss_rate=0.03,
    false_positives_per_frame=0.08,
    score_mean=0.88,
    score_std=0.06,
)

#: Tiny YOLO: the truncated network loses roughly 20 points of accuracy —
#: noisier boxes, many more misses and false positives.
TINY_YOLO_PROFILE = AccuracyProfile(
    name="TinyYOLO",
    center_noise=0.16,
    size_noise=0.22,
    miss_rate=0.22,
    false_positives_per_frame=0.55,
    score_mean=0.62,
    score_std=0.14,
)

#: MDNet: a near-oracle single-target tracker on OTB-style sequences.
MDNET_PROFILE = AccuracyProfile(
    name="MDNet",
    center_noise=0.03,
    size_noise=0.04,
    miss_rate=0.0,
    false_positives_per_frame=0.0,
    score_mean=0.93,
    score_std=0.04,
)

#: Lookup used by the pipeline factories.
PROFILES_BY_NETWORK = {
    "YOLOv2": YOLO_V2_PROFILE,
    "TinyYOLO": TINY_YOLO_PROFILE,
    "MDNet": MDNET_PROFILE,
}
