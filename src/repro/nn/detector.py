"""Simulated CNN object detector.

Produces per-frame detections by perturbing ground truth according to an
:class:`~repro.nn.profiles.AccuracyProfile`.  The perturbation is a
deterministic function of ``(seed, sequence, frame_index)`` so experiments
are reproducible and independent of evaluation order — crucial because the
Euphrates pipeline only invokes the detector on I-frames, whose positions
depend on the extrapolation-window schedule.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

import numpy as np

from ..core.geometry import BoundingBox
from ..core.types import Detection
from .models import NetworkSpec
from .profiles import AccuracyProfile


def _stable_rng(seed: int, sequence_name: str, frame_index: int) -> np.random.Generator:
    """Deterministic RNG derived from the experiment seed and frame identity."""
    digest = hashlib.sha256(
        f"{seed}:{sequence_name}:{frame_index}".encode("utf-8")
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


class SimulatedCNNDetector:
    """Multi-object detector with a calibrated accuracy profile."""

    def __init__(
        self,
        network: NetworkSpec,
        profile: AccuracyProfile,
        seed: int = 0,
        frame_width: int = 0,
        frame_height: int = 0,
    ) -> None:
        self.network = network
        self.profile = profile
        self.seed = seed
        self.frame_width = frame_width
        self.frame_height = frame_height
        #: Number of inference passes executed (for sanity checks in tests).
        self.inference_count = 0

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def detect(
        self,
        frame_index: int,
        truth: Sequence[Detection],
        sequence_name: str = "",
        frame_width: Optional[int] = None,
        frame_height: Optional[int] = None,
    ) -> List[Detection]:
        """Run one simulated inference pass and return detections."""
        rng = _stable_rng(self.seed, sequence_name or self.network.name, frame_index)
        width = frame_width or self.frame_width
        height = frame_height or self.frame_height
        profile = self.profile
        self.inference_count += 1

        detections: List[Detection] = []
        for item in truth:
            if rng.random() < profile.miss_rate:
                continue
            detections.append(self._perturb(item, rng, width, height))

        detections.extend(self._false_positives(rng, width, height))
        return detections

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _perturb(
        self, item: Detection, rng: np.random.Generator, width: int, height: int
    ) -> Detection:
        box = item.box
        scale = 0.5 * (box.width + box.height)
        cx = box.center.x + rng.normal(0.0, self.profile.center_noise * scale)
        cy = box.center.y + rng.normal(0.0, self.profile.center_noise * scale)
        new_w = box.width * max(0.2, 1.0 + rng.normal(0.0, self.profile.size_noise))
        new_h = box.height * max(0.2, 1.0 + rng.normal(0.0, self.profile.size_noise))
        noisy = BoundingBox.from_center(cx, cy, new_w, new_h)
        if width and height:
            noisy = noisy.clip(width, height)
        score = float(np.clip(rng.normal(self.profile.score_mean, self.profile.score_std), 0.05, 1.0))
        return Detection(
            box=noisy,
            label=item.label,
            score=score,
            object_id=item.object_id,
            extrapolated=False,
        )

    def _false_positives(
        self, rng: np.random.Generator, width: int, height: int
    ) -> List[Detection]:
        if self.profile.false_positives_per_frame <= 0 or not width or not height:
            return []
        count = rng.poisson(self.profile.false_positives_per_frame)
        extras: List[Detection] = []
        for _ in range(count):
            w = rng.uniform(0.08, 0.3) * width
            h = rng.uniform(0.08, 0.3) * height
            x = rng.uniform(0, max(1.0, width - w))
            y = rng.uniform(0, max(1.0, height - h))
            score = float(np.clip(rng.normal(0.35, 0.15), 0.05, 0.9))
            extras.append(
                Detection(
                    box=BoundingBox(x, y, w, h),
                    label="false_positive",
                    score=score,
                    object_id=None,
                    extrapolated=False,
                )
            )
        return extras
