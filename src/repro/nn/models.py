"""Network workload models for the paper's three CNNs and Fig. 1 references.

The layer lists follow the published architectures closely enough that the
per-frame compute (GOPS at 60 FPS) matches Table 2 of the paper:

* YOLOv2 (Darknet-19 backbone + detection head, 416x416 input) — ~3.4 TOPS,
* Tiny YOLO (9 conv layers, 416x416 input) — ~0.68 TOPS,
* MDNet (VGG-M conv1-3 + 3 FC layers over candidate crops) — ~0.64 TOPS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .layers import ConvLayer, FullyConnectedLayer, LayerSpec, PoolLayer


@dataclass(frozen=True)
class NetworkSpec:
    """A CNN workload: ordered layers plus per-frame evaluation count."""

    name: str
    input_shape: Tuple[int, int, int]
    layers: Tuple[LayerSpec, ...]
    #: How many times the whole network runs per video frame.  Detection
    #: networks run once; MDNet scores many candidate crops per frame.
    evaluations_per_frame: int = 1
    #: Bytes per weight/activation value (8-bit quantised inference).
    bytes_per_value: int = 1

    # ------------------------------------------------------------------
    # Aggregate compute
    # ------------------------------------------------------------------
    @property
    def macs_per_evaluation(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def ops_per_evaluation(self) -> int:
        return sum(layer.ops for layer in self.layers)

    @property
    def macs_per_frame(self) -> int:
        return self.macs_per_evaluation * self.evaluations_per_frame

    @property
    def ops_per_frame(self) -> int:
        return self.ops_per_evaluation * self.evaluations_per_frame

    def gops_at_fps(self, fps: float = 60.0) -> float:
        """Giga-operations per second required to sustain ``fps`` (Table 2)."""
        return self.ops_per_frame * fps / 1e9

    # ------------------------------------------------------------------
    # Aggregate storage / traffic
    # ------------------------------------------------------------------
    @property
    def total_parameters(self) -> int:
        return sum(layer.parameters for layer in self.layers)

    @property
    def weight_bytes(self) -> int:
        return self.total_parameters * self.bytes_per_value

    @property
    def activation_bytes_per_evaluation(self) -> int:
        return sum(layer.output_activations for layer in self.layers) * self.bytes_per_value

    def conv_layers(self) -> List[ConvLayer]:
        return [layer for layer in self.layers if isinstance(layer, ConvLayer)]

    def describe(self) -> str:
        """One-line summary used by examples and reports."""
        return (
            f"{self.name}: {len(self.layers)} layers, "
            f"{self.macs_per_frame / 1e9:.1f} GMACs/frame, "
            f"{self.gops_at_fps(60.0):.0f} GOPS @ 60 FPS"
        )


class _LayerChain:
    """Helper that threads feature-map shapes through a stack of layers."""

    def __init__(self, height: int, width: int, channels: int) -> None:
        self.height = height
        self.width = width
        self.channels = channels
        self.layers: List[LayerSpec] = []

    def conv(self, name: str, out_channels: int, kernel: int, stride: int = 1) -> "_LayerChain":
        layer = ConvLayer(
            name=name,
            input_height=self.height,
            input_width=self.width,
            in_channels=self.channels,
            out_channels=out_channels,
            kernel_size=kernel,
            stride=stride,
        )
        self.layers.append(layer)
        self.height, self.width, self.channels = layer.output_shape
        return self

    def pool(self, name: str, kernel: int = 2, stride: int = 2) -> "_LayerChain":
        layer = PoolLayer(
            name=name,
            input_height=self.height,
            input_width=self.width,
            channels=self.channels,
            kernel_size=kernel,
            stride=stride,
        )
        self.layers.append(layer)
        self.height, self.width, self.channels = layer.output_shape
        return self

    def fc(self, name: str, out_features: int) -> "_LayerChain":
        in_features = self.height * self.width * self.channels
        layer = FullyConnectedLayer(name=name, in_features=in_features, out_features=out_features)
        self.layers.append(layer)
        self.height, self.width, self.channels = 1, 1, out_features
        return self


def build_yolo_v2(input_height: int = 480, input_width: int = 640) -> NetworkSpec:
    """YOLOv2: Darknet-19 backbone plus the detection head.

    The default input is 480p (640x480), the smartphone-camera resolution the
    paper uses when quoting compute requirements (Fig. 1 / Table 2); at this
    size the network needs ~3.1 TOPS to sustain 60 FPS.
    """
    chain = _LayerChain(input_height, input_width, 3)
    chain.conv("conv1", 32, 3).pool("pool1")
    chain.conv("conv2", 64, 3).pool("pool2")
    chain.conv("conv3", 128, 3).conv("conv4", 64, 1).conv("conv5", 128, 3).pool("pool3")
    chain.conv("conv6", 256, 3).conv("conv7", 128, 1).conv("conv8", 256, 3).pool("pool4")
    chain.conv("conv9", 512, 3).conv("conv10", 256, 1).conv("conv11", 512, 3)
    chain.conv("conv12", 256, 1).conv("conv13", 512, 3).pool("pool5")
    chain.conv("conv14", 1024, 3).conv("conv15", 512, 1).conv("conv16", 1024, 3)
    chain.conv("conv17", 512, 1).conv("conv18", 1024, 3)
    # Detection head.
    chain.conv("conv19", 1024, 3).conv("conv20", 1024, 3)
    # Passthrough/reorg path is modelled as the extra input channels (64*4)
    # concatenated before conv21.
    chain.channels += 256
    chain.conv("conv21", 1024, 3)
    chain.conv("conv22", 425, 1)
    return NetworkSpec(
        name="YOLOv2",
        input_shape=(input_height, input_width, 3),
        layers=tuple(chain.layers),
    )


def build_tiny_yolo(input_height: int = 480, input_width: int = 640) -> NetworkSpec:
    """Tiny YOLO: the heavily truncated 9-conv variant of YOLOv2.

    At the paper's 480p input this works out to ~0.68 TOPS at 60 FPS
    (Table 2 lists 675 GOPS).
    """
    chain = _LayerChain(input_height, input_width, 3)
    chain.conv("conv1", 16, 3).pool("pool1")
    chain.conv("conv2", 32, 3).pool("pool2")
    chain.conv("conv3", 64, 3).pool("pool3")
    chain.conv("conv4", 128, 3).pool("pool4")
    chain.conv("conv5", 256, 3).pool("pool5")
    chain.conv("conv6", 512, 3).pool("pool6", kernel=2, stride=1)
    chain.conv("conv7", 1024, 3)
    chain.conv("conv8", 1024, 3)
    chain.conv("conv9", 425, 1)
    return NetworkSpec(
        name="TinyYOLO",
        input_shape=(input_height, input_width, 3),
        layers=tuple(chain.layers),
    )


def build_mdnet(crop_size: int = 107, candidates_per_frame: int = 23) -> NetworkSpec:
    """MDNet: VGG-M conv1-3 plus fc4-6, evaluated over candidate crops.

    The online tracker scores candidate windows around the previous target
    location every frame.  The paper does not state its candidate budget but
    reports 635 GOPS at 60 FPS (Table 2); with the VGG-M conv1-3 trunk that
    corresponds to roughly two dozen full crop evaluations per frame (a real
    deployment shares conv features across candidates), so the default
    ``candidates_per_frame`` is calibrated to that figure.
    """
    chain = _LayerChain(crop_size, crop_size, 3)
    chain.conv("conv1", 96, 7, stride=2).pool("pool1", kernel=3, stride=2)
    chain.conv("conv2", 256, 5, stride=2).pool("pool2", kernel=3, stride=2)
    chain.conv("conv3", 512, 3, stride=1)
    chain.fc("fc4", 512)
    chain.fc("fc5", 512)
    chain.fc("fc6", 2)
    return NetworkSpec(
        name="MDNet",
        input_shape=(crop_size, crop_size, 3),
        layers=tuple(chain.layers),
        evaluations_per_frame=candidates_per_frame,
    )


_NETWORK_BUILDERS = {
    "yolov2": build_yolo_v2,
    "tinyyolo": build_tiny_yolo,
    "mdnet": build_mdnet,
}


def get_network(name: str) -> NetworkSpec:
    """Look up a network by (case-insensitive) name."""
    key = name.lower().replace("_", "").replace("-", "").replace(" ", "")
    if key not in _NETWORK_BUILDERS:
        raise KeyError(f"unknown network '{name}'; available: {sorted(_NETWORK_BUILDERS)}")
    return _NETWORK_BUILDERS[key]()


# ----------------------------------------------------------------------
# Fig. 1 reference detectors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DetectorReference:
    """Accuracy/compute reference point for Fig. 1.

    ``tops_at_480p60`` is the compute requirement in Tera-ops/s to run the
    detector at 60 FPS on 480p video; ``accuracy_percent`` is the PASCAL VOC
    2007 mAP reported in the literature.  ``is_cnn`` distinguishes the
    hand-crafted approaches from the CNN family.
    """

    name: str
    tops_at_480p60: float
    accuracy_percent: float
    is_cnn: bool


FIG1_REFERENCE_DETECTORS: Tuple[DetectorReference, ...] = (
    DetectorReference("Haar", 0.0002, 22.0, is_cnn=False),
    DetectorReference("HOG", 0.001, 33.0, is_cnn=False),
    DetectorReference("Tiny YOLO", 0.48, 57.1, is_cnn=True),
    DetectorReference("SSD", 2.1, 74.3, is_cnn=True),
    DetectorReference("YOLOv2", 2.4, 76.8, is_cnn=True),
    DetectorReference("Faster R-CNN", 9.6, 73.2, is_cnn=True),
)

#: Peak compute available to a CNN accelerator within a ~1 W mobile power
#: budget (the horizontal line in Fig. 1).
MOBILE_TOPS_BUDGET = 1.0
