"""Neural-network substrate: workload models and vision-backend algorithms.

The paper never modifies the CNNs it uses (YOLOv2, Tiny YOLO, MDNet); it only
changes how often they run.  This package therefore provides two things:

* **Compute models** — layer-accurate MAC/weight/activation accounting for
  the three networks (Table 2) plus the hand-crafted/CNN reference points of
  Fig. 1, which feed the systolic-array performance model in
  :mod:`repro.soc`.
* **Functional backends** — a simulated CNN detector/tracker whose accuracy
  profile (localisation noise, miss rate, false positives) is calibrated per
  network, and real pixel-domain baselines (NCC template tracker,
  frame-difference detector) that exercise genuine image-processing code
  paths.  See DESIGN.md, "Substitutions".
"""

from .layers import ConvLayer, FullyConnectedLayer, LayerSpec, PoolLayer
from .models import (
    DetectorReference,
    NetworkSpec,
    FIG1_REFERENCE_DETECTORS,
    build_mdnet,
    build_tiny_yolo,
    build_yolo_v2,
    get_network,
)
from .profiles import AccuracyProfile, MDNET_PROFILE, TINY_YOLO_PROFILE, YOLO_V2_PROFILE
from .detector import SimulatedCNNDetector
from .tracker import SimulatedCNNTracker
from .classical import FrameDifferenceDetector, NCCTemplateTracker

__all__ = [
    "LayerSpec",
    "ConvLayer",
    "PoolLayer",
    "FullyConnectedLayer",
    "NetworkSpec",
    "DetectorReference",
    "FIG1_REFERENCE_DETECTORS",
    "build_yolo_v2",
    "build_tiny_yolo",
    "build_mdnet",
    "get_network",
    "AccuracyProfile",
    "YOLO_V2_PROFILE",
    "TINY_YOLO_PROFILE",
    "MDNET_PROFILE",
    "SimulatedCNNDetector",
    "SimulatedCNNTracker",
    "FrameDifferenceDetector",
    "NCCTemplateTracker",
]
