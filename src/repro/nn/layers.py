"""CNN layer descriptors with MAC / parameter / activation accounting.

These descriptors carry enough information for the systolic-array
performance model (:mod:`repro.soc.systolic`) to estimate cycles and for the
SoC memory model to estimate weight/activation traffic.  They intentionally
do not carry trained weights — the paper treats the CNNs as fixed black boxes
and only their cost matters to the co-design (see DESIGN.md).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Tuple


class LayerSpec(ABC):
    """Base class for a single network layer."""

    name: str

    @property
    @abstractmethod
    def output_shape(self) -> Tuple[int, int, int]:
        """Output feature-map shape as ``(height, width, channels)``."""

    @property
    @abstractmethod
    def macs(self) -> int:
        """Multiply-accumulate operations to evaluate the layer once."""

    @property
    @abstractmethod
    def parameters(self) -> int:
        """Number of trained parameters (weights + biases)."""

    @property
    def ops(self) -> int:
        """Arithmetic operations (1 MAC = 2 ops), the unit used in Table 2."""
        return 2 * self.macs

    @property
    def output_activations(self) -> int:
        """Number of output activation values."""
        height, width, channels = self.output_shape
        return height * width * channels


def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


@dataclass(frozen=True)
class ConvLayer(LayerSpec):
    """A 2-D convolution layer."""

    name: str
    input_height: int
    input_width: int
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int = 1
    padding: int | None = None  # None means "same" padding for stride 1

    def _padding(self) -> int:
        if self.padding is not None:
            return self.padding
        return self.kernel_size // 2

    @property
    def output_shape(self) -> Tuple[int, int, int]:
        pad = self._padding()
        out_h = _conv_output_size(self.input_height, self.kernel_size, self.stride, pad)
        out_w = _conv_output_size(self.input_width, self.kernel_size, self.stride, pad)
        return (out_h, out_w, self.out_channels)

    @property
    def macs(self) -> int:
        out_h, out_w, out_c = self.output_shape
        return out_h * out_w * out_c * self.in_channels * self.kernel_size * self.kernel_size

    @property
    def parameters(self) -> int:
        return (
            self.out_channels * self.in_channels * self.kernel_size * self.kernel_size
            + self.out_channels
        )


@dataclass(frozen=True)
class PoolLayer(LayerSpec):
    """A max/average pooling layer (negligible MACs, but shapes matter)."""

    name: str
    input_height: int
    input_width: int
    channels: int
    kernel_size: int = 2
    stride: int = 2

    @property
    def output_shape(self) -> Tuple[int, int, int]:
        out_h = max(1, math.ceil((self.input_height - self.kernel_size) / self.stride) + 1)
        out_w = max(1, math.ceil((self.input_width - self.kernel_size) / self.stride) + 1)
        return (out_h, out_w, self.channels)

    @property
    def macs(self) -> int:
        # Pooling performs comparisons, not MACs; we charge one op per input
        # element via `ops` below but zero MACs for the MAC array.
        return 0

    @property
    def ops(self) -> int:
        return self.input_height * self.input_width * self.channels

    @property
    def parameters(self) -> int:
        return 0


@dataclass(frozen=True)
class FullyConnectedLayer(LayerSpec):
    """A fully connected layer."""

    name: str
    in_features: int
    out_features: int

    @property
    def output_shape(self) -> Tuple[int, int, int]:
        return (1, 1, self.out_features)

    @property
    def macs(self) -> int:
        return self.in_features * self.out_features

    @property
    def parameters(self) -> int:
        return self.in_features * self.out_features + self.out_features
