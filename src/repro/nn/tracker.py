"""Simulated CNN single-target tracker (MDNet stand-in).

MDNet localises one target per frame by scoring candidate windows around the
previous estimate.  The simulated tracker reproduces its externally visible
behaviour: a near-truth box with small localisation noise while the target is
visible, and drift (it keeps reporting the last known location) while the
target is occluded or out of view — exactly the situations where a real
tracker loses the target.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.geometry import BoundingBox
from ..core.types import Detection
from .detector import _stable_rng
from .models import NetworkSpec
from .profiles import AccuracyProfile


class SimulatedCNNTracker:
    """Single-object tracker with an MDNet-like accuracy profile."""

    def __init__(
        self,
        network: NetworkSpec,
        profile: AccuracyProfile,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.profile = profile
        self.seed = seed
        self._last_box: Optional[BoundingBox] = None
        self._label = "target"
        self._object_id: Optional[int] = None
        self.inference_count = 0

    # ------------------------------------------------------------------
    # Tracker lifecycle
    # ------------------------------------------------------------------
    def initialize(self, first_box: BoundingBox, label: str = "target", object_id: int | None = 0) -> None:
        """Initialise the tracker with the first-frame annotation.

        Tracking benchmarks always provide the first frame's ground truth to
        the tracker (OTB/VOT protocol).
        """
        self._last_box = first_box
        self._label = label
        self._object_id = object_id

    @property
    def is_initialized(self) -> bool:
        return self._last_box is not None

    def track(
        self,
        frame_index: int,
        truth: Optional[BoundingBox],
        sequence_name: str = "",
    ) -> Detection:
        """Run one simulated inference pass and return the tracked box."""
        if self._last_box is None:
            raise RuntimeError("tracker must be initialised with the first-frame box")
        rng = _stable_rng(self.seed, sequence_name or self.network.name, frame_index)
        self.inference_count += 1

        if truth is None:
            # Target not visible: a real tracker drifts around its previous
            # estimate; we keep the previous box with a small random walk.
            drift_scale = 0.02 * (self._last_box.width + self._last_box.height)
            drifted = self._last_box.translate(
                rng.normal(0.0, drift_scale), rng.normal(0.0, drift_scale)
            )
            self._last_box = drifted
            score = 0.2
            return Detection(
                box=drifted,
                label=self._label,
                score=score,
                object_id=self._object_id,
                extrapolated=False,
            )

        scale = 0.5 * (truth.width + truth.height)
        cx = truth.center.x + rng.normal(0.0, self.profile.center_noise * scale)
        cy = truth.center.y + rng.normal(0.0, self.profile.center_noise * scale)
        new_w = truth.width * max(0.3, 1.0 + rng.normal(0.0, self.profile.size_noise))
        new_h = truth.height * max(0.3, 1.0 + rng.normal(0.0, self.profile.size_noise))
        box = BoundingBox.from_center(cx, cy, new_w, new_h)
        self._last_box = box
        score = float(np.clip(rng.normal(self.profile.score_mean, self.profile.score_std), 0.05, 1.0))
        return Detection(
            box=box,
            label=self._label,
            score=score,
            object_id=self._object_id,
            extrapolated=False,
        )
