"""Geometric primitives shared by the whole library.

The central type is :class:`BoundingBox`, the axis-aligned region of interest
(ROI) used by detectors, trackers and the Euphrates extrapolation engine.
Boxes use image-coordinate conventions: ``x`` grows to the right, ``y`` grows
downwards, and ``(x, y)`` is the top-left corner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Point:
    """A 2-D point in image coordinates (pixels)."""

    x: float
    y: float

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True)
class MotionVector:
    """A 2-D displacement, in pixels, between two frames.

    ``u`` is the horizontal component and ``v`` the vertical component,
    matching the paper's <u, v> notation (Sec. 2.3): an MV of <u, v> for a
    macroblock at <x, y> means the block content was at <x + u, y + v> in the
    previous frame, i.e. the block moved by <-u, -v> going forward in time.
    Throughout this library we store *forward* motion (previous -> current),
    so extrapolation simply adds the MV to the previous ROI.
    """

    u: float
    v: float

    def magnitude(self) -> float:
        """Euclidean length of the vector."""
        return math.hypot(self.u, self.v)

    def scale(self, factor: float) -> "MotionVector":
        """Return the vector multiplied by ``factor``."""
        return MotionVector(self.u * factor, self.v * factor)

    def __add__(self, other: "MotionVector") -> "MotionVector":
        return MotionVector(self.u + other.u, self.v + other.v)

    def __sub__(self, other: "MotionVector") -> "MotionVector":
        return MotionVector(self.u - other.u, self.v - other.v)

    def blend(self, other: "MotionVector", weight: float) -> "MotionVector":
        """Return ``weight * self + (1 - weight) * other``.

        This is the recursive filter of Eq. 3 in the paper where ``self`` is
        the current frame's average motion and ``other`` the previous frame's
        filtered motion.
        """
        return MotionVector(
            weight * self.u + (1.0 - weight) * other.u,
            weight * self.v + (1.0 - weight) * other.v,
        )

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(u, v)``."""
        return (self.u, self.v)


ZERO_MOTION = MotionVector(0.0, 0.0)


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned region of interest.

    Attributes
    ----------
    x, y:
        Top-left corner, in pixels.  Fractional values are allowed because
        extrapolated boxes accumulate sub-pixel motion.
    width, height:
        Box extent in pixels.  Always non-negative.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError(
                f"BoundingBox dimensions must be non-negative, got "
                f"width={self.width}, height={self.height}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_corners(cls, x0: float, y0: float, x1: float, y1: float) -> "BoundingBox":
        """Build a box from two opposite corners (any order)."""
        left, right = min(x0, x1), max(x0, x1)
        top, bottom = min(y0, y1), max(y0, y1)
        return cls(left, top, right - left, bottom - top)

    @classmethod
    def from_center(cls, cx: float, cy: float, width: float, height: float) -> "BoundingBox":
        """Build a box from its center point and extent."""
        return cls(cx - width / 2.0, cy - height / 2.0, width, height)

    @classmethod
    def union_of(cls, boxes: Sequence["BoundingBox"]) -> "BoundingBox":
        """Return the minimal box enclosing every box in ``boxes``.

        This is the operation the paper uses to merge extrapolated sub-ROIs
        back into a single ROI (Sec. 3.2, "Handle Deformations").
        """
        if not boxes:
            raise ValueError("union_of requires at least one box")
        left = min(b.left for b in boxes)
        top = min(b.top for b in boxes)
        right = max(b.right for b in boxes)
        bottom = max(b.bottom for b in boxes)
        return cls.from_corners(left, top, right, bottom)

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def left(self) -> float:
        return self.x

    @property
    def top(self) -> float:
        return self.y

    @property
    def right(self) -> float:
        return self.x + self.width

    @property
    def bottom(self) -> float:
        return self.y + self.height

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point(self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def aspect_ratio(self) -> float:
        """Width divided by height; ``inf`` for degenerate zero-height boxes."""
        if self.height == 0:
            return math.inf
        return self.width / self.height

    def is_empty(self) -> bool:
        """True when the box has zero area."""
        return self.width == 0 or self.height == 0

    # ------------------------------------------------------------------
    # Set-like operations
    # ------------------------------------------------------------------
    def intersection(self, other: "BoundingBox") -> "BoundingBox":
        """Return the overlapping region (possibly empty)."""
        left = max(self.left, other.left)
        top = max(self.top, other.top)
        right = min(self.right, other.right)
        bottom = min(self.bottom, other.bottom)
        if right <= left or bottom <= top:
            return BoundingBox(left, top, 0.0, 0.0)
        return BoundingBox(left, top, right - left, bottom - top)

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Return the minimal box covering both boxes."""
        return BoundingBox.union_of([self, other])

    def iou(self, other: "BoundingBox") -> float:
        """Intersection-over-Union with ``other``.

        This is the accuracy metric used throughout the paper's evaluation
        (Sec. 5.2).  Two empty boxes have IoU 0.
        """
        inter = self.intersection(other).area
        if inter == 0.0:
            return 0.0
        union_area = self.area + other.area - inter
        if union_area <= 0.0:
            return 0.0
        return inter / union_area

    def contains_point(self, point: Point) -> bool:
        """True when ``point`` lies inside (or on the boundary of) the box."""
        return self.left <= point.x <= self.right and self.top <= point.y <= self.bottom

    def contains_box(self, other: "BoundingBox") -> bool:
        """True when ``other`` lies completely inside this box."""
        return (
            other.left >= self.left
            and other.top >= self.top
            and other.right <= self.right
            and other.bottom <= self.bottom
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def translate(self, dx: float, dy: float) -> "BoundingBox":
        """Return the box shifted by ``(dx, dy)``."""
        return BoundingBox(self.x + dx, self.y + dy, self.width, self.height)

    def shift(self, motion: MotionVector) -> "BoundingBox":
        """Return the box shifted by a motion vector (R_F = R_{F-1} + MV_F)."""
        return self.translate(motion.u, motion.v)

    def scale(self, sx: float, sy: float | None = None) -> "BoundingBox":
        """Return the box scaled about its center by ``(sx, sy)``."""
        if sy is None:
            sy = sx
        c = self.center
        return BoundingBox.from_center(c.x, c.y, self.width * sx, self.height * sy)

    def inflate(self, margin: float) -> "BoundingBox":
        """Return the box grown by ``margin`` pixels on every side.

        A negative margin shrinks the box; dimensions are clamped at zero.
        """
        new_w = max(0.0, self.width + 2 * margin)
        new_h = max(0.0, self.height + 2 * margin)
        c = self.center
        return BoundingBox.from_center(c.x, c.y, new_w, new_h)

    def clip(self, frame_width: float, frame_height: float) -> "BoundingBox":
        """Return the box clipped to ``[0, frame_width] x [0, frame_height]``."""
        left = min(max(self.left, 0.0), frame_width)
        top = min(max(self.top, 0.0), frame_height)
        right = min(max(self.right, 0.0), frame_width)
        bottom = min(max(self.bottom, 0.0), frame_height)
        return BoundingBox.from_corners(left, top, right, bottom)

    def round(self) -> "BoundingBox":
        """Return the box with integer-rounded coordinates."""
        return BoundingBox(
            float(round(self.x)),
            float(round(self.y)),
            float(round(self.width)),
            float(round(self.height)),
        )

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------
    def split(self, rows: int, cols: int) -> List["BoundingBox"]:
        """Split the box into a ``rows x cols`` grid of sub-ROIs.

        Used by the deformation-aware extrapolation (Sec. 3.2): each sub-ROI
        is extrapolated independently and the results are merged with
        :meth:`union_of`.
        """
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        sub_w = self.width / cols
        sub_h = self.height / rows
        cells = []
        for r in range(rows):
            for c in range(cols):
                cells.append(
                    BoundingBox(self.x + c * sub_w, self.y + r * sub_h, sub_w, sub_h)
                )
        return cells

    def as_xywh(self) -> Tuple[float, float, float, float]:
        """Return ``(x, y, width, height)``."""
        return (self.x, self.y, self.width, self.height)

    def as_corners(self) -> Tuple[float, float, float, float]:
        """Return ``(left, top, right, bottom)``."""
        return (self.left, self.top, self.right, self.bottom)


def mean_iou(pairs: Iterable[Tuple[BoundingBox, BoundingBox]]) -> float:
    """Average IoU over an iterable of (predicted, ground-truth) pairs."""
    total = 0.0
    count = 0
    for predicted, truth in pairs:
        total += predicted.iou(truth)
        count += 1
    if count == 0:
        return 0.0
    return total / count
