"""Inference backends the Euphrates pipeline can drive on I-frames.

The motion controller treats the inference engine as a slave IP behind a
register interface (Sec. 4.3), so the pipeline is equally happy driving a
simulated CNN (the calibrated YOLOv2 / Tiny YOLO / MDNet stand-ins) or a real
pixel-domain algorithm (the NCC template tracker).  Each backend carries the
:class:`~repro.nn.models.NetworkSpec` describing its compute cost so the SoC
model can price its I-frames.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ..nn.classical import NCCTemplateTracker, NCCTrackerConfig
from ..nn.detector import SimulatedCNNDetector
from ..nn.models import NetworkSpec, build_mdnet, build_tiny_yolo, build_yolo_v2
from ..nn.profiles import (
    AccuracyProfile,
    MDNET_PROFILE,
    TINY_YOLO_PROFILE,
    YOLO_V2_PROFILE,
)
from ..nn.tracker import SimulatedCNNTracker
from .types import Detection

if TYPE_CHECKING:  # imported lazily to avoid a circular package import
    from ..video.sequence import VideoSequence


class InferenceBackend(ABC):
    """A vision algorithm the pipeline invokes on I-frames."""

    #: Compute model of the network this backend represents.
    network: NetworkSpec

    @property
    def name(self) -> str:
        return self.network.name

    @abstractmethod
    def start_sequence(self, sequence: "VideoSequence") -> None:
        """Reset per-sequence state (called before the first frame)."""

    @abstractmethod
    def infer(
        self, frame_index: int, luma: np.ndarray, sequence: "VideoSequence"
    ) -> List[Detection]:
        """Produce the vision result for one I-frame."""


class CNNDetectionBackend(InferenceBackend):
    """Multi-object detection with a simulated CNN (YOLOv2 / Tiny YOLO)."""

    def __init__(
        self,
        network: Optional[NetworkSpec] = None,
        profile: Optional[AccuracyProfile] = None,
        seed: int = 0,
    ) -> None:
        self.network = network or build_yolo_v2()
        self.profile = profile or YOLO_V2_PROFILE
        self.seed = seed
        self._detector: Optional[SimulatedCNNDetector] = None
        self._sequence_name = ""

    def start_sequence(self, sequence: "VideoSequence") -> None:
        self._sequence_name = sequence.name
        self._detector = SimulatedCNNDetector(
            network=self.network,
            profile=self.profile,
            seed=self.seed,
            frame_width=sequence.width,
            frame_height=sequence.height,
        )

    def infer(
        self, frame_index: int, luma: np.ndarray, sequence: "VideoSequence"
    ) -> List[Detection]:
        if self._detector is None:
            raise RuntimeError("start_sequence must be called before infer")
        truth = sequence.truth_detections(frame_index)
        return self._detector.detect(
            frame_index,
            truth,
            sequence_name=self._sequence_name,
            frame_width=sequence.width,
            frame_height=sequence.height,
        )


class CNNTrackingBackend(InferenceBackend):
    """Single-target tracking with a simulated CNN tracker (MDNet)."""

    def __init__(
        self,
        network: Optional[NetworkSpec] = None,
        profile: Optional[AccuracyProfile] = None,
        seed: int = 0,
    ) -> None:
        self.network = network or build_mdnet()
        self.profile = profile or MDNET_PROFILE
        self.seed = seed
        self._tracker: Optional[SimulatedCNNTracker] = None
        self._target_id: int = 0

    def start_sequence(self, sequence: "VideoSequence") -> None:
        self._tracker = SimulatedCNNTracker(
            network=self.network, profile=self.profile, seed=self.seed
        )
        self._target_id = sequence.primary_object_id
        first_box = sequence.truth_for(self._target_id)[0]
        if first_box is None:
            raise ValueError(
                f"sequence {sequence.name} has no first-frame annotation for tracking"
            )
        self._tracker.initialize(
            first_box,
            label=sequence.labels.get(self._target_id, "target"),
            object_id=self._target_id,
        )

    def infer(
        self, frame_index: int, luma: np.ndarray, sequence: "VideoSequence"
    ) -> List[Detection]:
        if self._tracker is None:
            raise RuntimeError("start_sequence must be called before infer")
        truth = sequence.truth_for(self._target_id)[frame_index]
        detection = self._tracker.track(frame_index, truth, sequence_name=sequence.name)
        return [detection]


class NCCTrackingBackend(InferenceBackend):
    """Single-target tracking on real pixels (classical NCC template search)."""

    def __init__(
        self,
        config: Optional[NCCTrackerConfig] = None,
        network: Optional[NetworkSpec] = None,
    ) -> None:
        # The classical tracker's compute is negligible; the associated
        # network spec is only used when someone prices it on the NNX, so
        # default to the smallest network we model.
        self.network = network or build_tiny_yolo()
        self._config = config
        self._tracker: Optional[NCCTemplateTracker] = None
        self._target_id: int = 0

    @property
    def name(self) -> str:
        return "NCC"

    def start_sequence(self, sequence: "VideoSequence") -> None:
        self._tracker = NCCTemplateTracker(self._config)
        self._target_id = sequence.primary_object_id
        first_box = sequence.truth_for(self._target_id)[0]
        if first_box is None:
            raise ValueError(
                f"sequence {sequence.name} has no first-frame annotation for tracking"
            )
        self._tracker.initialize(sequence.frame(0).astype(np.float64), first_box)

    def infer(
        self, frame_index: int, luma: np.ndarray, sequence: "VideoSequence"
    ) -> List[Detection]:
        if self._tracker is None:
            raise RuntimeError("start_sequence must be called before infer")
        detection = self._tracker.track(np.asarray(luma, dtype=np.float64))
        return [
            Detection(
                box=detection.box,
                label=detection.label,
                score=detection.score,
                object_id=self._target_id,
            )
        ]


def detection_backend_for(network_name: str, seed: int = 0) -> CNNDetectionBackend:
    """Factory for the detection backends used throughout the benchmarks."""
    key = network_name.lower().replace("_", "").replace("-", "").replace(" ", "")
    if key == "yolov2":
        return CNNDetectionBackend(build_yolo_v2(), YOLO_V2_PROFILE, seed=seed)
    if key == "tinyyolo":
        return CNNDetectionBackend(build_tiny_yolo(), TINY_YOLO_PROFILE, seed=seed)
    raise KeyError(f"unknown detection network '{network_name}'")


def tracking_backend_for(network_name: str = "mdnet", seed: int = 0) -> InferenceBackend:
    """Factory for the tracking backends used throughout the benchmarks."""
    key = network_name.lower().replace("_", "").replace("-", "").replace(" ", "")
    if key == "mdnet":
        return CNNTrackingBackend(build_mdnet(), MDNET_PROFILE, seed=seed)
    if key == "ncc":
        return NCCTrackingBackend()
    raise KeyError(f"unknown tracking backend '{network_name}'")
