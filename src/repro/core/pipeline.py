"""The end-to-end Euphrates continuous-vision pipeline.

For every captured frame the pipeline runs the ISP (which produces pixels
plus motion-vector metadata), asks the window controller whether this is an
I-frame or an E-frame, and then either drives the inference backend (I-frame)
or extrapolates the previous results with the motion controller's algorithm
(E-frame).  On I-frames it also measures how much the inference result
disagrees with what extrapolation would have predicted, which feeds the
adaptive-EW controller.

The same class serves both evaluation scenarios: object detection (multiple
ROIs per frame, YOLOv2-class backends) and visual tracking (a single target,
MDNet-class backends).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from ..isp.framebuffer import DEFAULT_FRAME_FORMAT, FixedPointFormat
from ..isp.pipeline import ISPConfig, ISPPipeline
from ..motion.block_matching import BlockMatchingConfig
from .backends import InferenceBackend
from .executor import ExecutionSpec, ShardedExecutor, ShardSchedule
from .session import (
    DISAGREEMENT_IOU_FLOOR,
    EuphratesSession,
    StreamOracle,
    measure_disagreement,
    prune_states,
)

if TYPE_CHECKING:  # imported lazily to avoid a circular package import
    from ..video.datasets import Dataset
    from ..video.sequence import VideoSequence
from .extrapolation import ExtrapolationConfig, MotionExtrapolator, RoiMotionState
from .types import DatasetRunResult, Detection, SequenceResult
from .window import ConstantWindowController, WindowController


@dataclass(frozen=True)
class EuphratesConfig:
    """Algorithm-level configuration of the pipeline."""

    block_matching: BlockMatchingConfig = BlockMatchingConfig()
    extrapolation: ExtrapolationConfig = ExtrapolationConfig()
    #: When False the ISP discards its motion vectors (conventional SoC);
    #: every frame then degenerates to an I-frame regardless of the window
    #: controller, which models the baseline system.
    expose_motion_vectors: bool = True
    #: Fixed-point lattice of the ISP datapath (``None`` = unquantized
    #: float64).  A *vision* knob, not just a cost knob: quantization
    #: changes the committed frames and therefore the motion fields.
    frame_format: "FixedPointFormat | None" = DEFAULT_FRAME_FORMAT


class EuphratesPipeline:
    """Motion-extrapolated continuous vision over a video sequence."""

    def __init__(
        self,
        backend: InferenceBackend,
        window_controller: Optional[WindowController] = None,
        config: Optional[EuphratesConfig] = None,
    ) -> None:
        self.backend = backend
        self.window_controller = window_controller or ConstantWindowController(2)
        self.config = config or EuphratesConfig()
        #: How dataset/stream work is executed (worker count, frame
        #: transport); :meth:`PipelineSpec.build` installs the spec's knobs
        #: here.  Never affects outputs, only where sessions run.
        self.execution = ExecutionSpec()
        #: Total extrapolation operations across all processed frames (every
        #: session this pipeline opened contributes at finish).
        self.total_extrapolation_ops = 0.0
        # Reusable per-pipeline engine instances: constructing the ISP and
        # the extrapolator per sequence is pure overhead once a dataset has
        # hundreds of sequences, so both are built lazily and reset/retargeted
        # at each sequence start.
        self._isp: Optional[ISPPipeline] = None
        self._extrapolator: Optional[MotionExtrapolator] = None
        # The engine-sharing session currently holding the cached engines
        # (None when they are free).  Only one such session may be open at a
        # time; standalone sessions are unrestricted.
        self._engine_lease: Optional[EuphratesSession] = None

    def __getstate__(self):
        # The cached ISP/extrapolator are lazily rebuilt and carry large
        # frame buffers; shipping them to worker processes would bloat every
        # pickled run_dataset job for state the worker resets anyway.
        state = self.__dict__.copy()
        state["_isp"] = None
        state["_extrapolator"] = None
        state["_engine_lease"] = None
        return state

    # ------------------------------------------------------------------
    # Engine reuse
    # ------------------------------------------------------------------
    def _acquire_isp(self) -> ISPPipeline:
        if self._isp is None:
            self._isp = ISPPipeline(self._isp_config())
        else:
            self._isp.reset()
        return self._isp

    def _isp_config(self) -> ISPConfig:
        return ISPConfig(
            expose_motion_vectors=self.config.expose_motion_vectors,
            block_matching=self.config.block_matching,
            frame_format=self.config.frame_format,
        )

    def _acquire_extrapolator(self, width: int, height: int) -> MotionExtrapolator:
        if self._extrapolator is None:
            self._extrapolator = MotionExtrapolator(
                self.config.extrapolation, frame_width=width, frame_height=height
            )
        else:
            self._extrapolator.configure_frame(width, height)
        return self._extrapolator

    # ------------------------------------------------------------------
    # Sessions: the incremental frame-at-a-time API
    # ------------------------------------------------------------------
    def open_session(
        self,
        width: Optional[int] = None,
        height: Optional[int] = None,
        *,
        source: "VideoSequence | None" = None,
        name: Optional[str] = None,
        oracle_name: Optional[str] = None,
        oracle_labels: Optional[Dict[int, str]] = None,
        backend: Optional[InferenceBackend] = None,
        window_controller: Optional[WindowController] = None,
        share_engines: bool = False,
    ) -> EuphratesSession:
        """Open an incremental session; see :class:`EuphratesSession`.

        Sessions come in two flavours:

        * ``source=sequence`` binds the session to an annotated
          :class:`~repro.video.sequence.VideoSequence` whose ground truth
          feeds the simulated backends; frames are then submitted one at a
          time and must match the sequence's frames for the results to mean
          anything.
        * ``open_session(width, height)`` opens a dimension-bound live
          stream: per-frame ground truth is handed to
          :meth:`EuphratesSession.submit` and collected in a
          :class:`~repro.core.session.StreamOracle`.  ``oracle_name`` (and
          optionally ``oracle_labels``) lets the oracle present a different
          identity than the session — worker shards use this to replay a
          named sequence frame-by-frame so simulated backends seeded by
          sequence name produce bit-identical outputs.

        By default every session gets its *own* ISP, extrapolator, backend
        copy and window-controller clone, so any number of sessions can run
        concurrently (this is what :class:`~repro.core.streaming.StreamMultiplexer`
        builds on).  ``share_engines=True`` instead borrows the pipeline's
        cached engines, its backend and its controller — the batch
        :meth:`run` path — and therefore allows only one open session at a
        time.
        """
        if source is not None:
            if oracle_name is not None or oracle_labels is not None:
                raise ValueError(
                    "oracle_name/oracle_labels apply to live (width/height) "
                    "sessions only; a source sequence carries its own identity"
                )
            width = source.width
            height = source.height
            name = name or source.name
        else:
            if width is None or height is None:
                raise ValueError("open_session needs either a source sequence or width and height")
            name = name or "stream"

        oracle: Optional[StreamOracle] = None
        backend_source: object = source
        if source is None:
            oracle = StreamOracle(
                oracle_name or name, width, height, labels=oracle_labels
            )
            backend_source = oracle

        if share_engines:
            if source is None:
                raise ValueError("engine-sharing sessions require a source sequence")
            if backend is not None or window_controller is not None:
                raise ValueError(
                    "engine-sharing sessions use the pipeline's backend and controller"
                )
            if self._engine_lease is not None and not self._engine_lease.closed:
                raise RuntimeError(
                    "the pipeline's cached engines are already leased to session "
                    f"'{self._engine_lease.name}'; finish() it first or open a "
                    "standalone session"
                )
            isp = self._acquire_isp()
            extrapolator = self._acquire_extrapolator(width, height)
            session_backend = self.backend
            controller = self.window_controller
        else:
            if backend is self.backend:
                raise ValueError(
                    "backend is this pipeline's own engine; standalone "
                    "sessions (and shards) must never share a live backend — "
                    "open with share_engines=True or pass a copy"
                )
            isp = ISPPipeline(self._isp_config())
            extrapolator = MotionExtrapolator(
                self.config.extrapolation, frame_width=width, frame_height=height
            )
            session_backend = backend if backend is not None else copy.deepcopy(self.backend)
            controller = (
                window_controller
                if window_controller is not None
                else self.window_controller.clone()
            )

        session = EuphratesSession(
            name=name,
            isp=isp,
            extrapolator=extrapolator,
            backend=session_backend,
            window_controller=controller,
            source=backend_source,
            oracle=oracle,
            on_finish=self._session_finished,
            # Bound here so subclasses that override the feedback metric or
            # the pruning policy keep affecting session-backed runs.
            disagreement=self._disagreement,
            prune=self._prune_states,
        )
        if source is not None:
            # Start the backend *before* taking the engine lease: a failing
            # start (e.g. a sequence with no first-frame annotation) must
            # not leave the pipeline holding a lease for a dead session.
            session_backend.start_sequence(source)
        if share_engines:
            self._engine_lease = session
        return session

    def _session_finished(self, session: EuphratesSession) -> None:
        self.total_extrapolation_ops += session.stats.extrapolation_ops
        if self._engine_lease is session:
            self._engine_lease = None

    # ------------------------------------------------------------------
    # Main loop — a thin wrapper over the session API
    # ------------------------------------------------------------------
    def run(self, sequence: "VideoSequence") -> SequenceResult:
        """Process one video sequence and return per-frame results.

        Implemented as ``open_session`` + one ``submit`` per frame +
        ``finish`` — bit-identical to submitting the frames yourself.
        """
        session = self.open_session(source=sequence, share_engines=True)
        try:
            for _, frame in sequence.iter_frames():
                session.submit(frame)
            return session.finish()
        finally:
            # A mid-sequence error (backend failure, bad frame, interrupt)
            # must still release the engine lease, or every future run()
            # on this pipeline would refuse with "engines already leased".
            if not session.closed:
                session.finish()

    @staticmethod
    def _prune_states(states: Dict[int, RoiMotionState], detections: Sequence[Detection]) -> None:
        """Compatibility alias for :func:`repro.core.session.prune_states`."""
        prune_states(states, detections)

    def run_dataset(
        self,
        dataset: "Dataset | Iterable[VideoSequence]",
        max_workers: Optional[int] = None,
        *,
        transport: Optional[str] = None,
    ) -> List[SequenceResult]:
        """Process every sequence of a dataset.

        ``max_workers`` and ``transport`` default to this pipeline's
        :class:`~repro.core.executor.ExecutionSpec` (``pipeline.execution``,
        installed by ``PipelineSpec.build``).  With more than one worker the
        sequences run on a :class:`~repro.core.executor.ShardedExecutor`:
        each shard worker owns its sessions end-to-end and frames cross the
        process boundary over the shared-memory transport, never pickled.
        ``transport="pickle"`` selects the legacy ``ProcessPoolExecutor``
        fallback instead (sequences rebuilt in-worker from their generator
        configs where available).

        Results come back in dataset order, with per-frame telemetry, and
        extrapolation-op totals are aggregated — bit-identical to the serial
        path for constant windows (property-tested).  Adaptive-window
        feedback stays local to each parallel worker: every sequence adapts
        within itself but starts from a fresh controller clone, whereas the
        serial path chains controller state from one sequence into the next
        — so adaptive-mode results can differ between serial and parallel
        runs (constant-window results are identical).
        """
        sequences = dataset.sequences if hasattr(dataset, "sequences") else list(dataset)
        execution = self.execution
        if max_workers is None:
            max_workers = execution.workers
        if transport is None:
            transport = execution.transport
        if max_workers is None or max_workers <= 1 or len(sequences) <= 1:
            return [self.run(sequence) for sequence in sequences]

        workers = min(max_workers, len(sequences))
        if transport == "pickle":
            return self._run_dataset_legacy(sequences, workers)
        executor = ShardedExecutor(
            self,
            workers=workers,
            transport=transport,
            schedule=ShardSchedule(keep_telemetry=True),
        )
        try:
            outcomes = executor.run_sequences(sequences)
        finally:
            executor.close()
        return [result for result, _stats in outcomes]

    def _run_dataset_legacy(
        self, sequences: List["VideoSequence"], workers: int
    ) -> List[SequenceResult]:
        """Whole-sequence ``ProcessPoolExecutor`` fallback (``transport="pickle"``).

        Jobs ship a sequence *handle* — the generator config when the
        sequence remembers one — so synthetic frame stacks are rebuilt
        in-worker instead of being pickled through the pool.
        """
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(
                pool.map(
                    _run_sequence_job,
                    [(self, _sequence_handle(sequence)) for sequence in sequences],
                )
            )
        results = []
        for result, extrapolation_ops in outcomes:
            self.total_extrapolation_ops += extrapolation_ops
            results.append(result)
        return results

    def run_dataset_result(
        self,
        dataset: "Dataset | Iterable[VideoSequence]",
        max_workers: Optional[int] = None,
        *,
        transport: Optional[str] = None,
    ) -> DatasetRunResult:
        """Like :meth:`run_dataset`, but return a :class:`DatasetRunResult`.

        The result object carries this run's extrapolation-op total alongside
        the per-sequence results, which lets the experiment harness cache one
        self-contained object per swept pipeline configuration.
        """
        ops_before = self.total_extrapolation_ops
        sequences = self.run_dataset(
            dataset, max_workers=max_workers, transport=transport
        )
        return DatasetRunResult(
            sequences=sequences,
            extrapolation_ops=self.total_extrapolation_ops - ops_before,
        )

    # ------------------------------------------------------------------
    # Adaptive-mode feedback
    # ------------------------------------------------------------------
    #: Minimum IoU for pairing an inferred box with a predicted one in the
    #: disagreement metric (see :func:`repro.core.session.measure_disagreement`,
    #: the canonical implementation next to the per-frame loop).
    DISAGREEMENT_IOU_FLOOR = DISAGREEMENT_IOU_FLOOR

    @classmethod
    def _disagreement(
        cls, inferred: Sequence[Detection], predicted: Sequence[Detection]
    ) -> float:
        """Compatibility alias for :func:`repro.core.session.measure_disagreement`."""
        return measure_disagreement(inferred, predicted, cls.DISAGREEMENT_IOU_FLOOR)


def _sequence_handle(sequence: "VideoSequence"):
    """Smallest picklable stand-in for a sequence in a legacy pool job.

    Synthetic sequences remember their :class:`SequenceConfig`; shipping
    the config (a few hundred bytes) and regenerating in-worker avoids
    pickling the whole frame stack.  Sequences without a config — or whose
    recorded config no longer matches (someone renamed/retrimmed the
    object) — fall back to shipping the sequence itself.
    """
    config = getattr(sequence, "source_config", None)
    if (
        config is not None
        and config.name == sequence.name
        and config.num_frames == sequence.num_frames
        and config.frame_width == sequence.width
        and config.frame_height == sequence.height
    ):
        return ("config", config)
    return ("sequence", sequence)


def _run_sequence_job(payload):
    """Top-level worker for the legacy pool path of :meth:`run_dataset`."""
    pipeline, (kind, data) = payload
    if kind == "config":
        from ..video.synthetic import SequenceGenerator

        sequence = SequenceGenerator(data).generate()
    else:
        sequence = data
    pipeline.total_extrapolation_ops = 0.0
    result = pipeline.run(sequence)
    return result, pipeline.total_extrapolation_ops
