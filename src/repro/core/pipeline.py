"""The end-to-end Euphrates continuous-vision pipeline.

For every captured frame the pipeline runs the ISP (which produces pixels
plus motion-vector metadata), asks the window controller whether this is an
I-frame or an E-frame, and then either drives the inference backend (I-frame)
or extrapolates the previous results with the motion controller's algorithm
(E-frame).  On I-frames it also measures how much the inference result
disagrees with what extrapolation would have predicted, which feeds the
adaptive-EW controller.

The same class serves both evaluation scenarios: object detection (multiple
ROIs per frame, YOLOv2-class backends) and visual tracking (a single target,
MDNet-class backends).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..isp.pipeline import ISPConfig, ISPPipeline
from ..motion.block_matching import BlockMatchingConfig
from .backends import InferenceBackend

if TYPE_CHECKING:  # imported lazily to avoid a circular package import
    from ..video.datasets import Dataset
    from ..video.sequence import VideoSequence
from .extrapolation import ExtrapolationConfig, MotionExtrapolator, RoiMotionState
from .geometry import BoundingBox
from .types import DatasetRunResult, Detection, FrameKind, FrameResult, SequenceResult
from .window import ConstantWindowController, WindowController


@dataclass(frozen=True)
class EuphratesConfig:
    """Algorithm-level configuration of the pipeline."""

    block_matching: BlockMatchingConfig = BlockMatchingConfig()
    extrapolation: ExtrapolationConfig = ExtrapolationConfig()
    #: When False the ISP discards its motion vectors (conventional SoC);
    #: every frame then degenerates to an I-frame regardless of the window
    #: controller, which models the baseline system.
    expose_motion_vectors: bool = True


class EuphratesPipeline:
    """Motion-extrapolated continuous vision over a video sequence."""

    def __init__(
        self,
        backend: InferenceBackend,
        window_controller: Optional[WindowController] = None,
        config: Optional[EuphratesConfig] = None,
    ) -> None:
        self.backend = backend
        self.window_controller = window_controller or ConstantWindowController(2)
        self.config = config or EuphratesConfig()
        #: Total extrapolation operations across all processed frames.
        self.total_extrapolation_ops = 0.0
        # Reusable per-pipeline engine instances: constructing the ISP and
        # the extrapolator per sequence is pure overhead once a dataset has
        # hundreds of sequences, so both are built lazily and reset/retargeted
        # at each sequence start.
        self._isp: Optional[ISPPipeline] = None
        self._extrapolator: Optional[MotionExtrapolator] = None

    def __getstate__(self):
        # The cached ISP/extrapolator are lazily rebuilt and carry large
        # frame buffers; shipping them to worker processes would bloat every
        # pickled run_dataset job for state the worker resets anyway.
        state = self.__dict__.copy()
        state["_isp"] = None
        state["_extrapolator"] = None
        return state

    # ------------------------------------------------------------------
    # Engine reuse
    # ------------------------------------------------------------------
    def _acquire_isp(self) -> ISPPipeline:
        if self._isp is None:
            self._isp = ISPPipeline(
                ISPConfig(
                    expose_motion_vectors=self.config.expose_motion_vectors,
                    block_matching=self.config.block_matching,
                )
            )
        else:
            self._isp.reset()
        return self._isp

    def _acquire_extrapolator(self, sequence: "VideoSequence") -> MotionExtrapolator:
        if self._extrapolator is None:
            self._extrapolator = MotionExtrapolator(
                self.config.extrapolation,
                frame_width=sequence.width,
                frame_height=sequence.height,
            )
        else:
            self._extrapolator.configure_frame(sequence.width, sequence.height)
        return self._extrapolator

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, sequence: "VideoSequence") -> SequenceResult:
        """Process one video sequence and return per-frame results."""
        isp = self._acquire_isp()
        extrapolator = self._acquire_extrapolator(sequence)
        ops_before = extrapolator.total_operations
        self.backend.start_sequence(sequence)

        states: Dict[int, RoiMotionState] = {}
        last_detections: List[Detection] = []
        frames_since_inference = 0
        frames: List[FrameResult] = []

        for frame_index, frame in sequence.iter_frames():
            processed = isp.process_luma(frame.astype(np.float64), frame_index)
            motion_field = processed.motion_field

            can_extrapolate = motion_field is not None and bool(last_detections)
            must_infer = (
                frame_index == 0
                or not can_extrapolate
                or self.window_controller.should_infer(frames_since_inference)
            )

            if must_infer:
                predicted = None
                if can_extrapolate:
                    predicted = extrapolator.extrapolate_detections(
                        last_detections, motion_field, states
                    )
                detections = self.backend.infer(frame_index, processed.luma, sequence)
                if predicted is not None:
                    disagreement = self._disagreement(detections, predicted)
                    self.window_controller.observe_disagreement(disagreement)
                self._prune_states(states, detections)
                kind = FrameKind.INFERENCE
                frames_since_inference = 0
            else:
                detections = extrapolator.extrapolate_detections(
                    last_detections, motion_field, states
                )
                kind = FrameKind.EXTRAPOLATION
                frames_since_inference += 1

            last_detections = detections
            frames.append(
                FrameResult(
                    frame_index=frame_index,
                    kind=kind,
                    detections=list(detections),
                    window_size=self.window_controller.current_window,
                )
            )

        self.total_extrapolation_ops += extrapolator.total_operations - ops_before
        return SequenceResult(sequence_name=sequence.name, frames=frames)

    @staticmethod
    def _prune_states(states: Dict[int, RoiMotionState], detections: Sequence[Detection]) -> None:
        """Drop filter states made stale by a fresh inference result.

        An I-frame replaces the tracked detection set.  Anonymous states
        (negative keys are positional) never survive the replacement, and
        identified states survive only while their object id is still
        detected; anything else would seed the recursive filter of a new
        object with another object's motion history.
        """
        live_ids = {d.object_id for d in detections if d.object_id is not None}
        for key in [k for k in states if k < 0 or k not in live_ids]:
            del states[key]

    def run_dataset(
        self,
        dataset: "Dataset | Iterable[VideoSequence]",
        max_workers: Optional[int] = None,
    ) -> List[SequenceResult]:
        """Process every sequence of a dataset.

        With ``max_workers`` > 1 the sequences are distributed over a pool
        of worker processes, each running a pickled copy of this pipeline.
        Results come back in dataset order and extrapolation-op totals are
        aggregated.  Adaptive-window feedback stays local to each worker:
        every sequence adapts within itself but starts from this pipeline's
        current controller state, whereas the serial path chains controller
        state from one sequence into the next — so adaptive-mode results can
        differ between serial and parallel runs (constant-window results are
        identical).
        """
        sequences = dataset.sequences if hasattr(dataset, "sequences") else list(dataset)
        if max_workers is None or max_workers <= 1 or len(sequences) <= 1:
            return [self.run(sequence) for sequence in sequences]

        from concurrent.futures import ProcessPoolExecutor

        workers = min(max_workers, len(sequences))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(
                pool.map(_run_sequence_job, [(self, sequence) for sequence in sequences])
            )
        results = []
        for result, extrapolation_ops in outcomes:
            self.total_extrapolation_ops += extrapolation_ops
            results.append(result)
        return results

    def run_dataset_result(
        self,
        dataset: "Dataset | Iterable[VideoSequence]",
        max_workers: Optional[int] = None,
    ) -> DatasetRunResult:
        """Like :meth:`run_dataset`, but return a :class:`DatasetRunResult`.

        The result object carries this run's extrapolation-op total alongside
        the per-sequence results, which lets the experiment harness cache one
        self-contained object per swept pipeline configuration.
        """
        ops_before = self.total_extrapolation_ops
        sequences = self.run_dataset(dataset, max_workers=max_workers)
        return DatasetRunResult(
            sequences=sequences,
            extrapolation_ops=self.total_extrapolation_ops - ops_before,
        )

    # ------------------------------------------------------------------
    # Adaptive-mode feedback
    # ------------------------------------------------------------------
    #: Minimum IoU for pairing an inferred box with a predicted one in the
    #: disagreement metric; non-overlapping boxes are no evidence of a pair.
    DISAGREEMENT_IOU_FLOOR = 1e-9

    @classmethod
    def _disagreement(
        cls, inferred: Sequence[Detection], predicted: Sequence[Detection]
    ) -> float:
        """Mean ``1 - IoU`` between inference results and extrapolated ones.

        Pairs are matched by object id when available; the remaining boxes
        are matched one-to-one, best IoU first, and only while they overlap
        at all.  When there is nothing to compare the disagreement is 0 (no
        evidence that extrapolation was wrong).
        """
        if not inferred or not predicted:
            return 0.0

        by_id = {d.object_id: d for d in predicted if d.object_id is not None}
        disagreements: List[float] = []
        anonymous_inferred: List[Detection] = []
        for detection in inferred:
            if detection.object_id is not None and detection.object_id in by_id:
                counterpart = by_id[detection.object_id]
                disagreements.append(1.0 - detection.box.iou(counterpart.box))
            else:
                anonymous_inferred.append(detection)

        pool = [d for d in predicted if d.object_id is None]
        pairs = sorted(
            (
                (detection.box.iou(candidate.box), i, j)
                for i, detection in enumerate(anonymous_inferred)
                for j, candidate in enumerate(pool)
            ),
            key=lambda item: item[0],
            reverse=True,
        )
        used_inferred: set = set()
        used_predicted: set = set()
        for iou, i, j in pairs:
            if iou < cls.DISAGREEMENT_IOU_FLOOR:
                break
            if i in used_inferred or j in used_predicted:
                continue
            used_inferred.add(i)
            used_predicted.add(j)
            disagreements.append(1.0 - iou)

        if not disagreements:
            return 0.0
        return float(np.mean(disagreements))


def _run_sequence_job(payload):
    """Top-level worker for process-parallel :meth:`EuphratesPipeline.run_dataset`."""
    pipeline, sequence = payload
    pipeline.total_extrapolation_ops = 0.0
    result = pipeline.run(sequence)
    return result, pipeline.total_extrapolation_ops


# ----------------------------------------------------------------------
# Convenience factories used by examples and benchmarks
# ----------------------------------------------------------------------
def build_pipeline(
    backend: InferenceBackend,
    extrapolation_window: int | str = 2,
    block_size: int = 16,
    search_range: int = 7,
    exhaustive_search: bool = False,
    search_policy: str = "pruned",
    sub_roi_grid: tuple = (2, 2),
    expose_motion_vectors: bool = True,
) -> EuphratesPipeline:
    """Assemble a pipeline from the most commonly swept parameters.

    ``extrapolation_window`` accepts an integer (constant EW-N mode) or the
    string ``"adaptive"`` (EW-A mode).  ``search_policy`` picks the
    exhaustive-search candidate-scan policy (``"full"``/``"spiral"``/
    ``"pruned"`` — all result-identical); it is ignored by three-step
    search.
    """
    from ..motion.block_matching import SearchPolicy, SearchStrategy
    from .window import AdaptiveWindowController

    strategy = SearchStrategy.EXHAUSTIVE if exhaustive_search else SearchStrategy.THREE_STEP
    config = EuphratesConfig(
        block_matching=BlockMatchingConfig(
            block_size=block_size,
            search_range=search_range,
            strategy=strategy,
            search_policy=SearchPolicy(search_policy),
        ),
        extrapolation=ExtrapolationConfig(sub_roi_grid=sub_roi_grid),
        expose_motion_vectors=expose_motion_vectors,
    )
    if isinstance(extrapolation_window, str):
        if extrapolation_window.lower() not in {"adaptive", "ew-a", "a"}:
            raise ValueError(f"unknown window mode '{extrapolation_window}'")
        controller: WindowController = AdaptiveWindowController()
    else:
        controller = ConstantWindowController(int(extrapolation_window))
    return EuphratesPipeline(backend=backend, window_controller=controller, config=config)
