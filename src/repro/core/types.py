"""Common result types shared across the detection / tracking pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import List, Optional, Sequence

from .geometry import BoundingBox


class FrameKind(Enum):
    """How the vision result for a frame was produced.

    ``INFERENCE`` corresponds to the paper's I-frames (full CNN inference);
    ``EXTRAPOLATION`` to E-frames (motion-vector extrapolation).
    """

    INFERENCE = "inference"
    EXTRAPOLATION = "extrapolation"


@dataclass(frozen=True)
class Detection:
    """A single detected (or extrapolated) object instance."""

    box: BoundingBox
    label: str = "object"
    score: float = 1.0
    object_id: Optional[int] = None
    extrapolated: bool = False

    def with_box(self, box: BoundingBox) -> "Detection":
        """Return a copy of this detection with a different bounding box."""
        return replace(self, box=box)

    def as_extrapolated(self, box: BoundingBox) -> "Detection":
        """Return an extrapolated copy of this detection at a new location."""
        return replace(self, box=box, extrapolated=True)


@dataclass(frozen=True)
class FrameTelemetry:
    """What actually happened, hardware-wise, while processing one frame.

    Emitted by :meth:`repro.core.session.EuphratesSession.submit` as an
    observe-only event stream: recording telemetry never changes the vision
    output.  The record is deliberately hardware-agnostic — it states what
    the pipeline *did* (frame kind, pixels through the ISP, ROI count,
    motion-search work) and :class:`repro.soc.frame_cost.CostMeter` prices
    it against a concrete SoC model.
    """

    frame_index: int
    kind: FrameKind
    #: Luma pixels that went through the ISP for this frame.  ``None`` means
    #: "unknown"; cost models then price the frame at their nominal capture
    #: setting.
    pixels: Optional[int] = None
    #: ROIs the backend produced this frame (the extrapolated set on
    #: E-frames — what the motion controller actually has to move).
    rois: int = 1
    #: Motion-estimation (SAD search) operations the ISP actually spent.
    motion_ops: float = 0.0
    #: Operations the ROI-extrapolation algorithm actually spent (0 on
    #: I-frames).
    extrapolation_ops: float = 0.0
    #: Name of the session/stream that processed the frame.
    stream: str = ""
    #: Comma-separated degradation tags attached by the serving layer when
    #: the frame was handled under duress (e.g. ``"dropped-frame-gap"``,
    #: ``"deferred-inference"``, ``"queue-degrade"``).  Empty on the normal
    #: path; observe-only, like every other telemetry field.
    degradation: str = ""
    #: Per-stage wall-clock timings (seconds) stamped by the session.
    #: Observe-only like everything else here: the energy model prices the
    #: ``*_ops``/``pixels`` fields above, never these clocks.  ``isp_s``
    #: covers the whole ISP call (of which ``motion_search_s`` and
    #: ``denoise_blend_s`` are the two metered sub-stages); ``total_s`` is
    #: the whole per-frame processing body.  All default 0.0 so telemetry
    #: from older emitters (or hand-built test records) stays valid.
    isp_s: float = 0.0
    motion_search_s: float = 0.0
    denoise_blend_s: float = 0.0
    extrapolation_s: float = 0.0
    inference_s: float = 0.0
    total_s: float = 0.0


@dataclass
class FrameResult:
    """Vision output for one frame of a continuous video stream."""

    frame_index: int
    kind: FrameKind
    detections: List[Detection] = field(default_factory=list)
    #: Wall-clock latency of producing this result, in seconds (model time).
    latency_s: float = 0.0
    #: Extrapolation-window size in effect when this frame was processed.
    window_size: int = 0

    @property
    def is_inference(self) -> bool:
        return self.kind is FrameKind.INFERENCE

    @property
    def is_extrapolated(self) -> bool:
        return self.kind is FrameKind.EXTRAPOLATION

    def boxes(self) -> List[BoundingBox]:
        """Bounding boxes of every detection in this frame."""
        return [d.box for d in self.detections]

    def best_for(self, truth: BoundingBox) -> Optional[Detection]:
        """Return the detection with the highest IoU against ``truth``."""
        if not self.detections:
            return None
        return max(self.detections, key=lambda d: d.box.iou(truth))


@dataclass
class SequenceResult:
    """Vision output for an entire video sequence."""

    sequence_name: str
    frames: List[FrameResult] = field(default_factory=list)
    #: Per-frame hardware telemetry recorded while producing ``frames``
    #: (empty when the producer drained it separately or predates the
    #: telemetry API).  Observe-only: never feeds back into the results.
    telemetry: List[FrameTelemetry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self):
        return iter(self.frames)

    @property
    def inference_count(self) -> int:
        """Number of frames that required a CNN inference."""
        return sum(1 for f in self.frames if f.is_inference)

    @property
    def extrapolation_count(self) -> int:
        """Number of frames produced by motion extrapolation."""
        return sum(1 for f in self.frames if f.is_extrapolated)

    @property
    def inference_rate(self) -> float:
        """Fraction of frames on which a CNN inference was triggered."""
        if not self.frames:
            return 0.0
        return self.inference_count / len(self.frames)


@dataclass
class DatasetRunResult:
    """Results of running one pipeline configuration over a whole dataset.

    Bundles the per-sequence results with the run-level counters the
    experiment harness needs (extrapolation ops, inference rate), so a single
    object can be cached and shared between figures that sweep the same
    pipeline configuration.
    """

    sequences: List[SequenceResult] = field(default_factory=list)
    #: Extrapolation operations spent by this run (not any prior runs of the
    #: same pipeline instance).
    extrapolation_ops: float = 0.0

    def __len__(self) -> int:
        return len(self.sequences)

    def __iter__(self):
        return iter(self.sequences)

    @property
    def total_frames(self) -> int:
        return sum(len(result) for result in self.sequences)

    @property
    def inference_count(self) -> int:
        return sum(result.inference_count for result in self.sequences)

    @property
    def inference_rate(self) -> float:
        """Fraction of all frames that triggered a CNN inference."""
        total = self.total_frames
        if total == 0:
            return 0.0
        return self.inference_count / total


def merge_sequence_results(results: Sequence[SequenceResult]) -> List[FrameResult]:
    """Concatenate the per-frame results of several sequences."""
    frames: List[FrameResult] = []
    for result in results:
        frames.extend(result.frames)
    return frames
