"""Asyncio TCP serving front end over the ingestion core.

:class:`EuphratesServer` puts cameras on the wire: clients speak the
length-prefixed protocol of :mod:`repro.core.ingest` (HELLO / FRAME / BYE
plus STATS and HEALTH endpoints) and the server drives one
:class:`~repro.core.ingest.IngestCore` — admission control, reordering,
overload policies and the shared execution core all live there; this
module is only I/O:

* **single-threaded core access** — every touch of the ingest core happens
  on the event loop, so the (deliberately lock-free) synchronous core
  needs no synchronisation;
* **pump task** — one background coroutine alternates scheduling rounds
  with cooperative yields, so frame processing interleaves with socket
  I/O instead of blocking it;
* **per-connection result queues** — each connection's RESULT acks go
  through a bounded queue drained by a writer coroutine.  A slow consumer
  overflows its own queue and loses (counted) acks — frame *processing*
  is never backpressured by a client that stopped reading;
* **disconnect = BYE** — a mid-stream disconnect flushes and finishes the
  connection's streams exactly like a graceful BYE, the results are just
  discarded; other connections never notice;
* **graceful drain** — :meth:`EuphratesServer.shutdown` stops accepting,
  settles every stream and the shared SoC pool, and keeps the final
  :class:`~repro.core.streaming.MultiplexerReport` (exact shared-static
  energy aggregate) on :attr:`final_report`.

:class:`ServeClient` is the synchronous counterpart (blocking socket, no
asyncio) used by the tests and the load generator; :class:`ServerThread`
hosts a server on a background event loop so both can live in one process.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .executor import ShardError, StreamFailedError
from .ingest import (
    MSG_BYE,
    MSG_BYE_OK,
    MSG_ERROR,
    MSG_FRAME,
    MSG_HEALTH,
    MSG_HELLO,
    MSG_HELLO_OK,
    MSG_REJECT,
    MSG_RESULT,
    MSG_STATS,
    AdmissionError,
    IngestCore,
    ProtocolError,
    decode_frame,
    decode_json,
    encode_frame,
    encode_json,
    encode_message,
    read_message,
)
from .types import Detection, FrameKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import FrameRecord
    from .streaming import MultiplexerReport

__all__ = ["EuphratesServer", "ServeClient", "ServerThread"]


@dataclass
class _Connection:
    """Server-side state of one client connection."""

    writer: asyncio.StreamWriter
    #: handle (client-chosen u32) -> stream id in the ingest core.
    handles: Dict[int, str] = field(default_factory=dict)
    #: Bounded RESULT-ack queue; a slow consumer overflows it (counted).
    outbox: Optional[asyncio.Queue] = None
    result_drops: int = 0
    closed: bool = False


class EuphratesServer:
    """Serves the ingestion core over asyncio TCP.

    ``stream_kwargs`` (optional) maps a HELLO config dict to extra keyword
    arguments for :meth:`IngestCore.open_stream` — the hook where a
    deployment wires per-stream backends or window controllers.
    """

    def __init__(
        self,
        ingest: IngestCore,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        outbox_depth: int = 256,
        stream_kwargs=None,
    ) -> None:
        self.ingest = ingest
        self.host = host
        self.port = port
        self.outbox_depth = outbox_depth
        self.stream_kwargs = stream_kwargs
        self.final_report: "MultiplexerReport | None" = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._connections: Dict[int, _Connection] = {}
        self._next_conn_id = 0
        self._next_stream_id = 0
        self._draining = False
        self.ingest._on_record = self._dispatch_record
        #: RESULT acks dropped on slow consumers, total.
        self.total_result_drops = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "EuphratesServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.ensure_future(self._pump_loop())
        return self

    async def shutdown(self) -> "MultiplexerReport | None":
        """Graceful drain: settle every stream and the shared SoC pool."""
        if self._draining:
            return self.final_report
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
        for conn in list(self._connections.values()):
            await self._close_connection(conn, finish_streams=True)
        try:
            self.ingest.finish()
        except ShardError:
            pass
        self.final_report = self.ingest.multiplexer.report()
        return self.final_report

    async def _pump_loop(self) -> None:
        while True:
            try:
                processed = self.ingest.pump()
            except ShardError:
                processed = 0
            # Yield: stay hot while frames flow, back off when idle.
            await asyncio.sleep(0 if processed else 0.002)

    # ------------------------------------------------------------------
    # Result routing
    # ------------------------------------------------------------------
    def _dispatch_record(self, record: "FrameRecord") -> None:
        conn, handle = self._route_of(record.key)
        if conn is None or conn.closed:
            return
        stream = self.ingest._streams.get(record.key)
        seqs = stream.accepted_seqs if stream is not None else []
        payload = {
            "handle": handle,
            "stream": record.key,
            "frame_index": record.frame_index,
            "seq": (
                seqs[record.frame_index] if record.frame_index < len(seqs) else None
            ),
            "kind": record.kind.value,
            "latency_ms": (record.wait_s + record.busy_s) * 1e3,
            "degradation": (
                record.telemetry.degradation if record.telemetry is not None else ""
            ),
        }
        self._offer(conn, encode_json(MSG_RESULT, payload))

    def _route_of(self, stream_id: str) -> Tuple[Optional[_Connection], int]:
        for conn in self._connections.values():
            for handle, sid in conn.handles.items():
                if sid == stream_id:
                    return conn, handle
        return None, -1

    def _offer(self, conn: _Connection, message: bytes) -> None:
        """Queue one outbound message, shedding the oldest ack if full."""
        if conn.outbox is None or conn.closed:
            return
        while True:
            try:
                conn.outbox.put_nowait(message)
                return
            except asyncio.QueueFull:
                try:
                    conn.outbox.get_nowait()
                    conn.result_drops += 1
                    self.total_result_drops += 1
                except asyncio.QueueEmpty:  # pragma: no cover - race-free loop
                    return

    async def _writer_loop(self, conn: _Connection) -> None:
        try:
            while True:
                message = await conn.outbox.get()
                conn.writer.write(message)
                await conn.writer.drain()
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        conn = _Connection(
            writer=writer, outbox=asyncio.Queue(maxsize=self.outbox_depth)
        )
        self._connections[conn_id] = conn
        writer_task = asyncio.ensure_future(self._writer_loop(conn))
        buffer = bytearray()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                buffer.extend(chunk)
                while True:
                    message = read_message(buffer)
                    if message is None:
                        break
                    if not self._handle_message(conn, *message):
                        return
        except (ConnectionError, OSError, ProtocolError):
            pass
        finally:
            writer_task.cancel()
            self._connections.pop(conn_id, None)
            await self._close_connection(conn, finish_streams=True)

    def _handle_message(self, conn: _Connection, msg_type: int, body: bytes) -> bool:
        """Process one message; returns False to end the connection."""
        if msg_type == MSG_FRAME:
            handle, seq, frame, truth = decode_frame(body)
            stream_id = conn.handles.get(handle)
            if stream_id is None:
                self._offer(
                    conn,
                    encode_json(MSG_ERROR, {"handle": handle, "reason": "no stream"}),
                )
                return True
            try:
                self.ingest.push_frame(stream_id, seq, frame, truth)
            except (StreamFailedError, ShardError) as error:
                conn.handles.pop(handle, None)
                self.ingest.abort_stream(stream_id)
                self._offer(
                    conn,
                    encode_json(
                        MSG_ERROR,
                        {"handle": handle, "stream": stream_id, "reason": str(error)},
                    ),
                )
            return True
        if msg_type == MSG_HELLO:
            self._handle_hello(conn, decode_json(body))
            return True
        if msg_type == MSG_BYE:
            payload = decode_json(body)
            handle = int(payload.get("handle", -1))
            self._handle_bye(conn, handle)
            return True
        if msg_type == MSG_STATS:
            self._offer(conn, encode_json(MSG_STATS, self.ingest.stats()))
            return True
        if msg_type == MSG_HEALTH:
            self._offer(conn, encode_json(MSG_HEALTH, self.ingest.health()))
            return True
        self._offer(
            conn,
            encode_json(MSG_ERROR, {"reason": f"unknown message type {msg_type}"}),
        )
        return True

    def _handle_hello(self, conn: _Connection, config: dict) -> None:
        handle = int(config.get("handle", len(conn.handles)))
        name = config.get("stream") or f"net{self._next_stream_id}"
        self._next_stream_id += 1
        extra = dict(self.stream_kwargs(config)) if self.stream_kwargs else {}
        try:
            self.ingest.open_stream(
                name,
                width=int(config["width"]),
                height=int(config["height"]),
                fps=float(config.get("fps", 30.0)),
                window_size=int(config.get("window_size", 1)),
                rois=int(config.get("rois", 1)),
                **extra,
            )
        except AdmissionError as error:
            self._offer(
                conn,
                encode_json(MSG_REJECT, {"handle": handle, "reason": str(error)}),
            )
            return
        except (KeyError, ValueError) as error:
            self._offer(
                conn,
                encode_json(
                    MSG_REJECT, {"handle": handle, "reason": f"bad HELLO: {error}"}
                ),
            )
            return
        conn.handles[handle] = name
        self._offer(
            conn, encode_json(MSG_HELLO_OK, {"handle": handle, "stream": name})
        )

    def _handle_bye(self, conn: _Connection, handle: int) -> None:
        stream_id = conn.handles.pop(handle, None)
        if stream_id is None:
            self._offer(
                conn,
                encode_json(MSG_ERROR, {"handle": handle, "reason": "no stream"}),
            )
            return
        summary = self._settle_stream(stream_id)
        summary["handle"] = handle
        self._offer(conn, encode_json(MSG_BYE_OK, summary))

    def _settle_stream(self, stream_id: str) -> dict:
        faults = None
        try:
            faults = self.ingest.faults_for(stream_id).as_dict()
        except KeyError:
            pass
        try:
            result = self.ingest.close_stream(stream_id)
        except (StreamFailedError, ShardError) as error:
            return {
                "stream": stream_id,
                "status": "failed",
                "reason": str(error),
                "faults": faults,
            }
        except KeyError:
            return {"stream": stream_id, "status": "unknown"}
        return {
            "stream": stream_id,
            "status": "ok",
            "frames": len(result.frames),
            "inference_frames": sum(
                1 for f in result.frames if f.kind is FrameKind.INFERENCE
            ),
            "faults": faults,
        }

    async def _close_connection(
        self, conn: _Connection, *, finish_streams: bool
    ) -> None:
        if conn.closed:
            return
        conn.closed = True
        if finish_streams:
            # Disconnect == implicit BYE for every stream still open: flush
            # what was accepted, settle the session, discard the results.
            for stream_id in list(conn.handles.values()):
                self._settle_stream(stream_id)
            conn.handles.clear()
        try:
            conn.writer.close()
        except Exception:  # pragma: no cover - already torn down
            pass


class ServerThread:
    """Hosts an :class:`EuphratesServer` on a background event loop.

    The synchronous entry point for tests and the load generator: the
    server (and every touch of the ingest core) lives on the thread's
    event loop; the caller talks TCP from the outside.
    """

    def __init__(self, ingest: IngestCore, **server_kwargs) -> None:
        self.server = EuphratesServer(ingest, **server_kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="euphrates-serve", daemon=True
        )
        self._started = threading.Event()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_forever()
        # Drain cancelled tasks so the loop closes cleanly.
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self._loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("server failed to start within 10s")
        return self

    @property
    def port(self) -> int:
        return self.server.port

    def shutdown(self) -> "MultiplexerReport | None":
        """Graceful drain from the caller's thread; returns the report.

        Idempotent: a second call returns the report of the first.
        """
        if self._loop.is_closed():
            return self.server.final_report
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        )
        report = future.result(timeout=120.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        return report

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class ServeClient:
    """Blocking-socket client for the serve protocol (tests + load gen).

    Speaks the length-prefixed wire protocol of ``docs/wire-protocol.md``
    over one TCP connection: :meth:`hello` opens a stream handle (raising
    :class:`AdmissionError` on an admission REJECT), :meth:`send_frame`
    ships a luma frame with optional ground truth as a binary FRAME
    message, and :meth:`bye` closes the handle and returns the server's
    end-of-stream summary.  Inbound RESULT/ERROR messages are collected in
    :attr:`results` / :attr:`errors` as a side effect of :meth:`poll` and
    :meth:`wait_for` (results arrive asynchronously — frames are priced
    and batched server-side, so one frame does not mean one immediate
    result).  :meth:`send_raw` writes arbitrary bytes, which is how the
    fault-injection tests corrupt the stream mid-flight.  The client is
    deliberately synchronous and single-threaded; it is a test instrument,
    not a production SDK.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer = bytearray()
        self.results: List[dict] = []
        self.errors: List[dict] = []
        self._inbox: List[Tuple[int, dict]] = []

    # -- outbound -------------------------------------------------------
    def hello(
        self,
        *,
        handle: int,
        stream: Optional[str] = None,
        width: int,
        height: int,
        fps: float = 30.0,
        window_size: int = 1,
        rois: int = 1,
    ) -> dict:
        config = {
            "handle": handle,
            "width": width,
            "height": height,
            "fps": fps,
            "window_size": window_size,
            "rois": rois,
        }
        if stream is not None:
            config["stream"] = stream
        self._sock.sendall(encode_json(MSG_HELLO, config))
        msg_type, payload = self.wait_for(MSG_HELLO_OK, MSG_REJECT)
        if msg_type == MSG_REJECT:
            raise AdmissionError(payload.get("reason", "rejected"))
        return payload

    def send_frame(
        self,
        handle: int,
        seq: int,
        frame: np.ndarray,
        truth: Optional[Sequence[Detection]] = None,
    ) -> None:
        self._sock.sendall(encode_frame(handle, seq, frame, truth))

    def send_raw(self, data: bytes) -> None:
        self._sock.sendall(data)

    def bye(self, handle: int, timeout: float = 120.0) -> dict:
        """Settle ``handle`` and return its summary.

        Raises :class:`StreamFailedError` when the server answers with an
        error for this handle instead — the stream already failed (and was
        torn down) or the handle is unknown.  Errors addressed to *other*
        handles are stashed in :attr:`errors` and the wait continues.
        """
        self._sock.sendall(encode_json(MSG_BYE, {"handle": handle}))
        while True:
            msg_type, payload = self.wait_for(MSG_BYE_OK, MSG_ERROR, timeout=timeout)
            if msg_type == MSG_BYE_OK:
                if int(payload.get("handle", handle)) != handle:
                    continue
                return payload
            if int(payload.get("handle", handle)) == handle:
                raise StreamFailedError(
                    payload.get("stream", str(handle)),
                    payload.get("reason", "stream failed"),
                )

    def stats(self) -> dict:
        self._sock.sendall(encode_json(MSG_STATS, {}))
        _, payload = self.wait_for(MSG_STATS)
        return payload

    def health(self) -> dict:
        self._sock.sendall(encode_json(MSG_HEALTH, {}))
        _, payload = self.wait_for(MSG_HEALTH)
        return payload

    # -- inbound --------------------------------------------------------
    def _classify(self, msg_type: int, body: bytes) -> Tuple[int, dict]:
        payload = decode_json(body)
        if msg_type == MSG_RESULT:
            self.results.append(payload)
        elif msg_type == MSG_ERROR:
            self.errors.append(payload)
        return msg_type, payload

    def poll(self, timeout: float = 0.0) -> List[Tuple[int, dict]]:
        """Read whatever messages are available within ``timeout``."""
        self._sock.settimeout(timeout if timeout > 0 else 0.000001)
        drained: List[Tuple[int, dict]] = []
        try:
            while True:
                message = read_message(self._buffer)
                if message is not None:
                    drained.append(self._classify(*message))
                    continue
                chunk = self._sock.recv(65536)
                if not chunk:
                    break
                self._buffer.extend(chunk)
        except (socket.timeout, BlockingIOError):
            pass
        return drained

    def wait_for(self, *msg_types: int, timeout: float = 30.0) -> Tuple[int, dict]:
        """Block until a message of one of ``msg_types`` arrives."""
        deadline = None if timeout is None else (timeout)
        self._sock.settimeout(deadline)
        while True:
            message = read_message(self._buffer)
            if message is not None:
                msg_type, payload = self._classify(*message)
                if msg_type in msg_types:
                    return msg_type, payload
                continue
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer.extend(chunk)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
