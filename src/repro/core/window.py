"""Extrapolation-window (EW) control: when to infer, when to extrapolate.

The extrapolation window is the number of consecutive frames between two
I-frames (Sec. 3.3).  Euphrates provides two policies:

* **Constant mode** — a fixed EW, giving predictable performance/energy
  improvements (EW-2 halves the inference count, etc.).
* **Adaptive mode** — starts from a seed EW and adjusts it at every I-frame
  based on how much the CNN result disagrees with what extrapolation would
  have predicted: large disagreement shrinks the window, sustained agreement
  grows it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


class WindowController(ABC):
    """Decides, frame by frame, whether to run inference or extrapolate."""

    @abstractmethod
    def should_infer(self, frames_since_inference: int) -> bool:
        """True when the current frame must be an I-frame.

        ``frames_since_inference`` is 0 on the frame immediately after an
        I-frame, 1 on the next, and so on.  The very first frame of a stream
        is always an I-frame regardless of the controller (there is nothing
        to extrapolate from), which the pipeline enforces.
        """

    @abstractmethod
    def observe_disagreement(self, disagreement: float) -> None:
        """Report the inference-vs-extrapolation disagreement at an I-frame.

        ``disagreement`` is ``1 - IoU`` between the CNN result and the
        extrapolated prediction for the same frame (averaged over ROIs);
        0 means they agree perfectly.
        """

    @property
    @abstractmethod
    def current_window(self) -> int:
        """The extrapolation window currently in effect."""

    @abstractmethod
    def clone(self) -> "WindowController":
        """A fresh controller with this one's configuration but no history.

        Streaming sessions give every camera stream its own controller so
        one stream's disagreement feedback cannot perturb another stream's
        window; cloning keeps the configuration while dropping the runtime
        state.
        """

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass
class ConstantWindowController(WindowController):
    """Fixed extrapolation window (the EW-N configurations)."""

    window: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")

    def should_infer(self, frames_since_inference: int) -> bool:
        return frames_since_inference >= self.window - 1

    def observe_disagreement(self, disagreement: float) -> None:
        # Constant mode ignores runtime feedback by design.
        return None

    @property
    def current_window(self) -> int:
        return self.window

    def clone(self) -> "ConstantWindowController":
        return ConstantWindowController(self.window)

    @property
    def name(self) -> str:
        return f"EW-{self.window}"


class AdaptiveWindowController(WindowController):
    """Dynamic EW control (the paper's EW-A configuration, Sec. 3.3).

    Whenever an inference runs, the controller compares the CNN result with
    the extrapolated prediction.  If the disagreement exceeds
    ``disagreement_threshold`` the window shrinks by one (down to
    ``min_window``); if the disagreement stays below the threshold for
    ``patience`` consecutive inferences, the window grows by one (up to
    ``max_window``).
    """

    def __init__(
        self,
        initial_window: int = 2,
        min_window: int = 1,
        max_window: int = 8,
        disagreement_threshold: float = 0.35,
        patience: int = 2,
    ) -> None:
        if min_window < 1:
            raise ValueError("min_window must be >= 1")
        if not min_window <= initial_window <= max_window:
            raise ValueError("initial_window must lie within [min_window, max_window]")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if not 0.0 <= disagreement_threshold <= 1.0:
            raise ValueError("disagreement_threshold must be in [0, 1]")
        self.min_window = min_window
        self.max_window = max_window
        self.disagreement_threshold = disagreement_threshold
        self.patience = patience
        self.initial_window = initial_window
        self._window = initial_window
        self._good_streak = 0
        #: History of (window, disagreement) pairs, useful for analysis.
        self.history: list[tuple[int, float]] = []

    def should_infer(self, frames_since_inference: int) -> bool:
        return frames_since_inference >= self._window - 1

    def observe_disagreement(self, disagreement: float) -> None:
        self.history.append((self._window, disagreement))
        if disagreement > self.disagreement_threshold:
            self._window = max(self.min_window, self._window - 1)
            self._good_streak = 0
            return
        self._good_streak += 1
        if self._good_streak >= self.patience:
            self._window = min(self.max_window, self._window + 1)
            self._good_streak = 0

    @property
    def current_window(self) -> int:
        return self._window

    def clone(self) -> "AdaptiveWindowController":
        return AdaptiveWindowController(
            initial_window=self.initial_window,
            min_window=self.min_window,
            max_window=self.max_window,
            disagreement_threshold=self.disagreement_threshold,
            patience=self.patience,
        )

    @property
    def name(self) -> str:
        return "EW-A"
