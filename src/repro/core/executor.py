"""Sharded execution core: one scheduling layer under sweeps and serving.

Historically the repo had two disjoint parallel-execution paths:
``EuphratesPipeline.run_dataset(max_workers)`` pickled whole
``VideoSequence`` objects into a ``ProcessPoolExecutor`` while the
:class:`~repro.core.streaming.StreamMultiplexer` scheduled in-process
sessions single-threaded.  This module unifies them:

* :class:`StreamShard` is the scheduling core — the two-phase
  (E-burst / batched-I) fair-share and energy/deadline policies that used
  to live inside the multiplexer, operating on any number of sessions it
  owns end-to-end.
* :class:`ShardedExecutor` places streams onto shards.  With
  ``workers <= 1`` the single shard runs in-process (bit-identical to the
  pre-sharding code path, which keeps single-core CI and the oracle path
  unchanged).  With ``workers = N`` it forks N worker processes, each
  owning its sessions end-to-end; only small picklable control messages
  cross the pipe.
* :class:`SharedMemoryTransport` moves uint8 frames between processes
  zero-copy over ``multiprocessing.shared_memory`` ring buffers.  Frames
  are never pickled: the producer writes pixels into a free slot and
  ships a tiny :class:`FrameRef`; the consumer maps the slot as an
  ndarray view.  Slots are reused under generation counters so a stale
  reference can never silently read recycled pixels.

Sessions are fully isolated (own backend copy, own controller clone, own
ISP), so sharded output is bit-identical to serial execution — property
tested in ``tests/test_executor.py`` for every task/policy combination.
"""

from __future__ import annotations

import pickle
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context, shared_memory
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .types import Detection, FrameKind, FrameTelemetry, SequenceResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..video.sequence import VideoSequence
    from .pipeline import EuphratesPipeline
    from .session import SessionStats


#: Scheduling policies: ``fair`` is the round-robin fair-share scheduler;
#: ``energy`` defers I-frames (within a deadline) to build full inference
#: batches, maximising NNX weight reuse, and serves the deepest queues first.
SCHEDULING_POLICIES = ("fair", "energy")

#: Frame transports: ``auto`` picks shared memory when worker processes are
#: in play and the in-process transport otherwise; ``shm`` / ``inproc``
#: force one; ``pickle`` selects the legacy ``ProcessPoolExecutor``
#: whole-sequence fallback in :meth:`EuphratesPipeline.run_dataset` (it is
#: not a valid executor transport).
TRANSPORTS = ("auto", "shm", "inproc", "pickle")

_SLOT_HEADER_BYTES = 16
_SLOT_FREE = 0
_SLOT_FULL = 1


@dataclass(frozen=True)
class ExecutionSpec:
    """How a pipeline's dataset/stream work is executed (not *what* runs).

    Execution knobs never change outputs — sharded results are bit-identical
    to serial ones — which is why :meth:`PipelineSpec.cache_key` excludes
    them.
    """

    workers: int = 1
    transport: str = "auto"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport '{self.transport}' (expected one of {TRANSPORTS})"
            )


@dataclass(frozen=True)
class ShardSchedule:
    """Scheduling-policy knobs a shard applies to the streams it owns."""

    policy: str = "fair"
    e_frame_burst: int = 4
    max_inference_batch: int = 4
    deadline_frames: int = 8
    #: Retain per-frame telemetry and reattach it to the finished
    #: :class:`SequenceResult` (the batch ``run_dataset`` contract); the
    #: multiplexer drains telemetry into its cost meters instead.
    keep_telemetry: bool = False

    def __post_init__(self) -> None:
        if self.e_frame_burst < 1:
            raise ValueError("e_frame_burst must be >= 1")
        if self.max_inference_batch < 1:
            raise ValueError("max_inference_batch must be >= 1")
        if self.policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"unknown policy '{self.policy}' (expected one of {SCHEDULING_POLICIES})"
            )
        if self.deadline_frames < 1:
            raise ValueError("deadline_frames must be >= 1")


@dataclass(frozen=True)
class FrameRef:
    """Zero-copy handle to one frame sitting in a shared-memory slot."""

    segment: str
    slot: int
    generation: int
    shape: Tuple[int, ...]
    dtype: str
    data_offset: int
    header_offset: int


@dataclass(frozen=True)
class FrameRecord:
    """What a shard reports back for every processed frame.

    ``batch_id`` groups the I-frames of one dispatched inference batch
    (unique per shard, ``-1`` for E-frames) so the client can reconstruct
    batch sizes without sharing scheduler state.
    """

    shard: str
    key: str
    frame_index: int
    kind: FrameKind
    batch_size: int
    batch_id: int
    busy_s: float
    wait_s: float
    telemetry: Optional[FrameTelemetry]


class ShardError(RuntimeError):
    """A worker shard failed; carries the worker-side traceback."""


class StreamFailedError(ShardError):
    """One stream failed (its worker crashed or its session raised).

    Raised by :meth:`ShardedExecutor.finish_stream` /
    :meth:`ShardedExecutor.submit` for a stream that previously failed.
    Unlike a bare :class:`ShardError` this is scoped: every other stream —
    including streams on the same shard when failure isolation is on —
    keeps running.
    """

    def __init__(self, key: str, message: str) -> None:
        super().__init__(message)
        self.key = key


def _assert_frame_free(obj: object, _depth: int = 0) -> None:
    """Refuse to ship frame pixel arrays over a pickling pipe.

    Frames must travel through the shared-memory transport; everything the
    control pipe carries is small (refs, truth boxes, records).  The scan
    is shallow on purpose — it catches a raw frame slipped into a message,
    not arrays legitimately embedded deep inside opaque objects such as a
    custom backend shipped at stream-open time.
    """
    if isinstance(obj, np.ndarray):
        raise TypeError(
            "refusing to pickle a numpy array across a shard boundary; "
            "frames must travel through the shared-memory transport"
        )
    if _depth >= 3:
        return
    if isinstance(obj, (list, tuple)):
        for item in obj:
            _assert_frame_free(item, _depth + 1)
    elif isinstance(obj, dict):
        for item in obj.values():
            _assert_frame_free(item, _depth + 1)


# ----------------------------------------------------------------------
# Frame transport
# ----------------------------------------------------------------------
class InProcessTransport:
    """Trivial transport for the single-shard path: copy, no sharing.

    The copy mirrors the historical multiplexer contract — live capture
    loops reuse one buffer per capture, which would otherwise silently
    rewrite every frame still sitting in a queue.
    """

    mode = "inproc"

    def __init__(self) -> None:
        self.frames_sent = 0

    def send(self, frame: np.ndarray) -> np.ndarray:
        self.frames_sent += 1
        return np.array(frame, copy=True)

    def close(self) -> None:
        pass


class _ShmSegment:
    """Producer-side view of one shared-memory ring segment."""

    def __init__(self, shm: shared_memory.SharedMemory, slot_bytes: int, slots: int) -> None:
        self.shm = shm
        self.slot_bytes = slot_bytes
        self.slots = slots
        self.generations = [0] * slots

    def header_offset(self, slot: int) -> int:
        return slot * _SLOT_HEADER_BYTES

    def data_offset(self, slot: int) -> int:
        return self.slots * _SLOT_HEADER_BYTES + slot * self.slot_bytes

    def state(self, slot: int) -> int:
        return self.shm.buf[self.header_offset(slot) + 8]


class SharedMemoryTransport:
    """Ring-buffer frame transport over ``multiprocessing.shared_memory``.

    Segments are allocated per frame-size class, each holding a fixed
    number of slots.  A slot is a 16-byte header (8-byte little-endian
    generation counter + 1 state byte) plus the pixel payload.  The
    producer claims a FREE slot, bumps its generation, writes the pixels
    and marks it FULL; the consumer maps the payload zero-copy, validates
    the generation against its :class:`FrameRef`, and marks the slot FREE
    once the frame has been consumed.  When every slot of a size class is
    in flight a new segment is allocated on demand, so producers never
    block and never overwrite live frames.
    """

    mode = "shm"

    def __init__(self, slots_per_segment: int = 16) -> None:
        if slots_per_segment < 1:
            raise ValueError("slots_per_segment must be >= 1")
        self.slots_per_segment = slots_per_segment
        self._segments: Dict[str, _ShmSegment] = {}
        self._by_size: Dict[int, List[str]] = {}
        self.frames_sent = 0
        self.segments_allocated = 0

    def _allocate_segment(self, slot_bytes: int) -> _ShmSegment:
        slots = self.slots_per_segment
        size = slots * (_SLOT_HEADER_BYTES + slot_bytes)
        shm = _create_segment_memory(size)
        # A fresh mapping is zero-filled: every header reads generation 0,
        # state FREE.
        segment = _ShmSegment(shm, slot_bytes, slots)
        self._segments[shm.name] = segment
        self._by_size.setdefault(slot_bytes, []).append(shm.name)
        self.segments_allocated += 1
        return segment

    def _claim_slot(self, slot_bytes: int) -> Tuple[_ShmSegment, int]:
        for name in self._by_size.get(slot_bytes, ()):
            segment = self._segments[name]
            for slot in range(segment.slots):
                if segment.state(slot) == _SLOT_FREE:
                    return segment, slot
        return self._allocate_segment(slot_bytes), 0

    def send(self, frame: np.ndarray) -> FrameRef:
        """Write ``frame`` into a free slot and return its reference."""
        array = np.ascontiguousarray(frame)
        if array.nbytes == 0:
            raise ValueError("cannot ship an empty frame")
        segment, slot = self._claim_slot(array.nbytes)
        generation = segment.generations[slot] + 1
        segment.generations[slot] = generation
        header = segment.header_offset(slot)
        data = segment.data_offset(slot)
        buf = segment.shm.buf
        buf[header : header + 8] = generation.to_bytes(8, "little")
        buf[data : data + array.nbytes] = array.tobytes()
        buf[header + 8] = _SLOT_FULL
        self.frames_sent += 1
        return FrameRef(
            segment=segment.shm.name,
            slot=slot,
            generation=generation,
            shape=tuple(array.shape),
            dtype=str(array.dtype),
            data_offset=data,
            header_offset=header,
        )

    @property
    def slots_in_flight(self) -> int:
        return sum(
            1
            for segment in self._segments.values()
            for slot in range(segment.slots)
            if segment.state(slot) == _SLOT_FULL
        )

    def release(self, ref: FrameRef) -> None:
        """Producer-side slot release for a frame that never reached a shard.

        Consumers normally release slots through their
        :class:`SharedMemorySlotReader`; when a submit fails client-side
        (dead worker, failed stream) the producer hands the slot back
        itself so in-flight failures cannot leak ring capacity.  Stale
        refs (slot already recycled) are ignored.
        """
        segment = self._segments.get(ref.segment)
        if segment is None or segment.generations[ref.slot] != ref.generation:
            return
        segment.shm.buf[ref.header_offset + 8] = _SLOT_FREE

    def close(self) -> None:
        for segment in self._segments.values():
            segment.shm.close()
            _unlink_segment_memory(segment.shm)
        self._segments.clear()
        self._by_size.clear()


def _shm_supports_track() -> bool:
    try:
        import inspect

        signature = inspect.signature(shared_memory.SharedMemory.__init__)
        return "track" in signature.parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic interpreters
        return False


#: Whether SharedMemory has the ``track`` parameter (Python 3.13+).
_SHM_HAS_TRACK = _shm_supports_track()


def _create_segment_memory(size: int) -> shared_memory.SharedMemory:
    """Create a segment the transport owns manually (no tracker autoclean).

    ``resource_tracker`` bookkeeping must stay balanced across the producer
    and fork-children (they share one tracker process): if both the
    producer's unlink and a worker's attach-unregister touch the same
    entry, the tracker's cache underflows and it logs KeyErrors at
    shutdown.  So the producer deregisters right after create and takes
    explicit responsibility for unlinking in :meth:`close` (which every
    executor teardown path calls); a hard crash before close leaks the
    segment to ``/dev/shm``, the price of deterministic bookkeeping.
    """
    if _SHM_HAS_TRACK:
        return shared_memory.SharedMemory(create=True, size=size, track=False)
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass
    return shm


def _unlink_segment_memory(shm: shared_memory.SharedMemory) -> None:
    """Unlink a manually-owned segment, keeping the tracker balanced.

    Pre-3.13 ``unlink()`` unconditionally deregisters, so the entry is
    re-registered first to cancel that out; with ``track=False`` (3.13+)
    ``unlink()`` leaves the tracker alone and no dance is needed.
    """
    if not _SHM_HAS_TRACK:
        try:  # pragma: no cover - depends on interpreter internals
            from multiprocessing import resource_tracker

            resource_tracker.register(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without re-registering ownership.

    The producer owns (and unlinks) every segment; a consumer attaching
    through the default constructor would get the segment re-registered
    with its own ``resource_tracker``, which then spuriously unlinks it —
    and warns — at interpreter shutdown.  Python 3.13 grew ``track=False``
    for exactly this; on older versions unregister by hand.
    """
    if _SHM_HAS_TRACK:
        return shared_memory.SharedMemory(name=name, track=False)
    shm = shared_memory.SharedMemory(name=name)
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass
    return shm


class SharedMemorySlotReader:
    """Consumer side of :class:`SharedMemoryTransport` (one per worker)."""

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}

    def _attach(self, name: str) -> shared_memory.SharedMemory:
        shm = self._segments.get(name)
        if shm is None:
            shm = _attach_segment(name)
            self._segments[name] = shm
        return shm

    def _check(self, ref: FrameRef, shm: shared_memory.SharedMemory) -> None:
        header = ref.header_offset
        generation = int.from_bytes(shm.buf[header : header + 8], "little")
        state = shm.buf[header + 8]
        if generation != ref.generation or state != _SLOT_FULL:
            raise RuntimeError(
                f"stale frame ref: segment {ref.segment} slot {ref.slot} holds "
                f"generation {generation} (state {state}), ref expects "
                f"generation {ref.generation}"
            )

    def read(self, ref: FrameRef) -> np.ndarray:
        """Zero-copy ndarray view of the referenced slot."""
        shm = self._attach(ref.segment)
        self._check(ref, shm)
        return np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf, offset=ref.data_offset
        )

    def release(self, ref: FrameRef) -> None:
        """Hand the slot back to the producer for reuse."""
        shm = self._attach(ref.segment)
        self._check(ref, shm)
        shm.buf[ref.header_offset + 8] = _SLOT_FREE

    def close(self) -> None:
        for shm in self._segments.values():
            shm.close()
        self._segments.clear()


# ----------------------------------------------------------------------
# The scheduling core
# ----------------------------------------------------------------------
class _ShardStream:
    """One stream a shard owns: session + frame queue + deferral state."""

    def __init__(self, key: str, session) -> None:
        self.key = key
        self.session = session
        #: Queue of (payload, truth, force_inference, defer_inference,
        #: degradation_note, enqueue_time); the payload is a FrameRef in
        #: worker shards, an ndarray in-process.
        self.queue: Deque[
            Tuple[object, Optional[Sequence[Detection]], bool, bool, str, float]
        ] = deque()
        #: Scheduling rounds this stream's head frame has sat as a deferred
        #: I-frame (energy policy's age-based deadline).
        self.i_head_rounds = 0
        self.kept_telemetry: List[FrameTelemetry] = []

    def head_kind(self) -> Optional[FrameKind]:
        if not self.queue:
            return None
        _, _, force, defer, _, _ = self.queue[0]
        if force:
            return FrameKind.INFERENCE
        return self.session.next_frame_kind(assume_defer=defer)


class StreamShard:
    """Schedules N sessions it owns end-to-end; the one scheduling core.

    This is the two-phase pump that used to live inside the multiplexer:

    1. **E-phase** — walk the streams in policy order (round-robin for
       ``fair``, deepest-backlog-first for ``energy``), letting each
       process up to ``e_frame_burst`` queued frames as long as the
       session predicts they are cheap E-frames.
    2. **I-phase** — gather the streams whose next frame needs full
       inference and dispatch up to ``max_inference_batch`` of them
       back-to-back as one batch.  The ``energy`` policy defers a partial
       batch — unless a gathered stream breaches its deadline (queue
       depth or rounds-deferred reaching ``deadline_frames``) or nothing
       else was processed this round.

    Mis-predictions are benign: the authoritative I/E decision is made
    inside ``session.submit`` exactly as in the batch pipeline.  The same
    instance runs in-process (single-shard executor, the multiplexer's
    serial path) and inside worker processes (``workers > 1``), which is
    what makes sharded and serial execution bit-identical by construction.
    """

    def __init__(
        self,
        pipeline: "EuphratesPipeline",
        schedule: ShardSchedule,
        *,
        name: str = "shard0",
        reader: Optional[SharedMemorySlotReader] = None,
        isolate_failures: bool = False,
    ) -> None:
        self.pipeline = pipeline
        self.schedule = schedule
        self.name = name
        self._reader = reader
        #: When set, a session exception fails only that stream — the queue
        #: is discarded (slots released), the failure recorded in
        #: :attr:`stream_failures`, and every other stream keeps running.
        #: Off by default: the batch paths want the historical semantics
        #: where the head frame is re-queued and the exception propagates
        #: (the caller may retry, e.g. resubmitting with first-frame truth).
        self.isolate_failures = isolate_failures
        #: key -> traceback text for every stream this shard has failed.
        self.stream_failures: Dict[str, str] = {}
        self._new_failures: List[Tuple[str, str]] = []
        self._streams: Dict[str, _ShardStream] = {}
        self._order: List[str] = []
        self._rr_offset = 0
        self._batch_counter = 0

    # -- stream management ---------------------------------------------
    def open_stream(self, key: str, **session_kwargs) -> None:
        if key in self._streams:
            raise ValueError(f"stream '{key}' already exists")
        session = self.pipeline.open_session(**session_kwargs)
        self._streams[key] = _ShardStream(key, session)
        self._order.append(key)

    def stream(self, key: str) -> _ShardStream:
        try:
            return self._streams[key]
        except KeyError:
            raise KeyError(f"unknown stream '{key}'") from None

    def enqueue(
        self,
        key: str,
        payload: object,
        truth: Optional[Sequence[Detection]],
        force_inference: bool,
        defer_inference: bool = False,
        note: str = "",
    ) -> None:
        self.stream(key).queue.append(
            (payload, truth, force_inference, defer_inference, note, time.perf_counter())
        )

    def take_new_failures(self) -> List[Tuple[str, str]]:
        """Drain stream failures recorded since the last call."""
        taken, self._new_failures = self._new_failures, []
        return taken

    def _fail_stream(self, key: str, tb: str) -> None:
        """Tear down one stream after an isolated failure."""
        stream = self._streams.pop(key, None)
        if stream is None:
            return
        self._order.remove(key)
        self.stream_failures[key] = tb
        self._new_failures.append((key, tb))
        for payload, *_ in stream.queue:
            if isinstance(payload, FrameRef) and self._reader is not None:
                try:
                    self._reader.release(payload)
                except Exception:  # pragma: no cover - slot already recycled
                    pass
        stream.queue.clear()
        try:
            stream.session.finish()
        except Exception:
            pass

    def pending(self) -> int:
        return sum(len(stream.queue) for stream in self._streams.values())

    def pending_for(self, key: str) -> int:
        return len(self.stream(key).queue)

    # -- scheduling ----------------------------------------------------
    def _process_head(
        self, stream: _ShardStream, batch_size: int, batch_id: int
    ) -> FrameRecord:
        payload, truth, force, defer, note, enqueued_at = stream.queue.popleft()
        frame = self._reader.read(payload) if isinstance(payload, FrameRef) else payload
        start = time.perf_counter()
        try:
            result = stream.session.submit(
                frame,
                truth=truth,
                force_inference=force,
                defer_inference=defer,
                degradation=note,
            )
        except BaseException:
            # Put the frame back so the stream stays aligned with its queue
            # and the caller can retry (the session rolls itself back for
            # pre-ISP failures, e.g. missing first-frame truth).
            stream.queue.appendleft((payload, truth, force, defer, note, enqueued_at))
            raise
        elapsed = time.perf_counter() - start
        if isinstance(payload, FrameRef):
            # The session never retains the caller's buffer past submit
            # (the ISP denoiser widens to float64 working copies, the
            # oracle copies frame 0), so the slot can be recycled now.
            self._reader.release(payload)
        events = stream.session.take_telemetry()
        if self.schedule.keep_telemetry:
            stream.kept_telemetry.extend(events)
        return FrameRecord(
            shard=self.name,
            key=stream.key,
            frame_index=result.frame_index,
            kind=result.kind,
            batch_size=batch_size,
            batch_id=batch_id,
            busy_s=elapsed,
            wait_s=max(0.0, start - enqueued_at),
            telemetry=events[-1] if events else None,
        )

    def _deadline_breached(self, stream: _ShardStream) -> bool:
        return (
            len(stream.queue) >= self.schedule.deadline_frames
            or stream.i_head_rounds >= self.schedule.deadline_frames
        )

    def _process_safe(
        self, stream: _ShardStream, batch_size: int, batch_id: int,
        records: List[FrameRecord],
    ) -> bool:
        """Process one head frame, failing only its stream under isolation."""
        try:
            records.append(self._process_head(stream, batch_size, batch_id))
            return True
        except BaseException:
            if not self.isolate_failures:
                raise
            self._fail_stream(stream.key, traceback.format_exc())
            return False

    def pump(self) -> List[FrameRecord]:
        """Run one scheduling round; return a record per processed frame."""
        schedule = self.schedule
        records: List[FrameRecord] = []
        active = [self._streams[key] for key in self._order if key in self._streams]
        if schedule.policy == "energy":
            # Deadline pressure first: the deepest backlog is the stream
            # closest to missing its (frame-budget) deadline.
            order = sorted(active, key=lambda stream: -len(stream.queue))
        elif active:
            # One rotation per round (shared by both phases), so the lead
            # position really cycles over every stream.
            offset = self._rr_offset % len(active)
            self._rr_offset += 1
            order = active[offset:] + active[:offset]
        else:
            order = []

        for stream in order:
            burst = 0
            while (
                burst < schedule.e_frame_burst
                and stream.queue
                and stream.head_kind() is FrameKind.EXTRAPOLATION
            ):
                if not self._process_safe(stream, 1, -1, records):
                    break
                burst += 1

        batch = [
            stream
            for stream in order
            if stream.key in self._streams
            and stream.queue
            and stream.head_kind() is FrameKind.INFERENCE
        ]
        if batch and schedule.policy == "energy":
            for stream in batch:
                stream.i_head_rounds += 1
            dispatch = (
                len(batch) >= schedule.max_inference_batch
                or any(self._deadline_breached(stream) for stream in batch)
                or not records
            )
            if not dispatch:
                batch = []
            else:
                # Most-overdue heads board first (age, then queue depth):
                # the batch is about to be truncated, and the whole point
                # of the deadline is that an aged head cannot keep losing
                # its seat to deeper queues round after round.
                batch.sort(
                    key=lambda stream: (-stream.i_head_rounds, -len(stream.queue))
                )
        batch = batch[: schedule.max_inference_batch]
        if batch:
            batch_id = self._batch_counter
            self._batch_counter += 1
            for stream in batch:
                stream.i_head_rounds = 0
                self._process_safe(stream, len(batch), batch_id, records)
        return records

    def drain(self) -> List[FrameRecord]:
        """Pump until every queue is empty."""
        records: List[FrameRecord] = []
        while self.pending():
            before = self.pending()
            round_records = self.pump()
            if not round_records and self.pending() >= before:
                # Cannot happen with the two-phase pump (every head frame is
                # either E or I, and an isolated failure empties its queue),
                # but guard against a livelocked scheduler.
                raise RuntimeError("scheduler made no progress with frames pending")
            records.extend(round_records)
        return records

    def finish_stream(self, key: str) -> Tuple[SequenceResult, "SessionStats"]:
        stream = self.stream(key)
        if stream.queue:
            raise RuntimeError(
                f"stream '{key}' still has {len(stream.queue)} pending frames; "
                "drain before finishing"
            )
        result = stream.session.finish()
        if self.schedule.keep_telemetry:
            # The shard drained telemetry per frame; hand it back on the
            # result so sharded run_dataset matches serial run() outputs.
            result = SequenceResult(
                sequence_name=result.sequence_name,
                frames=result.frames,
                telemetry=list(stream.kept_telemetry),
            )
        stats = stream.session.stats
        del self._streams[key]
        self._order.remove(key)
        return result, stats


# ----------------------------------------------------------------------
# Worker process protocol
# ----------------------------------------------------------------------
def _shard_worker_main(
    conn,
    pipeline_blob: bytes,
    schedule: ShardSchedule,
    shard_name: str,
    isolate_failures: bool = False,
) -> None:
    """Entry point of one shard worker process.

    Control protocol (all messages tuples, tag first):

    * main -> worker: ``("open", key, kwargs)``, ``("frame", key, ref,
      truth, force, defer, note)``, ``("drain",)``, ``("finish", key)``,
      ``("stop",)``.
    * worker -> main: ``("opened", key)``, ``("records", [FrameRecord])``,
      ``("drained", shard)``, ``("finished", key, result, stats)``,
      ``("stream_error", key, traceback)``, ``("error", shard, traceback)``.

    With ``isolate_failures`` a session exception fails only its stream
    (reported as ``stream_error``; the worker keeps pumping the rest).
    Otherwise an error pauses the worker (no pumping) until the next
    message arrives, so a poisoned head frame cannot spam the pipe.
    """
    pipeline = pickle.loads(pipeline_blob)
    reader = SharedMemorySlotReader()
    core = StreamShard(
        pipeline,
        schedule,
        name=shard_name,
        reader=reader,
        isolate_failures=isolate_failures,
    )
    drain_requested = False
    paused = False

    def flush_failures() -> None:
        for key, tb in core.take_new_failures():
            conn.send(("stream_error", key, tb))

    def handle(message) -> str:
        nonlocal drain_requested
        tag = message[0]
        if tag == "stop":
            return "stop"
        if tag == "frame":
            _, key, payload, truth, force, defer, note = message
            if key in core.stream_failures:
                # The client raced a submit against this stream's failure
                # notice; drop the frame but hand its slot back.
                if isinstance(payload, FrameRef):
                    reader.release(payload)
                return "continue"
            core.enqueue(key, payload, truth, force, defer, note)
            return "continue"
        if tag == "drain":
            drain_requested = True
            return "continue"
        if tag == "open":
            _, key, kwargs = message
            try:
                core.open_stream(key, **kwargs)
            except Exception:
                conn.send(("error", shard_name, traceback.format_exc()))
                return "pause"
            conn.send(("opened", key))
            return "continue"
        if tag == "finish":
            _, key = message
            try:
                while (
                    key not in core.stream_failures and core.pending_for(key)
                ):
                    before = core.pending()
                    records = core.pump()
                    flush_failures()
                    if not records and core.pending() >= before:
                        raise RuntimeError(
                            "scheduler made no progress with frames pending"
                        )
                    if records:
                        conn.send(("records", records))
                if key in core.stream_failures:
                    conn.send(("stream_error", key, core.stream_failures[key]))
                    return "continue"
                result, stats = core.finish_stream(key)
            except Exception:
                conn.send(("error", shard_name, traceback.format_exc()))
                return "pause"
            conn.send(("finished", key, result, stats))
            return "continue"
        conn.send(("error", shard_name, f"unknown message tag {message[0]!r}"))
        return "pause"

    try:
        while True:
            if paused or not core.pending():
                if drain_requested and not core.pending():
                    conn.send(("drained", shard_name))
                    drain_requested = False
                    continue
                try:
                    message = conn.recv()
                except EOFError:
                    break
                paused = False
                action = handle(message)
                if action == "stop":
                    break
                if action == "pause":
                    paused = True
                continue
            # Frames pending: absorb whatever control traffic has arrived
            # without blocking, then run one scheduling round.
            stopped = False
            while conn.poll(0):
                try:
                    message = conn.recv()
                except EOFError:
                    return
                action = handle(message)
                if action == "stop":
                    stopped = True
                    break
                if action == "pause":
                    paused = True
                    break
            if stopped:
                break
            if paused:
                continue
            try:
                records = core.pump()
            except Exception:
                conn.send(("error", shard_name, traceback.format_exc()))
                paused = True
                continue
            flush_failures()
            if records:
                conn.send(("records", records))
    finally:
        reader.close()
        conn.close()


# ----------------------------------------------------------------------
# Shard frontends (what the executor talks to)
# ----------------------------------------------------------------------
class _InProcessShard:
    """Single-shard fallback: the scheduling core runs in this process."""

    is_process = False

    def __init__(
        self,
        pipeline: "EuphratesPipeline",
        schedule: ShardSchedule,
        *,
        isolate_failures: bool = False,
    ) -> None:
        self.name = "shard0"
        self.core = StreamShard(
            pipeline, schedule, name=self.name, isolate_failures=isolate_failures
        )
        #: Shard-level failure reason; an in-process shard cannot crash
        #: independently of the client, so this stays ``None`` (mirrors the
        #: :class:`_ProcessShard` attribute for uniform executor handling).
        self.failure: Optional[str] = None
        self._buffered: List[FrameRecord] = []

    @property
    def stream_errors(self) -> Dict[str, str]:
        return self.core.stream_failures

    def open_stream(self, key: str, **kwargs) -> None:
        self.core.open_stream(key, **kwargs)

    def submit(self, key, payload, truth, force, defer=False, note="") -> None:
        self.core.enqueue(key, payload, truth, force, defer, note)

    def collect(self) -> List[FrameRecord]:
        """One scheduling round (the in-process analogue of 'poll')."""
        records, self._buffered = self._buffered, []
        if self.core.pending():
            records.extend(self.core.pump())
        return records

    def drain(self) -> List[FrameRecord]:
        records, self._buffered = self._buffered, []
        records.extend(self.core.drain())
        return records

    def finish_stream(self, key: str):
        # Mirror the worker shards' behavior: pump this stream's own queue
        # dry first, buffering the records for the next pump()/drain().
        while (
            key not in self.core.stream_failures and self.core.pending_for(key)
        ):
            self._buffered.extend(self.core.pump())
        if key in self.core.stream_failures:
            raise StreamFailedError(
                key,
                f"stream '{key}' failed on {self.name}:\n"
                f"{self.core.stream_failures[key]}",
            )
        return self.core.finish_stream(key)

    def pending_for(self, key: str) -> int:
        return self.core.pending_for(key)

    def outstanding(self) -> int:
        return self.core.pending()

    def close(self) -> None:
        pass


class _ProcessShard:
    """Pipe frontend to one worker process owning its sessions end-to-end."""

    is_process = True

    def __init__(
        self,
        index: int,
        ctx,
        pipeline_blob: bytes,
        schedule: ShardSchedule,
        *,
        isolate_failures: bool = False,
    ) -> None:
        self.name = f"shard{index}"
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, pipeline_blob, schedule, self.name, isolate_failures),
            name=f"repro-{self.name}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self._records: List[FrameRecord] = []
        self._opened: set = set()
        self._finished: Dict[str, tuple] = {}
        self._pending: Dict[str, int] = {}
        self._drained = False
        #: key -> traceback text for streams the worker failed in isolation.
        self.stream_errors: Dict[str, str] = {}
        #: Shard-level failure reason (dead worker / broken pipe).  Once
        #: set, the executor scopes the loss to this shard's streams.
        self.failure: Optional[str] = None

    # -- message plumbing ----------------------------------------------
    def _dead(self, context: str = "") -> ShardError:
        detail = f" (exit code {self.process.exitcode})" if not self.process.is_alive() else ""
        reason = f"worker process for {self.name} died unexpectedly{detail}"
        if context:
            reason = f"{reason}: {context}"
        self.failure = self.failure or reason
        return ShardError(self.failure)

    def _send(self, message) -> None:
        if self.failure is not None:
            raise ShardError(self.failure)
        _assert_frame_free(message)
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as error:
            raise self._dead(str(error)) from error

    def _absorb(self, message) -> None:
        tag = message[0]
        if tag == "records":
            for record in message[1]:
                if record.key in self._pending:
                    self._pending[record.key] -= 1
            self._records.extend(message[1])
        elif tag == "finished":
            self._finished[message[1]] = (message[2], message[3])
        elif tag == "drained":
            self._drained = True
        elif tag == "opened":
            self._opened.add(message[1])
        elif tag == "stream_error":
            # Isolated failure: only this stream is lost; the worker keeps
            # serving its other streams.
            self.stream_errors[message[1]] = message[2]
            self._pending[message[1]] = 0
        elif tag == "error":
            raise ShardError(
                f"worker for {self.name} failed:\n{message[2]}"
            )
        else:  # pragma: no cover - protocol invariant
            raise ShardError(f"unknown worker message tag {tag!r}")

    def _pump_pipe(self) -> None:
        """Absorb everything the worker has sent without blocking."""
        try:
            while self.conn.poll(0):
                self._absorb(self.conn.recv())
        except (EOFError, OSError) as error:
            raise self._dead(str(error) or type(error).__name__) from error

    def _wait(self, predicate) -> None:
        while not predicate():
            try:
                if self.conn.poll(0.05):
                    self._absorb(self.conn.recv())
                    continue
            except (EOFError, OSError) as error:
                raise self._dead(str(error) or type(error).__name__) from error
            if not self.process.is_alive():
                # Drain whatever the dying worker managed to flush before
                # declaring it gone (the pipe may still buffer messages).
                try:
                    while self.conn.poll(0):
                        self._absorb(self.conn.recv())
                except (EOFError, OSError):
                    pass
                if predicate():
                    return
                raise self._dead()

    # -- shard interface -----------------------------------------------
    def open_stream(self, key: str, **kwargs) -> None:
        self._pending[key] = 0
        self._send(("open", key, kwargs))
        self._wait(lambda: key in self._opened)

    def submit(self, key, payload, truth, force, defer=False, note="") -> None:
        self._send(("frame", key, payload, truth, force, defer, note))
        self._pending[key] = self._pending.get(key, 0) + 1

    def collect(self) -> List[FrameRecord]:
        self._pump_pipe()
        records, self._records = self._records, []
        return records

    def drain(self) -> List[FrameRecord]:
        self._drained = False
        self._send(("drain",))
        self._wait(lambda: self._drained)
        records, self._records = self._records, []
        return records

    def finish_stream(self, key: str):
        if key in self.stream_errors:
            raise StreamFailedError(
                key,
                f"stream '{key}' failed on {self.name}:\n{self.stream_errors[key]}",
            )
        self._send(("finish", key))
        self._wait(lambda: key in self._finished or key in self.stream_errors)
        self._pending.pop(key, None)
        if key in self.stream_errors:
            raise StreamFailedError(
                key,
                f"stream '{key}' failed on {self.name}:\n{self.stream_errors[key]}",
            )
        return self._finished.pop(key)

    def pending_for(self, key: str) -> int:
        self._pump_pipe()
        return self._pending.get(key, 0)

    def outstanding(self) -> int:
        self._pump_pipe()
        return sum(self._pending.values())

    def close(self) -> None:
        try:
            if self.failure is None and self.process.is_alive():
                self._send(("stop",))
            self.process.join(timeout=5.0)
        except (BrokenPipeError, OSError, ShardError):  # pragma: no cover - dying worker
            pass
        finally:
            if self.process.is_alive():  # pragma: no cover - stuck worker
                self.process.terminate()
                self.process.join(timeout=5.0)
            self.conn.close()


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class ShardedExecutor:
    """Places streams onto shards; one execution layer for sweeps and serving.

    ``workers <= 1`` runs a single in-process shard over the in-process
    transport — semantically (and bit-) identical to the pre-sharding
    serial paths, so single-core CI and the oracle path are unchanged.
    ``workers = N`` forks N shard workers; streams are placed round-robin,
    frames cross over the shared-memory transport, and only small control
    messages are ever pickled.

    Lifecycle: :meth:`open_stream` places a stream on a shard (the
    placement is deterministic in arrival order — worker count never
    changes outputs), :meth:`submit` hands it frames, :meth:`pump` /
    :meth:`drain` collect completed :class:`FrameRecord` batches, and
    :meth:`finish_stream` closes one stream and returns its
    :class:`~repro.core.types.SequenceResult` plus session stats.
    :meth:`run_sequences` wraps that cycle for batch sweeps; the serving
    front end (:class:`~repro.core.ingest.IngestCore` via
    :class:`~repro.core.streaming.StreamMultiplexer`) drives it
    incrementally.  Always :meth:`close` (or use as a context manager) so
    worker processes and shared-memory segments are reclaimed.

    ``isolate_failures=True`` turns a stream crash inside a shard into a
    per-stream failure recorded in :attr:`stream_failures` instead of
    tearing down the executor — the serving path uses this so one bad
    camera cannot take down the fleet.
    """

    def __init__(
        self,
        pipeline: "EuphratesPipeline",
        *,
        workers: int = 1,
        transport: str = "auto",
        schedule: Optional[ShardSchedule] = None,
        isolate_failures: bool = False,
    ) -> None:
        spec = ExecutionSpec(workers=workers, transport=transport)  # validates
        if spec.transport == "pickle":
            raise ValueError(
                "transport='pickle' selects the legacy run_dataset fallback; "
                "the executor supports 'auto', 'shm' and 'inproc'"
            )
        self.schedule = schedule or ShardSchedule()
        self.pipeline = pipeline
        self.workers = spec.workers
        if spec.workers <= 1:
            # Graceful fallback: a single shard needs no process boundary,
            # whatever transport was asked for.
            self.transport_mode = "inproc"
        elif spec.transport == "inproc":
            raise ValueError(
                "transport='inproc' cannot cross process boundaries; "
                "use workers=1 or transport='shm'"
            )
        else:
            self.transport_mode = "shm"

        self.isolate_failures = bool(isolate_failures)
        self._sources: Dict[str, "VideoSequence"] = {}
        self._assignment: Dict[str, object] = {}
        self._order: List[str] = []
        self._submitted: Dict[str, int] = {}
        self._stray_records: List[FrameRecord] = []
        #: key -> reason for streams lost to an isolated failure (their own
        #: session crashing, or their shard's worker process dying).
        self._failures: Dict[str, str] = {}
        self._closed = False

        if self.transport_mode == "inproc":
            self.transport = InProcessTransport()
            self._shards: List[object] = [
                _InProcessShard(
                    pipeline, self.schedule, isolate_failures=self.isolate_failures
                )
            ]
        else:
            self.transport = SharedMemoryTransport()
            methods = get_all_start_methods()
            ctx = get_context("fork" if "fork" in methods else "spawn")
            blob = pickle.dumps(pipeline)
            self._shards = [
                _ProcessShard(
                    index,
                    ctx,
                    blob,
                    self.schedule,
                    isolate_failures=self.isolate_failures,
                )
                for index in range(self.workers)
            ]

    # -- stream management ---------------------------------------------
    def open_stream(
        self,
        key: str,
        *,
        source: "VideoSequence | None" = None,
        name: Optional[str] = None,
        width: Optional[int] = None,
        height: Optional[int] = None,
        backend=None,
        window_controller=None,
    ) -> None:
        """Open one stream on the next shard (round-robin placement)."""
        if self._closed:
            raise RuntimeError("executor is closed")
        if key in self._assignment:
            raise ValueError(f"stream '{key}' already exists")
        shard = self._shards[len(self._order) % len(self._shards)]
        kwargs: Dict[str, object] = {
            "name": name,
            "backend": backend,
            "window_controller": window_controller,
        }
        if shard.is_process and source is not None:
            # Worker shards never receive the sequence (its frame stack
            # would be pickled wholesale).  They open an oracle-fed session
            # with the source's geometry; the executor feeds frames over
            # the transport and ground truth per submit.  ``oracle_name``
            # keeps the oracle presenting the true sequence name, so
            # simulated backends seeded by sequence name stay bit-identical
            # to a sequence-bound session.
            kwargs.update(
                width=source.width,
                height=source.height,
                name=name or source.name,
                oracle_name=source.name,
                oracle_labels=dict(source.labels),
            )
            self._sources[key] = source
        else:
            kwargs.update(source=source, width=width, height=height)
        shard.open_stream(key, **kwargs)
        self._assignment[key] = shard
        self._order.append(key)
        self._submitted[key] = 0

    def shard_of(self, key: str):
        try:
            return self._assignment[key]
        except KeyError:
            raise KeyError(f"unknown stream '{key}'") from None

    # -- failure scoping -------------------------------------------------
    @property
    def stream_failures(self) -> Dict[str, str]:
        """key -> reason for every stream lost to an isolated failure."""
        self._sync_failures()
        return dict(self._failures)

    def _sync_failures(self) -> None:
        for shard in self._shards:
            for key, reason in shard.stream_errors.items():
                self._failures.setdefault(
                    key, f"stream '{key}' failed on {shard.name}:\n{reason}"
                )

    def _fail_shard(self, shard, reason: str) -> None:
        """Scope the loss of one shard to the streams placed on it."""
        shard.failure = shard.failure or reason
        for key in [k for k, s in self._assignment.items() if s is shard]:
            self._failures.setdefault(key, f"stream '{key}' lost: {reason}")

    def _shard_failed(self, shard, error: ShardError) -> None:
        """Handle a shard-level error according to the isolation policy."""
        if not self.isolate_failures:
            raise error
        self._fail_shard(shard, str(error))

    def _forget(self, key: str) -> None:
        self._assignment.pop(key, None)
        if key in self._order:
            self._order.remove(key)
        self._sources.pop(key, None)
        self._submitted.pop(key, None)

    def _raise_failed(self, key: str) -> None:
        raise StreamFailedError(key, self._failures[key])

    # -- frame ingress --------------------------------------------------
    def submit(
        self,
        key: str,
        frame: np.ndarray,
        *,
        truth: Optional[Sequence[Detection]] = None,
        force_inference: bool = False,
        defer_inference: bool = False,
        degradation: str = "",
    ) -> None:
        self._sync_failures()
        if key in self._failures:
            self._raise_failed(key)
        shard = self.shard_of(key)
        if shard.failure is not None:
            self._shard_failed(shard, ShardError(shard.failure))
            self._raise_failed(key)
        source = self._sources.get(key)
        if source is not None and truth is None:
            # Sequence-bound streams on worker shards: the oracle needs the
            # truth a sequence-bound session would have read itself.
            truth = source.truth_detections(self._submitted[key])
        payload = self.transport.send(frame)
        try:
            shard.submit(
                key, payload, truth, force_inference, defer_inference, degradation
            )
        except ShardError as error:
            # The frame never reached the shard: hand its slot back so a
            # dead worker doesn't leak ring-buffer capacity.
            release = getattr(self.transport, "release", None)
            if release is not None and isinstance(payload, FrameRef):
                release(payload)
            self._shard_failed(shard, error)
            self._raise_failed(key)
        self._submitted[key] += 1

    def pending_for(self, key: str) -> int:
        if key in self._failures:
            return 0
        shard = self.shard_of(key)
        try:
            return shard.pending_for(key)
        except ShardError as error:
            self._shard_failed(shard, error)
            return 0

    @property
    def pending_frames(self) -> int:
        total = 0
        for shard in self._shards:
            if shard.failure is not None:
                continue
            try:
                total += shard.outstanding()
            except ShardError as error:
                self._shard_failed(shard, error)
        return total

    # -- scheduling ------------------------------------------------------
    def pump(self) -> List[FrameRecord]:
        """Collect one round of progress from every shard.

        In-process this runs one scheduling round; with worker shards it
        absorbs whatever records have arrived (the workers pump on their
        own).
        """
        records = self._stray_records
        self._stray_records = []
        for shard in self._shards:
            if shard.failure is not None:
                continue
            try:
                records.extend(shard.collect())
            except ShardError as error:
                self._shard_failed(shard, error)
        self._sync_failures()
        return records

    def drain(self) -> List[FrameRecord]:
        """Block until every queue on every live shard is empty."""
        records = self._stray_records
        self._stray_records = []
        for shard in self._shards:
            if shard.failure is not None:
                continue
            try:
                records.extend(shard.drain())
            except ShardError as error:
                self._shard_failed(shard, error)
        self._sync_failures()
        return records

    def finish_stream(self, key: str) -> Tuple[SequenceResult, "SessionStats"]:
        """Close one stream and return its (result, session stats).

        Records produced while the stream's shard catches up are kept and
        handed out by the next :meth:`pump`/:meth:`drain` call, so clients
        tracking per-frame statistics never lose any.  A stream lost to an
        isolated failure raises :class:`StreamFailedError` with the original
        worker traceback; other streams stay serviceable.
        """
        self._sync_failures()
        if key in self._failures:
            self._forget(key)
            self._raise_failed(key)
        shard = self.shard_of(key)
        try:
            result, stats = shard.finish_stream(key)
        except StreamFailedError as error:
            self._failures.setdefault(key, str(error))
            self._forget(key)
            raise
        except ShardError as error:
            self._shard_failed(shard, error)
            self._forget(key)
            self._raise_failed(key)
        if shard.is_process:
            try:
                self._stray_records.extend(shard.collect())
            except ShardError as error:
                self._shard_failed(shard, error)
            # Worker sessions report their finish to the *worker's* pipeline
            # copy; mirror the op total onto the client-side pipeline, which
            # is the aggregate run_dataset and the sweeps report on.
            self.pipeline.total_extrapolation_ops += stats.extrapolation_ops
        self._forget(key)
        return result, stats

    # -- whole-dataset convenience --------------------------------------
    def run_sequences(
        self, sequences: Sequence["VideoSequence"], *, max_outstanding: int = 64
    ) -> List[Tuple[SequenceResult, "SessionStats"]]:
        """Run one stream per sequence to completion; results in order.

        Frames are interleaved round-robin across the sequences so every
        shard keeps all of its streams busy; ``max_outstanding`` bounds the
        frames in flight per shard (which also bounds shared-memory slots).
        """
        sequences = list(sequences)
        keys = [f"seq{index}" for index in range(len(sequences))]
        for key, sequence in zip(keys, sequences):
            self.open_stream(key, source=sequence, name=sequence.name)
        longest = max((s.num_frames for s in sequences), default=0)
        for frame_index in range(longest):
            for key, sequence in zip(keys, sequences):
                if frame_index >= sequence.num_frames:
                    continue
                shard = self.shard_of(key)
                if shard.is_process:
                    # Flow control: absorbed records land in the shard's
                    # buffer and come back from the next drain()/pump().
                    shard._wait(lambda: shard.outstanding() < max_outstanding)
                self.submit(key, sequence.frame(frame_index))
        self.drain()
        return [self.finish_stream(key) for key in keys]

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.close()
        self.transport.close()

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
