"""Multi-stream scheduling: N concurrent camera sessions over one pipeline.

Always-on vision SoCs serve several cameras at once (Starfish, MobiSys'15
makes the case for first-class concurrent-stream support).  The
:class:`StreamMultiplexer` multiplexes any number of
:class:`~repro.core.session.EuphratesSession` objects over one
:class:`~repro.core.pipeline.EuphratesPipeline` template:

* each stream has its own frame queue (frames are pushed as they "arrive"),
  its own backend copy and its own window-controller clone, so streams never
  contaminate each other's algorithm state;
* a fair-share scheduler drains the queues: cheap E-frames (motion
  extrapolation only) are interleaved round-robin so no stream starves,
  while expensive I-frames (full CNN inference) are gathered across streams
  and dispatched in batches — the access pattern a real accelerator wants,
  since weights stay resident across a batch;
* per-stream and aggregate throughput/latency statistics are tracked as
  scheduling happens, feeding ``benchmarks/run_stream_bench.py``.

Because sessions are fully isolated, the per-stream results are bit-identical
to running each sequence through its own pipeline — scheduling order affects
latency, never output (property-tested in ``tests/test_streaming.py``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .session import EuphratesSession
from .types import Detection, FrameKind, SequenceResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..video.sequence import VideoSequence
    from .backends import InferenceBackend
    from .pipeline import EuphratesPipeline
    from .window import WindowController


@dataclass
class StreamStats:
    """Throughput/latency accounting for one stream."""

    name: str
    frames_submitted: int = 0
    frames_processed: int = 0
    inference_frames: int = 0
    extrapolation_frames: int = 0
    #: Seconds spent inside ``session.submit`` for this stream.
    busy_s: float = 0.0
    #: Seconds frames spent queued before the scheduler picked them.
    wait_s: float = 0.0
    max_queue_depth: int = 0

    @property
    def pending(self) -> int:
        return self.frames_submitted - self.frames_processed

    @property
    def inference_rate(self) -> float:
        if not self.frames_processed:
            return 0.0
        return self.inference_frames / self.frames_processed

    @property
    def mean_service_latency_s(self) -> float:
        """Mean per-frame processing time (excluding queueing delay)."""
        if not self.frames_processed:
            return 0.0
        return self.busy_s / self.frames_processed

    @property
    def mean_queue_wait_s(self) -> float:
        if not self.frames_processed:
            return 0.0
        return self.wait_s / self.frames_processed


@dataclass
class MultiplexerReport:
    """Aggregate statistics of one multiplexer drain."""

    streams: List[StreamStats]
    wall_s: float
    frames_processed: int
    inference_frames: int
    extrapolation_frames: int
    inference_batches: int
    #: Sizes of every I-frame batch the scheduler dispatched.
    batch_sizes: List[int] = field(default_factory=list)

    @property
    def aggregate_fps(self) -> float:
        return self.frames_processed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)


class _Stream:
    """Internal per-stream record: session + queue + stats."""

    def __init__(self, stream_id: str, session: EuphratesSession) -> None:
        self.stream_id = stream_id
        self.session = session
        #: Queue of (frame, truth, force_inference, enqueue_time).
        self.queue: Deque[Tuple[np.ndarray, Optional[Sequence[Detection]], bool, float]] = deque()
        self.stats = StreamStats(name=stream_id)
        self.result: Optional[SequenceResult] = None

    @property
    def drained(self) -> bool:
        return not self.queue

    def head_kind(self) -> Optional[FrameKind]:
        """Predicted frame kind of the next queued frame (None when empty)."""
        if not self.queue:
            return None
        _, _, force, _ = self.queue[0]
        if force:
            return FrameKind.INFERENCE
        return self.session.next_frame_kind()


class StreamMultiplexer:
    """Fair-share scheduler for N concurrent Euphrates camera streams.

    ``e_frame_burst`` bounds how many consecutive E-frames one stream may
    process per scheduling round (fairness knob: a stream with a deep queue
    of cheap frames cannot starve the others).  ``max_inference_batch``
    bounds how many I-frames the scheduler groups into one inference batch.
    """

    def __init__(
        self,
        pipeline: "EuphratesPipeline",
        *,
        e_frame_burst: int = 4,
        max_inference_batch: int = 4,
    ) -> None:
        if e_frame_burst < 1:
            raise ValueError("e_frame_burst must be >= 1")
        if max_inference_batch < 1:
            raise ValueError("max_inference_batch must be >= 1")
        self.pipeline = pipeline
        self.e_frame_burst = e_frame_burst
        self.max_inference_batch = max_inference_batch
        self._streams: Dict[str, _Stream] = {}
        self._order: List[str] = []
        self._rr_offset = 0
        self._batch_sizes: List[int] = []
        self._wall_s = 0.0

    # ------------------------------------------------------------------
    # Stream management
    # ------------------------------------------------------------------
    def add_stream(
        self,
        source: "VideoSequence | None" = None,
        *,
        name: Optional[str] = None,
        width: Optional[int] = None,
        height: Optional[int] = None,
        backend: "InferenceBackend | None" = None,
        window_controller: "WindowController | None" = None,
    ) -> str:
        """Register a stream and return its id (the session name).

        Pass ``source`` for a sequence-bound stream (ground truth comes from
        the sequence) or ``width``/``height`` for a live stream whose truth
        arrives per frame via :meth:`submit`.
        """
        if name is None:
            base = source.name if source is not None else "stream"
            name = base
            suffix = 1
            while name in self._streams:
                name = f"{base}#{suffix}"
                suffix += 1
        if name in self._streams:
            raise ValueError(f"stream '{name}' already exists")
        session = self.pipeline.open_session(
            width,
            height,
            source=source,
            name=name,
            backend=backend,
            window_controller=window_controller,
        )
        self._streams[name] = _Stream(name, session)
        self._order.append(name)
        return name

    @property
    def stream_ids(self) -> List[str]:
        return list(self._order)

    def stats_for(self, stream_id: str) -> StreamStats:
        return self._stream(stream_id).stats

    def _stream(self, stream_id: str) -> _Stream:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise KeyError(f"unknown stream '{stream_id}'") from None

    # ------------------------------------------------------------------
    # Frame ingress
    # ------------------------------------------------------------------
    def submit(
        self,
        stream_id: str,
        frame: np.ndarray,
        *,
        truth: Optional[Sequence[Detection]] = None,
        force_inference: bool = False,
    ) -> None:
        """Enqueue one captured frame for ``stream_id`` (non-blocking).

        The frame is copied: live capture loops typically reuse one buffer
        per capture, which would otherwise silently rewrite every frame
        still sitting in the queue.
        """
        stream = self._stream(stream_id)
        stream.queue.append(
            (np.array(frame, copy=True), truth, force_inference, time.perf_counter())
        )
        stream.stats.frames_submitted += 1
        stream.stats.max_queue_depth = max(stream.stats.max_queue_depth, len(stream.queue))

    def feed_sequence(self, stream_id: str, sequence: "VideoSequence") -> None:
        """Enqueue every frame of ``sequence`` on ``stream_id``."""
        for _, frame in sequence.iter_frames():
            self.submit(stream_id, frame)

    @property
    def pending_frames(self) -> int:
        return sum(len(stream.queue) for stream in self._streams.values())

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _process_head(self, stream: _Stream) -> FrameKind:
        frame, truth, force, enqueued_at = stream.queue.popleft()
        start = time.perf_counter()
        try:
            result = stream.session.submit(frame, truth=truth, force_inference=force)
        except BaseException:
            # Put the frame back so the stream stays aligned with its queue
            # and the caller can retry (the session rolls itself back for
            # pre-ISP failures, e.g. missing first-frame truth).
            stream.queue.appendleft((frame, truth, force, enqueued_at))
            raise
        elapsed = time.perf_counter() - start
        stats = stream.stats
        stats.busy_s += elapsed
        stats.wait_s += max(0.0, start - enqueued_at)
        # Frame/I/E counts mirror the session's own accounting (the single
        # source of truth) instead of being tracked twice.
        session_stats = stream.session.stats
        stats.frames_processed = session_stats.frames
        stats.inference_frames = session_stats.inference_frames
        stats.extrapolation_frames = session_stats.extrapolation_frames
        return result.kind

    def _round_robin(self) -> List[_Stream]:
        """Streams in this round's fair-share order (rotating start)."""
        active = [self._streams[name] for name in self._order]
        if not active:
            return []
        offset = self._rr_offset % len(active)
        self._rr_offset += 1
        return active[offset:] + active[:offset]

    def pump(self) -> int:
        """Run one scheduling round; return the number of frames processed.

        A round has two phases:

        1. **E-phase** — round-robin over the streams, letting each process
           up to ``e_frame_burst`` queued frames as long as the session
           predicts they are cheap E-frames.
        2. **I-phase** — gather the streams whose next frame needs full
           inference and dispatch up to ``max_inference_batch`` of them
           back-to-back as one batch (weights stay resident across the
           batch on a real accelerator).

        Mis-predictions are benign: the authoritative I/E decision is made
        inside ``session.submit`` exactly as in the batch pipeline.
        """
        round_start = time.perf_counter()
        processed = 0
        # One rotation per round (shared by both phases), so the lead
        # position really cycles over every stream.
        order = self._round_robin()

        for stream in order:
            burst = 0
            while (
                burst < self.e_frame_burst
                and stream.queue
                and stream.head_kind() is FrameKind.EXTRAPOLATION
            ):
                self._process_head(stream)
                processed += 1
                burst += 1

        batch = [
            stream
            for stream in order
            if stream.queue and stream.head_kind() is FrameKind.INFERENCE
        ][: self.max_inference_batch]
        if batch:
            self._batch_sizes.append(len(batch))
            for stream in batch:
                self._process_head(stream)
                processed += 1

        # Wall time accumulates per round, so callers driving the scheduler
        # through pump() directly (an always-on loop that can never drain)
        # still get meaningful aggregate throughput from report().
        self._wall_s += time.perf_counter() - round_start
        return processed

    def drain(self) -> int:
        """Pump until every queue is empty; return total frames processed."""
        total = 0
        while self.pending_frames:
            processed = self.pump()
            if processed == 0:
                # Cannot happen with the two-phase pump (every head frame is
                # either E or I), but guard against a livelocked scheduler.
                raise RuntimeError("scheduler made no progress with frames pending")
            total += processed
        return total

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finish(self) -> Dict[str, SequenceResult]:
        """Drain every queue, close every session, return per-stream results."""
        self.drain()
        results: Dict[str, SequenceResult] = {}
        for name in self._order:
            stream = self._streams[name]
            if stream.result is None:
                stream.result = stream.session.finish()
            results[name] = stream.result
        return results

    def report(self) -> MultiplexerReport:
        """Aggregate scheduling statistics accumulated so far."""
        stats = [self._streams[name].stats for name in self._order]
        return MultiplexerReport(
            streams=stats,
            wall_s=self._wall_s,
            frames_processed=sum(s.frames_processed for s in stats),
            inference_frames=sum(s.inference_frames for s in stats),
            extrapolation_frames=sum(s.extrapolation_frames for s in stats),
            inference_batches=len(self._batch_sizes),
            batch_sizes=list(self._batch_sizes),
        )

    # ------------------------------------------------------------------
    # Convenience: whole sequences in, results out
    # ------------------------------------------------------------------
    def run_streams(
        self, sequences: Sequence["VideoSequence"]
    ) -> Tuple[Dict[str, SequenceResult], MultiplexerReport]:
        """Feed one stream per sequence, drain, and return (results, report)."""
        for sequence in sequences:
            stream_id = self.add_stream(sequence)
            self.feed_sequence(stream_id, sequence)
        return self.finish(), self.report()
