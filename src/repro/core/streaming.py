"""Multi-stream serving: N concurrent camera sessions over one pipeline.

Always-on vision SoCs serve several cameras at once (Starfish, MobiSys'15
makes the case for first-class concurrent-stream support).  The
:class:`StreamMultiplexer` multiplexes any number of
:class:`~repro.core.session.EuphratesSession` objects over one
:class:`~repro.core.pipeline.EuphratesPipeline` template:

* each stream has its own frame queue (frames are pushed as they "arrive"),
  its own backend copy and its own window-controller clone, so streams never
  contaminate each other's algorithm state;
* scheduling is delegated to the shared execution core
  (:class:`~repro.core.executor.ShardedExecutor`): the fair-share and
  energy/deadline policies run shard-local, so the same scheduler serves
  the in-process single-shard path and ``workers=N`` worker processes
  (frames then cross the process boundary over the zero-copy shared-memory
  transport, never pickled);
* per-stream and aggregate throughput/latency statistics are tracked from
  the executor's per-frame records, feeding
  ``benchmarks/run_stream_bench.py``; with an attached energy model
  (``soc`` + ``network``) each stream's frames are priced on the modeled
  SoC as they are processed — including amortised weight traffic across
  batched I-frames — and a :class:`~repro.soc.frame_cost.SharedSoCPool`
  settles the shared static-power terms exactly once across all streams.

Because sessions are fully isolated, the per-stream results are bit-identical
to running each sequence through its own pipeline — scheduling order and
worker count affect latency, never output (property-tested in
``tests/test_streaming.py`` and ``tests/test_executor.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .executor import (
    SCHEDULING_POLICIES,
    FrameRecord,
    ShardedExecutor,
    ShardSchedule,
    StreamFailedError,
)
from .profiler import stage_seconds
from .types import Detection, FrameKind, SequenceResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..nn.models import NetworkSpec
    from ..soc.config import SoCConfig
    from ..soc.frame_cost import CostMeter, QueueingEstimate
    from ..soc.soc import EnergyBreakdown, VisionSoC
    from ..video.sequence import VideoSequence
    from .backends import InferenceBackend
    from .pipeline import EuphratesPipeline
    from .window import WindowController

__all__ = [
    "SCHEDULING_POLICIES",
    "MultiplexerReport",
    "StreamMultiplexer",
    "StreamStats",
]


@dataclass
class StreamStats:
    """Throughput/latency accounting for one stream."""

    name: str
    frames_submitted: int = 0
    frames_processed: int = 0
    inference_frames: int = 0
    extrapolation_frames: int = 0
    #: Frames processed under duress (telemetry carried a degradation tag:
    #: ``dropped-frame-gap``, ``deferred-inference``, ``queue-degrade``...).
    degraded_frames: int = 0
    #: Seconds spent inside ``session.submit`` for this stream.
    busy_s: float = 0.0
    #: Seconds frames spent queued before the scheduler picked them.
    wait_s: float = 0.0
    max_queue_depth: int = 0
    #: Per-stage wall-clock seconds accumulated from frame telemetry
    #: (keys from :data:`repro.core.profiler.STAGE_NAMES`; empty until the
    #: first frame carrying stage timings is absorbed).
    stage_s: Dict[str, float] = field(default_factory=dict)

    @property
    def pending(self) -> int:
        return self.frames_submitted - self.frames_processed

    @property
    def inference_rate(self) -> float:
        if not self.frames_processed:
            return 0.0
        return self.inference_frames / self.frames_processed

    @property
    def mean_service_latency_s(self) -> float:
        """Mean per-frame processing time (excluding queueing delay)."""
        if not self.frames_processed:
            return 0.0
        return self.busy_s / self.frames_processed

    @property
    def mean_queue_wait_s(self) -> float:
        if not self.frames_processed:
            return 0.0
        return self.wait_s / self.frames_processed


@dataclass
class MultiplexerReport:
    """Aggregate statistics of one multiplexer drain."""

    streams: List[StreamStats]
    wall_s: float
    frames_processed: int
    inference_frames: int
    extrapolation_frames: int
    inference_batches: int
    #: Sizes of every I-frame batch the scheduler dispatched.
    batch_sizes: List[int] = field(default_factory=list)
    #: Modeled SoC energy per stream (present when the multiplexer was
    #: given an energy model; keyed by stream id).  Each breakdown prices
    #: that camera's frames on the modeled SoC — I-frames dispatched in a
    #: batch of k amortise the NNX weight traffic over k streams.
    stream_energy: Dict[str, "EnergyBreakdown"] = field(default_factory=dict)
    #: Exact shared-SoC aggregate: static power (NNX idle, DRAM background,
    #: MC idle) settled once across all streams instead of once per stream.
    #: ``None`` when no energy model is attached.
    shared_energy: "EnergyBreakdown | None" = None
    #: M/D/1 queueing view of the shared backend serving every stream.
    queueing: "QueueingEstimate | None" = None
    #: Execution configuration the run used (for benchmark provenance).
    workers: int = 1
    transport: str = "inproc"

    @property
    def aggregate_fps(self) -> float:
        return self.frames_processed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    # -- energy aggregates (no energy model => zeros) -------------------
    #
    # Each stream's breakdown prices that camera as if it owned the whole
    # modeled SoC.  Summing them therefore counts per-SoC *static* power
    # (NNX idle, DRAM background, MC idle) once per stream — the historical
    # upper bound, still available as ``aggregate_energy_upper_bound_j``.
    # ``shared_energy`` settles those terms exactly once on the shared SoC
    # (dynamic terms, including cross-stream weight-batch amortisation,
    # are identical in both), so the aggregates below report the exact
    # figure whenever an energy model is attached: always <= the upper
    # bound, equal for a single stream.
    @property
    def aggregate_energy_upper_bound_j(self) -> float:
        """Per-stream-sum energy: static power counted once per stream."""
        return sum(b.total_energy_j for b in self.stream_energy.values())

    @property
    def aggregate_energy_j(self) -> float:
        """Total modeled energy (exact shared-SoC figure when metered)."""
        if self.shared_energy is not None:
            return self.shared_energy.total_energy_j
        return self.aggregate_energy_upper_bound_j

    @property
    def aggregate_energy_per_frame_j(self) -> float:
        frames = sum(b.num_frames for b in self.stream_energy.values())
        if not frames:
            return 0.0
        return self.aggregate_energy_j / frames

    @property
    def aggregate_power_w(self) -> float:
        """Aggregate power: streams run concurrently in model time, so the
        denominator is the longest per-stream wall clock, not the sum."""
        wall = max((b.wall_time_s for b in self.stream_energy.values()), default=0.0)
        if wall <= 0:
            return 0.0
        return self.aggregate_energy_j / wall


class _MuxStream:
    """Client-side per-stream record: stats + cost meter (+ result)."""

    def __init__(
        self,
        stream_id: str,
        multiplexer: "StreamMultiplexer",
        meter: "CostMeter | None" = None,
    ) -> None:
        self.stream_id = stream_id
        self._multiplexer = multiplexer
        self.stats = StreamStats(name=stream_id)
        self.result: Optional[SequenceResult] = None
        #: Per-stream SoC cost meter (None when no energy model is attached).
        self.meter = meter

    # -- diagnostics (in-process execution only) ------------------------
    @property
    def session(self):
        """The live session object (single-shard in-process mode only)."""
        return self._core_stream().session

    @property
    def queue(self):
        """The live frame queue (single-shard in-process mode only)."""
        return self._core_stream().queue

    def _core_stream(self):
        shard = self._multiplexer._executor.shard_of(self.stream_id)
        if shard.is_process:
            raise AttributeError(
                "stream internals live in a worker process when workers > 1"
            )
        return shard.core.stream(self.stream_id)


class StreamMultiplexer:
    """Scheduler frontend for N concurrent Euphrates camera streams.

    ``e_frame_burst`` bounds how many consecutive E-frames one stream may
    process per scheduling round (fairness knob: a stream with a deep queue
    of cheap frames cannot starve the others).  ``max_inference_batch``
    bounds how many I-frames the scheduler groups into one inference batch.

    ``policy`` selects the scheduler: ``"fair"`` (default) is the
    round-robin fair-share scheduler; ``"energy"`` is energy/deadline-aware
    — it serves the deepest queues first and *defers* I-frames until a full
    ``max_inference_batch`` is ready (maximising NNX weight reuse), unless
    a ready stream breaches its deadline (queue depth *or* head-frame age
    in scheduling rounds reaches ``deadline_frames``) or no other progress
    was possible this round.  Scheduling order affects latency and
    energy attribution, never outputs — sessions are fully isolated, so
    per-stream results are bit-identical under every policy.

    ``workers`` shards the streams over that many worker processes, each
    owning its sessions end-to-end (the scheduling policies run shard-local
    and frames cross over the shared-memory ``transport``); the default of
    1 keeps everything in-process.  Worker count never changes outputs.

    Passing an energy model (``soc`` + ``network``) attaches one
    :class:`~repro.soc.frame_cost.CostMeter` per stream: every processed
    frame's telemetry is priced as it happens, with batched I-frames
    amortising the weight DRAM traffic over the batch.  The meters hang
    off a :class:`~repro.soc.frame_cost.SharedSoCPool`, so :meth:`report`
    carries both per-stream breakdowns and the exact shared-static-power
    aggregate (plus an M/D/1 queueing estimate).  Streams may override the
    modeled capture setting per camera via ``add_stream(soc_config=...)``.
    Metering is observe-only.
    """

    def __init__(
        self,
        pipeline: "EuphratesPipeline",
        *,
        e_frame_burst: int = 4,
        max_inference_batch: int = 4,
        policy: str = "fair",
        deadline_frames: int = 8,
        soc: "VisionSoC | None" = None,
        network: "NetworkSpec | None" = None,
        extrapolation_on_cpu: bool = False,
        workers: int = 1,
        transport: str = "auto",
        isolate_failures: bool = False,
        on_record: "Callable[[FrameRecord], None] | None" = None,
    ) -> None:
        schedule = ShardSchedule(
            policy=policy,
            e_frame_burst=e_frame_burst,
            max_inference_batch=max_inference_batch,
            deadline_frames=deadline_frames,
        )
        if (soc is None) != (network is None):
            raise ValueError("energy metering needs both soc and network")
        self.pipeline = pipeline
        self.e_frame_burst = e_frame_burst
        self.max_inference_batch = max_inference_batch
        self.policy = policy
        self.deadline_frames = deadline_frames
        self.isolate_failures = bool(isolate_failures)
        #: Observer invoked with every absorbed :class:`FrameRecord` (the
        #: serving layer's completion hook).  Observe-only.
        self.on_record = on_record
        self._executor = ShardedExecutor(
            pipeline,
            workers=workers,
            transport=transport,
            schedule=schedule,
            isolate_failures=isolate_failures,
        )
        self._network = network
        self._pool = soc.open_pool() if soc is not None else None
        #: E-frame pricing host for the attached meters (the EW-N@CPU
        #: software baseline when True).
        self._extrapolation_on_cpu = extrapolation_on_cpu
        self._streams: Dict[str, _MuxStream] = {}
        self._order: List[str] = []
        self._batch_sizes: List[int] = []
        #: I-frame batches already counted (record batch ids are per-shard).
        self._seen_batches: set = set()
        self._wall_s = 0.0

    @property
    def workers(self) -> int:
        return self._executor.workers

    @property
    def transport_mode(self) -> str:
        return self._executor.transport_mode

    # ------------------------------------------------------------------
    # Stream management
    # ------------------------------------------------------------------
    def add_stream(
        self,
        source: "VideoSequence | None" = None,
        *,
        name: Optional[str] = None,
        width: Optional[int] = None,
        height: Optional[int] = None,
        backend: "InferenceBackend | None" = None,
        window_controller: "WindowController | None" = None,
        soc_config: "str | SoCConfig | None" = None,
    ) -> str:
        """Register a stream and return its id (the session name).

        Pass ``source`` for a sequence-bound stream (ground truth comes from
        the sequence) or ``width``/``height`` for a live stream whose truth
        arrives per frame via :meth:`submit`.  ``soc_config`` prices this
        stream's frames on a different modeled capture setting than the
        shared SoC (heterogeneous cameras on one backend); it needs the
        energy model attached.
        """
        if name is None:
            base = source.name if source is not None else "stream"
            name = base
            suffix = 1
            while name in self._streams:
                name = f"{base}#{suffix}"
                suffix += 1
        if name in self._streams:
            raise ValueError(f"stream '{name}' already exists")
        meter = None
        if soc_config is not None and self._pool is None:
            raise ValueError(
                "per-stream soc_config needs an energy model (soc and network)"
            )
        if self._pool is not None:
            stream_soc = None
            if soc_config is not None:
                from ..soc.config import resolve_soc_config
                from ..soc.soc import VisionSoC

                stream_soc = VisionSoC(resolve_soc_config(soc_config))
            meter = self._pool.open_meter(
                self._network,
                soc=stream_soc,
                extrapolation_on_cpu=self._extrapolation_on_cpu,
                label=name,
            )
        self._executor.open_stream(
            name,
            source=source,
            name=name,
            width=width,
            height=height,
            backend=backend,
            window_controller=window_controller,
        )
        self._streams[name] = _MuxStream(name, self, meter=meter)
        self._order.append(name)
        return name

    @property
    def stream_ids(self) -> List[str]:
        return list(self._order)

    def stats_for(self, stream_id: str) -> StreamStats:
        return self._stream(stream_id).stats

    def _stream(self, stream_id: str) -> _MuxStream:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise KeyError(f"unknown stream '{stream_id}'") from None

    # ------------------------------------------------------------------
    # Frame ingress
    # ------------------------------------------------------------------
    def submit(
        self,
        stream_id: str,
        frame: np.ndarray,
        *,
        truth: Optional[Sequence[Detection]] = None,
        force_inference: bool = False,
        defer_inference: bool = False,
        degradation: str = "",
    ) -> None:
        """Enqueue one captured frame for ``stream_id`` (non-blocking).

        The frame is copied out of the caller's buffer (into a queue copy
        in-process, into a shared-memory slot under worker shards): live
        capture loops typically reuse one buffer per capture, which would
        otherwise silently rewrite every frame still in flight.

        ``defer_inference`` suppresses a controller-scheduled I-frame for
        this frame (the serving layer's overload degradation — forced and
        first-frame inference still run); ``degradation`` tags the frame's
        telemetry with the serving-layer events that led here.
        """
        stream = self._stream(stream_id)
        self._executor.submit(
            stream_id,
            frame,
            truth=truth,
            force_inference=force_inference,
            defer_inference=defer_inference,
            degradation=degradation,
        )
        stats = stream.stats
        stats.frames_submitted += 1
        stats.max_queue_depth = max(
            stats.max_queue_depth, self._executor.pending_for(stream_id)
        )

    def feed_sequence(self, stream_id: str, sequence: "VideoSequence") -> None:
        """Enqueue every frame of ``sequence`` on ``stream_id``."""
        for _, frame in sequence.iter_frames():
            self.submit(stream_id, frame)

    @property
    def pending_frames(self) -> int:
        return self._executor.pending_frames

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _absorb(self, records: List[FrameRecord]) -> int:
        for record in records:
            stream = self._streams[record.key]
            stats = stream.stats
            stats.frames_processed += 1
            if record.kind is FrameKind.INFERENCE:
                stats.inference_frames += 1
            else:
                stats.extrapolation_frames += 1
            if record.telemetry is not None and record.telemetry.degradation:
                stats.degraded_frames += 1
            if record.telemetry is not None:
                for stage, seconds in stage_seconds(record.telemetry).items():
                    stats.stage_s[stage] = stats.stage_s.get(stage, 0.0) + seconds
            stats.busy_s += record.busy_s
            stats.wait_s += record.wait_s
            if record.batch_id >= 0:
                batch = (record.shard, record.batch_id)
                if batch not in self._seen_batches:
                    self._seen_batches.add(batch)
                    self._batch_sizes.append(record.batch_size)
            if stream.meter is not None and record.telemetry is not None:
                # Price what actually happened, as it happens.
                stream.meter.record(record.telemetry, batch_size=record.batch_size)
            if self.on_record is not None:
                self.on_record(record)
        return len(records)

    def pump(self) -> int:
        """Run one scheduling round; return the number of frames processed.

        In-process this executes one round of the shard's two-phase
        scheduler (E-bursts, then one batched-I dispatch — see
        :class:`~repro.core.executor.StreamShard`); with worker shards it
        absorbs whatever frame records the workers have produced since the
        last call (they pump continuously on their own).
        """
        round_start = time.perf_counter()
        processed = self._absorb(self._executor.pump())
        # Wall time accumulates per round, so callers driving the scheduler
        # through pump() directly (an always-on loop that can never drain)
        # still get meaningful aggregate throughput from report().
        self._wall_s += time.perf_counter() - round_start
        return processed

    def drain(self) -> int:
        """Pump until every queue is empty; return total frames processed."""
        start = time.perf_counter()
        processed = self._absorb(self._executor.drain())
        self._wall_s += time.perf_counter() - start
        return processed

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    @property
    def stream_failures(self) -> Dict[str, str]:
        """stream id -> reason, for streams lost to an isolated failure."""
        return self._executor.stream_failures

    def finish_stream(self, stream_id: str) -> SequenceResult:
        """Close one stream (its queue already drained) and return its result.

        The serving layer's per-connection teardown: other streams keep
        running and the multiplexer stays open for new ones.  Raises
        :class:`~repro.core.executor.StreamFailedError` if the stream was
        lost to an isolated failure.
        """
        stream = self._stream(stream_id)
        if stream.result is None:
            result, _stats = self._executor.finish_stream(stream_id)
            stream.result = result
            # Records for other streams can surface while the shard
            # catches up; keep the stats honest.
            self._absorb(self._executor.pump())
        return stream.result

    def finish(self) -> Dict[str, SequenceResult]:
        """Drain every queue, close every session, return per-stream results.

        Also releases the execution resources (worker processes and
        shared-memory segments when ``workers > 1``), so a finished
        multiplexer cannot accept new streams.  Under ``isolate_failures``
        streams lost to a failure are skipped (see :attr:`stream_failures`
        for the reasons); without isolation the failure propagates as ever.
        """
        self.drain()
        results: Dict[str, SequenceResult] = {}
        for name in self._order:
            stream = self._streams[name]
            if stream.result is None:
                if self.isolate_failures and name in self._executor.stream_failures:
                    continue
                try:
                    result, _stats = self._executor.finish_stream(name)
                except StreamFailedError:
                    if not self.isolate_failures:
                        raise
                    continue
                stream.result = result
            results[name] = stream.result
        # Late records can surface while worker shards wind down.
        self._absorb(self._executor.pump())
        self._executor.close()
        return results

    def close(self) -> None:
        """Release worker processes and shared-memory segments."""
        self._executor.close()

    def report(self) -> MultiplexerReport:
        """Aggregate scheduling statistics accumulated so far."""
        stats = [self._streams[name].stats for name in self._order]
        stream_energy: Dict[str, "EnergyBreakdown"] = {}
        for name in self._order:
            meter = self._streams[name].meter
            if meter is not None and meter.frames:
                stream_energy[name] = meter.breakdown()
        shared_energy = None
        queueing = None
        if self._pool is not None and self._pool.frames:
            shared_energy = self._pool.aggregate()
            queueing = self._pool.queueing_estimate()
        return MultiplexerReport(
            streams=stats,
            wall_s=self._wall_s,
            frames_processed=sum(s.frames_processed for s in stats),
            inference_frames=sum(s.inference_frames for s in stats),
            extrapolation_frames=sum(s.extrapolation_frames for s in stats),
            inference_batches=len(self._batch_sizes),
            batch_sizes=list(self._batch_sizes),
            stream_energy=stream_energy,
            shared_energy=shared_energy,
            queueing=queueing,
            workers=self.workers,
            transport=self.transport_mode,
        )

    # ------------------------------------------------------------------
    # Convenience: whole sequences in, results out
    # ------------------------------------------------------------------
    def run_streams(
        self, sequences: Sequence["VideoSequence"]
    ) -> Tuple[Dict[str, SequenceResult], MultiplexerReport]:
        """Feed one stream per sequence, drain, and return (results, report)."""
        for sequence in sequences:
            stream_id = self.add_stream(sequence)
            self.feed_sequence(stream_id, sequence)
        return self.finish(), self.report()
