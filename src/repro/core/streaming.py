"""Multi-stream scheduling: N concurrent camera sessions over one pipeline.

Always-on vision SoCs serve several cameras at once (Starfish, MobiSys'15
makes the case for first-class concurrent-stream support).  The
:class:`StreamMultiplexer` multiplexes any number of
:class:`~repro.core.session.EuphratesSession` objects over one
:class:`~repro.core.pipeline.EuphratesPipeline` template:

* each stream has its own frame queue (frames are pushed as they "arrive"),
  its own backend copy and its own window-controller clone, so streams never
  contaminate each other's algorithm state;
* a fair-share scheduler drains the queues: cheap E-frames (motion
  extrapolation only) are interleaved round-robin so no stream starves,
  while expensive I-frames (full CNN inference) are gathered across streams
  and dispatched in batches — the access pattern a real accelerator wants,
  since weights stay resident across a batch; an alternative
  energy/deadline-aware policy (``policy="energy"``) defers I-frames within
  a backlog deadline to build full batches and serves the deepest queues
  first;
* per-stream and aggregate throughput/latency statistics are tracked as
  scheduling happens, feeding ``benchmarks/run_stream_bench.py``; with an
  attached energy model (``soc`` + ``network``) each stream's frames are
  priced on the modeled SoC as they are processed, including amortised
  weight traffic across batched I-frames.

Because sessions are fully isolated, the per-stream results are bit-identical
to running each sequence through its own pipeline — scheduling order affects
latency, never output (property-tested in ``tests/test_streaming.py``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .session import EuphratesSession
from .types import Detection, FrameKind, SequenceResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..nn.models import NetworkSpec
    from ..soc.frame_cost import CostMeter
    from ..soc.soc import EnergyBreakdown, VisionSoC
    from ..video.sequence import VideoSequence
    from .backends import InferenceBackend
    from .pipeline import EuphratesPipeline
    from .window import WindowController


#: Scheduling policies: ``fair`` is the round-robin fair-share scheduler;
#: ``energy`` defers I-frames (within a deadline) to build full inference
#: batches, maximising NNX weight reuse, and serves the deepest queues first.
SCHEDULING_POLICIES = ("fair", "energy")


@dataclass
class StreamStats:
    """Throughput/latency accounting for one stream."""

    name: str
    frames_submitted: int = 0
    frames_processed: int = 0
    inference_frames: int = 0
    extrapolation_frames: int = 0
    #: Seconds spent inside ``session.submit`` for this stream.
    busy_s: float = 0.0
    #: Seconds frames spent queued before the scheduler picked them.
    wait_s: float = 0.0
    max_queue_depth: int = 0

    @property
    def pending(self) -> int:
        return self.frames_submitted - self.frames_processed

    @property
    def inference_rate(self) -> float:
        if not self.frames_processed:
            return 0.0
        return self.inference_frames / self.frames_processed

    @property
    def mean_service_latency_s(self) -> float:
        """Mean per-frame processing time (excluding queueing delay)."""
        if not self.frames_processed:
            return 0.0
        return self.busy_s / self.frames_processed

    @property
    def mean_queue_wait_s(self) -> float:
        if not self.frames_processed:
            return 0.0
        return self.wait_s / self.frames_processed


@dataclass
class MultiplexerReport:
    """Aggregate statistics of one multiplexer drain."""

    streams: List[StreamStats]
    wall_s: float
    frames_processed: int
    inference_frames: int
    extrapolation_frames: int
    inference_batches: int
    #: Sizes of every I-frame batch the scheduler dispatched.
    batch_sizes: List[int] = field(default_factory=list)
    #: Modeled SoC energy per stream (present when the multiplexer was
    #: given an energy model; keyed by stream id).  Each breakdown prices
    #: that camera's frames on the modeled SoC — I-frames dispatched in a
    #: batch of k amortise the NNX weight traffic over k streams.
    stream_energy: Dict[str, "EnergyBreakdown"] = field(default_factory=dict)

    @property
    def aggregate_fps(self) -> float:
        return self.frames_processed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    # -- energy aggregates (empty dict => no energy model attached) -----
    #
    # Each stream's breakdown prices that camera as if it owned the whole
    # modeled SoC, so the sums below count per-SoC *static* power (NNX
    # idle, DRAM background, MC idle) once per stream.  The sensor + ISP
    # really are per-camera, but on a single shared SoC the accelerator/
    # memory static terms would be paid once — making these aggregates an
    # upper bound for the shared-SoC deployment (the dynamic terms,
    # including cross-stream weight-batch amortisation, are exact).  A
    # first-class shared-SoC aggregate model is a ROADMAP item.
    @property
    def aggregate_energy_j(self) -> float:
        """Total modeled energy, summed over per-stream (own-SoC) meters."""
        return sum(b.total_energy_j for b in self.stream_energy.values())

    @property
    def aggregate_energy_per_frame_j(self) -> float:
        frames = sum(b.num_frames for b in self.stream_energy.values())
        if not frames:
            return 0.0
        return self.aggregate_energy_j / frames

    @property
    def aggregate_power_w(self) -> float:
        """Aggregate power: streams run concurrently in model time, so the
        denominator is the longest per-stream wall clock, not the sum (see
        the static-power caveat above — upper bound for one shared SoC)."""
        wall = max((b.wall_time_s for b in self.stream_energy.values()), default=0.0)
        if wall <= 0:
            return 0.0
        return self.aggregate_energy_j / wall


class _Stream:
    """Internal per-stream record: session + queue + stats (+ cost meter)."""

    def __init__(
        self,
        stream_id: str,
        session: EuphratesSession,
        meter: "CostMeter | None" = None,
    ) -> None:
        self.stream_id = stream_id
        self.session = session
        #: Queue of (frame, truth, force_inference, enqueue_time).
        self.queue: Deque[Tuple[np.ndarray, Optional[Sequence[Detection]], bool, float]] = deque()
        self.stats = StreamStats(name=stream_id)
        self.result: Optional[SequenceResult] = None
        #: Per-stream SoC cost meter (None when no energy model is attached).
        self.meter = meter
        #: Scheduling rounds this stream's head frame has sat as a deferred
        #: I-frame (energy policy's age-based deadline).
        self.i_head_rounds = 0

    @property
    def drained(self) -> bool:
        return not self.queue

    def head_kind(self) -> Optional[FrameKind]:
        """Predicted frame kind of the next queued frame (None when empty)."""
        if not self.queue:
            return None
        _, _, force, _ = self.queue[0]
        if force:
            return FrameKind.INFERENCE
        return self.session.next_frame_kind()


class StreamMultiplexer:
    """Fair-share scheduler for N concurrent Euphrates camera streams.

    ``e_frame_burst`` bounds how many consecutive E-frames one stream may
    process per scheduling round (fairness knob: a stream with a deep queue
    of cheap frames cannot starve the others).  ``max_inference_batch``
    bounds how many I-frames the scheduler groups into one inference batch.

    ``policy`` selects the scheduler: ``"fair"`` (default) is the
    round-robin fair-share scheduler; ``"energy"`` is energy/deadline-aware
    — it serves the deepest queues first and *defers* I-frames until a full
    ``max_inference_batch`` is ready (maximising NNX weight reuse), unless
    a ready stream breaches its deadline (queue depth *or* head-frame age
    in scheduling rounds reaches ``deadline_frames``) or no other progress
    was possible this round.  Scheduling order affects latency and
    energy attribution, never outputs — sessions are fully isolated, so
    per-stream results are bit-identical under every policy.

    Passing an energy model (``soc`` + ``network``) attaches one
    :class:`~repro.soc.frame_cost.CostMeter` per stream: every processed
    frame's telemetry is drained from its session and priced as it
    happens, with batched I-frames amortising the weight DRAM traffic over
    the batch.  :meth:`report` then carries per-stream
    :class:`~repro.soc.soc.EnergyBreakdown` objects plus aggregate
    power/energy-per-frame statistics.  Metering is observe-only.
    """

    def __init__(
        self,
        pipeline: "EuphratesPipeline",
        *,
        e_frame_burst: int = 4,
        max_inference_batch: int = 4,
        policy: str = "fair",
        deadline_frames: int = 8,
        soc: "VisionSoC | None" = None,
        network: "NetworkSpec | None" = None,
        extrapolation_on_cpu: bool = False,
    ) -> None:
        if e_frame_burst < 1:
            raise ValueError("e_frame_burst must be >= 1")
        if max_inference_batch < 1:
            raise ValueError("max_inference_batch must be >= 1")
        if policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"unknown policy '{policy}' (expected one of {SCHEDULING_POLICIES})"
            )
        if deadline_frames < 1:
            raise ValueError("deadline_frames must be >= 1")
        if (soc is None) != (network is None):
            raise ValueError("energy metering needs both soc and network")
        self.pipeline = pipeline
        self.e_frame_burst = e_frame_burst
        self.max_inference_batch = max_inference_batch
        self.policy = policy
        self.deadline_frames = deadline_frames
        self._soc = soc
        self._network = network
        #: E-frame pricing host for the attached meters (the EW-N@CPU
        #: software baseline when True).
        self._extrapolation_on_cpu = extrapolation_on_cpu
        self._streams: Dict[str, _Stream] = {}
        self._order: List[str] = []
        self._rr_offset = 0
        self._batch_sizes: List[int] = []
        self._wall_s = 0.0

    # ------------------------------------------------------------------
    # Stream management
    # ------------------------------------------------------------------
    def add_stream(
        self,
        source: "VideoSequence | None" = None,
        *,
        name: Optional[str] = None,
        width: Optional[int] = None,
        height: Optional[int] = None,
        backend: "InferenceBackend | None" = None,
        window_controller: "WindowController | None" = None,
    ) -> str:
        """Register a stream and return its id (the session name).

        Pass ``source`` for a sequence-bound stream (ground truth comes from
        the sequence) or ``width``/``height`` for a live stream whose truth
        arrives per frame via :meth:`submit`.
        """
        if name is None:
            base = source.name if source is not None else "stream"
            name = base
            suffix = 1
            while name in self._streams:
                name = f"{base}#{suffix}"
                suffix += 1
        if name in self._streams:
            raise ValueError(f"stream '{name}' already exists")
        session = self.pipeline.open_session(
            width,
            height,
            source=source,
            name=name,
            backend=backend,
            window_controller=window_controller,
        )
        meter = None
        if self._soc is not None:
            meter = self._soc.open_meter(
                self._network,
                extrapolation_on_cpu=self._extrapolation_on_cpu,
                label=name,
            )
        self._streams[name] = _Stream(name, session, meter=meter)
        self._order.append(name)
        return name

    @property
    def stream_ids(self) -> List[str]:
        return list(self._order)

    def stats_for(self, stream_id: str) -> StreamStats:
        return self._stream(stream_id).stats

    def _stream(self, stream_id: str) -> _Stream:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise KeyError(f"unknown stream '{stream_id}'") from None

    # ------------------------------------------------------------------
    # Frame ingress
    # ------------------------------------------------------------------
    def submit(
        self,
        stream_id: str,
        frame: np.ndarray,
        *,
        truth: Optional[Sequence[Detection]] = None,
        force_inference: bool = False,
    ) -> None:
        """Enqueue one captured frame for ``stream_id`` (non-blocking).

        The frame is copied: live capture loops typically reuse one buffer
        per capture, which would otherwise silently rewrite every frame
        still sitting in the queue.
        """
        stream = self._stream(stream_id)
        stream.queue.append(
            (np.array(frame, copy=True), truth, force_inference, time.perf_counter())
        )
        stream.stats.frames_submitted += 1
        stream.stats.max_queue_depth = max(stream.stats.max_queue_depth, len(stream.queue))

    def feed_sequence(self, stream_id: str, sequence: "VideoSequence") -> None:
        """Enqueue every frame of ``sequence`` on ``stream_id``."""
        for _, frame in sequence.iter_frames():
            self.submit(stream_id, frame)

    @property
    def pending_frames(self) -> int:
        return sum(len(stream.queue) for stream in self._streams.values())

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _process_head(self, stream: _Stream, batch_size: int = 1) -> FrameKind:
        frame, truth, force, enqueued_at = stream.queue.popleft()
        start = time.perf_counter()
        try:
            result = stream.session.submit(frame, truth=truth, force_inference=force)
        except BaseException:
            # Put the frame back so the stream stays aligned with its queue
            # and the caller can retry (the session rolls itself back for
            # pre-ISP failures, e.g. missing first-frame truth).
            stream.queue.appendleft((frame, truth, force, enqueued_at))
            raise
        elapsed = time.perf_counter() - start
        stats = stream.stats
        stats.busy_s += elapsed
        stats.wait_s += max(0.0, start - enqueued_at)
        # Frame/I/E counts mirror the session's own accounting (the single
        # source of truth) instead of being tracked twice.
        session_stats = stream.session.stats
        stats.frames_processed = session_stats.frames
        stats.inference_frames = session_stats.inference_frames
        stats.extrapolation_frames = session_stats.extrapolation_frames
        # Drain the session's telemetry even when no meter consumes it:
        # always-on streams never finish(), so leaving events to accumulate
        # would grow memory for the lifetime of the camera.
        events = stream.session.take_telemetry()
        if stream.meter is not None:
            # Price what actually happened, as it happens.
            for event in events:
                stream.meter.record(event, batch_size=batch_size)
        return result.kind

    def _round_robin(self) -> List[_Stream]:
        """Streams in this round's fair-share order (rotating start)."""
        active = [self._streams[name] for name in self._order]
        if not active:
            return []
        offset = self._rr_offset % len(active)
        self._rr_offset += 1
        return active[offset:] + active[:offset]

    def _deadline_breached(self, stream: _Stream) -> bool:
        """Whether a stream's head I-frame can no longer wait for a fuller batch.

        Two triggers: backlog depth (a fast camera filling its queue) and
        age in scheduling rounds (a slow camera whose lone I-frame would
        otherwise be deferred forever while other streams keep the pump
        busy with E-frames).
        """
        return (
            len(stream.queue) >= self.deadline_frames
            or stream.i_head_rounds >= self.deadline_frames
        )

    def pump(self) -> int:
        """Run one scheduling round; return the number of frames processed.

        A round has two phases:

        1. **E-phase** — walk the streams in policy order (round-robin for
           ``fair``, deepest-backlog-first for ``energy``), letting each
           process up to ``e_frame_burst`` queued frames as long as the
           session predicts they are cheap E-frames.
        2. **I-phase** — gather the streams whose next frame needs full
           inference and dispatch up to ``max_inference_batch`` of them
           back-to-back as one batch (weights stay resident across the
           batch on a real accelerator).  The ``energy`` policy defers a
           partial batch to a later round — unless a gathered stream
           breaches its deadline (queue depth or rounds-deferred reaching
           ``deadline_frames``), or nothing else was processed this round
           (so progress is always guaranteed, and a lone I-frame on a
           stalled camera cannot starve behind other streams' E-traffic).

        Mis-predictions are benign: the authoritative I/E decision is made
        inside ``session.submit`` exactly as in the batch pipeline.
        """
        round_start = time.perf_counter()
        processed = 0
        if self.policy == "energy":
            # Deadline pressure first: the deepest backlog is the stream
            # closest to missing its (frame-budget) deadline.
            order = sorted(
                (self._streams[name] for name in self._order),
                key=lambda stream: -len(stream.queue),
            )
        else:
            # One rotation per round (shared by both phases), so the lead
            # position really cycles over every stream.
            order = self._round_robin()

        for stream in order:
            burst = 0
            while (
                burst < self.e_frame_burst
                and stream.queue
                and stream.head_kind() is FrameKind.EXTRAPOLATION
            ):
                self._process_head(stream)
                processed += 1
                burst += 1

        batch = [
            stream
            for stream in order
            if stream.queue and stream.head_kind() is FrameKind.INFERENCE
        ]
        if batch and self.policy == "energy":
            for stream in batch:
                stream.i_head_rounds += 1
            dispatch = (
                len(batch) >= self.max_inference_batch
                or any(self._deadline_breached(stream) for stream in batch)
                or processed == 0
            )
            if not dispatch:
                batch = []
            else:
                # Most-overdue heads board first (age, then queue depth):
                # the batch is about to be truncated, and the whole point
                # of the deadline is that an aged head cannot keep losing
                # its seat to deeper queues round after round.
                batch.sort(
                    key=lambda stream: (-stream.i_head_rounds, -len(stream.queue))
                )
        batch = batch[: self.max_inference_batch]
        if batch:
            self._batch_sizes.append(len(batch))
            for stream in batch:
                stream.i_head_rounds = 0
                self._process_head(stream, batch_size=len(batch))
                processed += 1

        # Wall time accumulates per round, so callers driving the scheduler
        # through pump() directly (an always-on loop that can never drain)
        # still get meaningful aggregate throughput from report().
        self._wall_s += time.perf_counter() - round_start
        return processed

    def drain(self) -> int:
        """Pump until every queue is empty; return total frames processed."""
        total = 0
        while self.pending_frames:
            processed = self.pump()
            if processed == 0:
                # Cannot happen with the two-phase pump (every head frame is
                # either E or I), but guard against a livelocked scheduler.
                raise RuntimeError("scheduler made no progress with frames pending")
            total += processed
        return total

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finish(self) -> Dict[str, SequenceResult]:
        """Drain every queue, close every session, return per-stream results."""
        self.drain()
        results: Dict[str, SequenceResult] = {}
        for name in self._order:
            stream = self._streams[name]
            if stream.result is None:
                stream.result = stream.session.finish()
            results[name] = stream.result
        return results

    def report(self) -> MultiplexerReport:
        """Aggregate scheduling statistics accumulated so far."""
        stats = [self._streams[name].stats for name in self._order]
        stream_energy: Dict[str, "EnergyBreakdown"] = {}
        for name in self._order:
            meter = self._streams[name].meter
            if meter is not None and meter.frames:
                stream_energy[name] = meter.breakdown()
        return MultiplexerReport(
            streams=stats,
            wall_s=self._wall_s,
            frames_processed=sum(s.frames_processed for s in stats),
            inference_frames=sum(s.inference_frames for s in stats),
            extrapolation_frames=sum(s.extrapolation_frames for s in stats),
            inference_batches=len(self._batch_sizes),
            batch_sizes=list(self._batch_sizes),
            stream_energy=stream_energy,
        )

    # ------------------------------------------------------------------
    # Convenience: whole sequences in, results out
    # ------------------------------------------------------------------
    def run_streams(
        self, sequences: Sequence["VideoSequence"]
    ) -> Tuple[Dict[str, SequenceResult], MultiplexerReport]:
        """Feed one stream per sequence, drain, and return (results, report)."""
        for sequence in sequences:
            stream_id = self.add_stream(sequence)
            self.feed_sequence(stream_id, sequence)
        return self.finish(), self.report()
