"""Motion extrapolation of ROIs (the paper's Sec. 3.2).

Given the macroblock motion field the ISP produced for the current frame and
the ROI(s) from the previous frame, the extrapolator:

1. computes the average motion vector of the pixels bounded by each ROI
   (Eq. 1),
2. derives a confidence for that average from the SAD values of the
   underlying macroblocks (Eq. 2),
3. filters the average against the previous frame's motion using the
   confidence-driven recursive filter (Eq. 3), and
4. optionally splits the ROI into sub-ROIs that move independently to handle
   non-rigid deformation, merging them back with a minimal bounding box.

The result is the new ROI: ``R_F = R_{F-1} + MV_F``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..motion.motion_field import MotionField
from .geometry import BoundingBox, MotionVector, ZERO_MOTION
from .types import Detection


@dataclass(frozen=True)
class ExtrapolationConfig:
    """Tuning knobs of the extrapolation algorithm."""

    #: Confidence threshold of the piece-wise beta function (Sec. 3.2):
    #: beta = alpha when alpha > threshold, otherwise beta = 0.5.
    confidence_threshold: float = 0.9
    #: Beta used when the confidence is below the threshold.
    low_confidence_beta: float = 0.5
    #: Sub-ROI grid used for deformation handling; (1, 1) disables it.
    sub_roi_grid: Tuple[int, int] = (2, 2)
    #: Disable the confidence filter entirely (ablation: trust Eq. 1 alone).
    use_confidence_filter: bool = True
    #: Clip extrapolated ROIs to the frame (keeps boxes valid at the edges).
    clip_to_frame: bool = True

    def __post_init__(self) -> None:
        rows, cols = self.sub_roi_grid
        if rows <= 0 or cols <= 0:
            raise ValueError("sub_roi_grid entries must be positive")
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise ValueError("confidence_threshold must be in [0, 1]")
        if not 0.0 <= self.low_confidence_beta <= 1.0:
            raise ValueError("low_confidence_beta must be in [0, 1]")


@dataclass
class RoiMotionState:
    """Per-tracked-ROI recursive filter state (MV_{F-1} in Eq. 3)."""

    filtered_motion: MotionVector = ZERO_MOTION
    last_confidence: float = 1.0


@dataclass(frozen=True)
class ExtrapolationResult:
    """Output of extrapolating one ROI by one frame."""

    box: BoundingBox
    motion: MotionVector
    confidence: float


class MotionExtrapolator:
    """Implements Eqs. 1-3 plus sub-ROI deformation handling."""

    def __init__(
        self,
        config: ExtrapolationConfig | None = None,
        frame_width: Optional[int] = None,
        frame_height: Optional[int] = None,
    ) -> None:
        self.config = config or ExtrapolationConfig()
        self.frame_width = frame_width
        self.frame_height = frame_height
        #: Total fixed-point operations performed so far (compute accounting).
        self.total_operations = 0.0

    def configure_frame(self, frame_width: Optional[int], frame_height: Optional[int]) -> None:
        """Point a reused extrapolator at a new sequence's frame geometry."""
        self.frame_width = frame_width
        self.frame_height = frame_height

    # ------------------------------------------------------------------
    # Single-ROI extrapolation
    # ------------------------------------------------------------------
    def extrapolate_roi(
        self,
        roi: BoundingBox,
        motion_field: MotionField,
        state: Optional[RoiMotionState] = None,
    ) -> ExtrapolationResult:
        """Extrapolate one ROI forward by one frame.

        ``state`` carries the previous frame's filtered motion; pass the same
        object across frames to get the recursive behaviour of Eq. 3.  When
        ``state`` is ``None`` a zero-motion prior is used.
        """
        state = state or RoiMotionState()
        rows, cols = self.config.sub_roi_grid
        sub_rois = roi.split(rows, cols) if (rows, cols) != (1, 1) else [roi]

        moved_sub_rois: List[BoundingBox] = []
        motions: List[MotionVector] = []
        confidences: List[float] = []
        # Batch the Eq. 1/2 queries so the field's confidence grid is
        # materialised once for the whole sub-ROI sweep; the per-sub-ROI
        # Eq. 3 filter below is unchanged (bit-identical results).
        statistics = motion_field.roi_statistics_batch(sub_rois)
        for sub, (average, confidence) in zip(sub_rois, statistics):
            motion = self._apply_confidence_filter(average, confidence, state)
            moved_sub_rois.append(sub.shift(motion))
            motions.append(motion)
            confidences.append(confidence)

        merged = BoundingBox.union_of(moved_sub_rois)
        if self.config.clip_to_frame and self.frame_width and self.frame_height:
            clipped = merged.clip(self.frame_width, self.frame_height)
            if not clipped.is_empty():
                merged = clipped

        mean_motion = MotionVector(
            sum(m.u for m in motions) / len(motions),
            sum(m.v for m in motions) / len(motions),
        )
        mean_confidence = sum(confidences) / len(confidences)

        state.filtered_motion = mean_motion
        state.last_confidence = mean_confidence
        self.total_operations += self.operations_per_roi(roi)

        return ExtrapolationResult(box=merged, motion=mean_motion, confidence=mean_confidence)

    def _filtered_motion(
        self, roi: BoundingBox, motion_field: MotionField, state: RoiMotionState
    ) -> Tuple[MotionVector, float]:
        """Eqs. 1-3 for a single (sub-)ROI."""
        average, confidence = motion_field.roi_statistics(roi)  # Eqs. 1 and 2
        return self._apply_confidence_filter(average, confidence, state), confidence

    def _apply_confidence_filter(
        self, average: MotionVector, confidence: float, state: RoiMotionState
    ) -> MotionVector:
        """The Eq. 3 recursive filter on an already-averaged motion."""
        if not self.config.use_confidence_filter:
            return average
        if confidence > self.config.confidence_threshold:
            beta = confidence
        else:
            beta = self.config.low_confidence_beta
        return average.blend(state.filtered_motion, beta)  # Eq. 3

    # ------------------------------------------------------------------
    # Multi-ROI extrapolation (detection scenario)
    # ------------------------------------------------------------------
    @staticmethod
    def state_key(detection: Detection, index: int) -> int:
        """Filter-state key for a detection.

        Identified detections key by object id; anonymous ones key by their
        (negative) position in the detection list, which is stable between
        two I-frames because extrapolation preserves list order.
        """
        if detection.object_id is not None:
            return detection.object_id
        return -(index + 1)

    def extrapolate_detections(
        self,
        detections: Sequence[Detection],
        motion_field: MotionField,
        states: Dict[int, RoiMotionState],
    ) -> List[Detection]:
        """Extrapolate every detection of the previous frame.

        ``states`` maps a detection's :meth:`state_key` to its filter state
        and is updated in place, so passing the same dictionary every frame
        keeps the recursion of Eq. 3 going until the next I-frame replaces
        the detections.  Keys with no matching detection in this call are
        dropped — a leftover state from a larger earlier detection set must
        not seed the filter of a different object.
        """
        keys = [self.state_key(detection, index) for index, detection in enumerate(detections)]
        live = set(keys)
        for stale in [key for key in states if key not in live]:
            del states[stale]
        extrapolated: List[Detection] = []
        for key, detection in zip(keys, detections):
            state = states.setdefault(key, RoiMotionState())
            result = self.extrapolate_roi(detection.box, motion_field, state)
            extrapolated.append(detection.as_extrapolated(result.box))
        return extrapolated

    # ------------------------------------------------------------------
    # Compute accounting (Sec. 3.2, "Computation Characteristics")
    # ------------------------------------------------------------------
    def operations_per_roi(self, roi: BoundingBox) -> float:
        """Fixed-point operations to extrapolate one ROI.

        Eq. 1 averages the motion of every pixel bounded by the ROI (each
        pixel inherits its macroblock's MV), which costs two accumulations
        per pixel, plus a small per-sub-ROI overhead for the confidence
        filter and the box update.  For the paper's typical 100x50 ROI this
        lands at the quoted ~10 K operations per frame (Sec. 3.2).
        """
        rows, cols = self.config.sub_roi_grid
        covered_pixels = max(1.0, roi.area)
        ops_per_pixel = 2.0  # accumulate u and v for the Eq. 1 average
        overhead_per_sub_roi = 40.0  # Eq. 2/3 arithmetic and the box update
        return covered_pixels * ops_per_pixel + rows * cols * overhead_per_sub_roi
